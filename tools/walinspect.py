"""Dump and verify a resource-store write-ahead log.

Walks the CRC-framed record stream of a ``store.wal`` file (see
:mod:`repro.store.wal`), printing one line per record — sequence number,
payload size, CRC status, op count — and, for a torn or corrupt tail,
exactly where the valid prefix ends and why.  Snapshot files use the
same framing, so they can be inspected too (``--snapshot``).

Usage::

    PYTHONPATH=src python tools/walinspect.py <path>/store.wal
    PYTHONPATH=src python tools/walinspect.py --verbose <path>/store.wal
    PYTHONPATH=src python tools/walinspect.py --snapshot <path>/snapshot

Exit status: 0 for a clean file, 1 for a torn/corrupt tail (recovery
would truncate it — the tool itself never modifies the file), 2 for a
usage error.  ``--verbose`` additionally prints each record's decoded
term text.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import StoreError
from repro.store.backend import decode_commit
from repro.store.wal import RECORD_HEADER, scan_records
from repro.terms.parser import parse_data


def inspect(path: str, *, snapshot: bool = False,
            verbose: bool = False, out=None) -> int:
    """Print a report for the record stream at *path*; the exit status."""
    if out is None:
        out = sys.stdout
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        print(f"error: {exc}", file=out)
        return 2
    payloads, valid_end, problem = scan_records(data)
    print(f"{path}: {len(data)} bytes, {len(payloads)} record(s)", file=out)
    offset = 0
    for index, payload in enumerate(payloads):
        text = None
        if snapshot:
            try:
                term = parse_data(payload.decode("utf-8"))
                label = term.label
                detail = (f"seq={term.first('seq').value}"
                          if label == "snapshot"
                          else f"uri={term.first('uri').value!r}")
                status = "ok"
                text = payload.decode("utf-8")
            except Exception as exc:
                label, detail, status = "?", "", f"undecodable: {exc}"
        else:
            try:
                seq, ops = decode_commit(payload.decode("utf-8"))
                label = "commit"
                detail = f"seq={seq} ops={len(ops)}"
                status = "ok"
                text = payload.decode("utf-8")
            except (StoreError, UnicodeDecodeError) as exc:
                label, detail, status = "?", "", f"undecodable: {exc}"
                problem = problem or "undecodable-record"
        print(f"  [{index}] offset={offset} bytes={len(payload)} "
              f"crc=ok {label} {detail} {status}".rstrip(), file=out)
        if verbose and text is not None:
            print(f"      {text}", file=out)
        offset += RECORD_HEADER.size + len(payload)
    if problem is None:
        print("  tail: clean", file=out)
        return 0
    torn = len(data) - valid_end
    print(f"  tail: {problem} — valid prefix ends at byte {valid_end}, "
          f"{torn} trailing byte(s) would be truncated by recovery",
          file=out)
    return 1


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Dump and verify a resource-store WAL file.")
    parser.add_argument("path", help="store.wal (or snapshot) file")
    parser.add_argument("--snapshot", action="store_true",
                        help="decode records as snapshot entries "
                             "(doc/floor) instead of commits")
    parser.add_argument("--verbose", action="store_true",
                        help="print each record's decoded term text")
    args = parser.parse_args(argv)
    return inspect(args.path, snapshot=args.snapshot, verbose=args.verbose)


if __name__ == "__main__":
    sys.exit(main())

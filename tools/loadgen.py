"""A deterministic load generator for the ingestion tier.

Simulates a large population of clients (~10k by default) with a skewed
(zipf-like) rate distribution — a handful of hot senders produce most of
the traffic, a long tail produces the rest — which is exactly the shape
per-sender rate limiting and weighted-fair service exist for.  Used by
``benchmarks/bench_e18_ingestion.py`` and the ingestion tests; runnable
standalone for a quick demonstration::

    PYTHONPATH=src python tools/loadgen.py

The generator is *procedural*: it schedules one scheduler callback per
arrival tick (not one per event), and each tick draws its senders from
the seeded RNG at run time — so driving a million events costs a
thousand scheduler entries, and two runs with the same seed produce the
same arrival sequence, sender for sender.
"""

from __future__ import annotations

import itertools
import math
import random
import sys
from pathlib import Path
from typing import Callable

try:
    from repro.terms.ast import Data
except ModuleNotFoundError:  # ran as a script without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.terms.ast import Data

#: offer(sender_uri, event_term, sent_at) -> admitted?  The bench binds
#: this to a gateway path (wire or object codec) or to hand delivery.
OfferFn = Callable[[str, Data, float], bool]


class LoadGen:
    """A population of simulated clients with zipf-skewed send rates.

    ``skew`` is the zipf exponent: client *i* sends with weight
    ``1 / (i + 1) ** skew``, so at the default 1.1 the hottest of 10 000
    clients carries roughly a thousand times the rate of the coldest —
    heavy hitters and a long tail in one knob.  ``seed`` fixes the whole
    arrival sequence.
    """

    def __init__(self, n_clients: int = 10_000, skew: float = 1.1,
                 seed: int = 0xE18) -> None:
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {n_clients}")
        self.n_clients = n_clients
        self.skew = skew
        self.senders = [f"http://client-{i}.example" for i in range(n_clients)]
        self._cum_weights = list(itertools.accumulate(
            1.0 / (i + 1) ** skew for i in range(n_clients)))
        self._rng = random.Random(seed)
        self.offered = 0
        self.accepted = 0

    def pick_senders(self, k: int) -> list[str]:
        """Draw *k* senders from the skewed distribution."""
        return self._rng.choices(self.senders,
                                 cum_weights=self._cum_weights, k=k)

    @staticmethod
    def event_term(seq: int) -> Data:
        """The workload event: ``order{ seq[<n>] }`` (rules match on it)."""
        return Data("order", (Data("seq", (seq,)),))

    def schedule(self, scheduler, offer: OfferFn, *, events: int,
                 per_tick: int, dt: float, start: float = 0.0) -> int:
        """Schedule the arrival process onto *scheduler*.

        *events* arrivals land in batches of *per_tick* every *dt*
        simulated seconds (the last tick may be short), each offered via
        ``offer(sender, term, now)``.  Returns the number of ticks
        scheduled; :attr:`offered` / :attr:`accepted` count outcomes as
        the simulation runs.
        """
        if events < 1 or per_tick < 1 or dt <= 0:
            raise ValueError(
                f"need events >= 1, per_tick >= 1, dt > 0; got "
                f"{events}, {per_tick}, {dt}")
        ticks = math.ceil(events / per_tick)
        sequence = itertools.count()

        def tick(remaining: int) -> None:
            batch = min(per_tick, remaining)
            now = scheduler.now
            for sender in self.pick_senders(batch):
                self.offered += 1
                if offer(sender, self.event_term(next(sequence)), now):
                    self.accepted += 1

        for i in range(ticks):
            remaining = events - i * per_tick
            scheduler.at(start + i * dt, lambda r=remaining: tick(r))
        return ticks


def main() -> None:
    """Standalone demo: skewed traffic through a rate-limited gateway."""
    from repro import EngineConfig, IngestConfig, Simulation

    sim = Simulation()
    node = sim.reactive_node(
        "http://sink.example",
        config=EngineConfig(ingest=IngestConfig(
            high_water=5_000, policy="reject", rate=200.0, burst=50.0,
            pump_batch=500, drain_interval=0.01)))
    node.install("""
        RULE count-orders
        ON order{{ seq[var S] }}
        DO RAISE TO "http://sink.example" seen{ seq[var S] }
    """)
    gen = LoadGen(n_clients=1_000)
    gateway = node.ingest
    gen.schedule(
        sim.scheduler,
        lambda sender, term, now: gateway.offer(term, sender=sender,
                                                sent_at=now),
        events=50_000, per_tick=500, dt=0.01)
    sim.run(max_callbacks=10_000_000)
    stats = node.ingest_stats
    print(f"offered     {gen.offered}")
    print(f"accepted    {gen.accepted}")
    print(f"rate-limited{stats.rate_limited:>8}")
    print(f"fired       {stats.fired}")
    print(f"latency     p50={stats.latency.percentile(50):.4f}s "
          f"p99={stats.latency.percentile(99):.4f}s "
          f"max={stats.latency.max:.4f}s (simulated)")


if __name__ == "__main__":
    main()

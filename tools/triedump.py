"""Dump a live engine's discrimination trie, node by node.

Walks each root label's trie (see :class:`repro.core.engine.ReactiveEngine`
and its ``_TrieNode``), printing one line per node — depth, split axis,
child/residual fan-out, leaf bucket size — plus the wildcard side list and
the combinator suppression sets compiled into dispatch.  Works against a
live node (single-engine or sharded: every shard's trie is reported) in
the spirit of ``walinspect.py``: read-only, never mutates engine state.

Usage (library, against a live node)::

    from tools.triedump import dump
    dump(node)                 # or dump(node, verbose=True)

Usage (CLI, synthetic demo trie)::

    PYTHONPATH=src python tools/triedump.py --rules 64
    PYTHONPATH=src python tools/triedump.py --rules 64 --depth 2 --verbose

Exit status: 0 on success, 2 for a usage error.  ``--verbose``
additionally prints each leaf's rule names in trie order.
"""

from __future__ import annotations

import argparse
import sys

from repro.terms.ast import canonical_str


def describe_trie(engine) -> dict:
    """Structural summary of *engine*'s dispatch trie (plain data).

    Returns ``{label: {"depth": int, "nodes": int, "leaves": int,
    "rules": int, "residuals": int, "max_bucket": int}}`` plus the
    pseudo-labels ``"*"`` (wildcard rows) when present.
    """
    report: dict = {}
    for label, root in sorted(engine._index.items()):
        stats = {"depth": 0, "nodes": 0, "leaves": 0, "rules": 0,
                 "residuals": 0, "max_bucket": 0}
        stack = [(root, 0)]
        while stack:
            node, depth = stack.pop()
            stats["nodes"] += 1
            stats["depth"] = max(stats["depth"], depth)
            if node.axis is None:
                stats["leaves"] += 1
                stats["rules"] += len(node.entries)
                stats["max_bucket"] = max(stats["max_bucket"],
                                          len(node.entries))
                continue
            for child in node.children.values():
                stack.append((child, depth + 1))
            if node.residual is not None:
                stats["residuals"] += 1
                stack.append((node.residual, depth + 1))
        report[label] = stats
    if engine._wildcard_rows:
        report["*"] = {"depth": 0, "nodes": 0, "leaves": 0,
                       "rules": len(engine._wildcard_rows),
                       "residuals": 0,
                       "max_bucket": len(engine._wildcard_rows)}
    return report


def _dump_node(node, depth: int, slot: str, out, verbose: bool) -> None:
    pad = "  " * (depth + 1)
    if node.axis is None:
        names = [engine_row_name(row) for row in node.entries]
        print(f"{pad}[{depth}] {slot} leaf rules={len(node.entries)}",
              file=out)
        if verbose and names:
            print(f"{pad}    {', '.join(names)}", file=out)
        return
    kind, key = node.axis
    residual = "yes" if node.residual is not None else "no"
    print(f"{pad}[{depth}] {slot} split axis={kind}:{key} "
          f"values={len(node.children)} residual={residual}", file=out)
    for value in sorted(node.children, key=lambda v: canonical_str(v)):
        _dump_node(node.children[value], depth + 1,
                   f"= {canonical_str(value)}", out, verbose)
    if node.residual is not None:
        _dump_node(node.residual, depth + 1, "residual", out, verbose)


def engine_row_name(row) -> str:
    """The installed name of one trie row (via the engine's seq tuple)."""
    seq, rule, _evaluator, _discs = row
    return rule.name if seq[0] == 0 else f"…/{rule.name}"


def dump_engine(engine, out=None, verbose: bool = False,
                title: str = "engine") -> None:
    """Print one engine's trie, label by label, node by node."""
    if out is None:
        out = sys.stdout
    config = engine.config
    cap = ("off (root-label ablation)" if not config.discriminating_index
           else "unbounded" if config.trie_depth is None
           else str(config.trie_depth))
    print(f"{title}: {len(engine.rules())} rule(s), "
          f"{len(engine._index)} label trie(s), depth cap {cap}", file=out)
    for label, root in sorted(engine._index.items()):
        stats = describe_trie(engine)[label]
        print(f"  {label}: depth={stats['depth']} nodes={stats['nodes']} "
              f"leaves={stats['leaves']} residual_nodes={stats['residuals']} "
              f"max_bucket={stats['max_bucket']}", file=out)
        _dump_node(root, 0, "root", out, verbose)
    if engine._wildcard_rows:
        names = [engine_row_name(row) for row in engine._wildcard_rows]
        print(f"  * (wildcard): rules={len(names)}", file=out)
        if verbose:
            print(f"      {', '.join(names)}", file=out)
    if engine._groups:
        print(f"  suppression sets ({len(engine._groups)} grouped rule(s)):",
              file=out)
        by_group: dict = {}
        for name, (gid, kind, prec) in sorted(engine._groups.items()):
            by_group.setdefault((gid, kind), []).append((prec, name))
        for (gid, kind), members in sorted(by_group.items()):
            ranked = sorted(members, key=lambda m: (-m[0], m[1]))
            listing = ", ".join(f"{name}@{prec:g}" for prec, name in ranked)
            print(f"    {gid} [{kind}]: {listing}", file=out)


def dump(node, out=None, verbose: bool = False) -> None:
    """Dump the dispatch trie(s) of a live reactive node.

    Accepts a :class:`repro.api.ReactiveNode` (single-engine or sharded)
    or a bare :class:`~repro.core.engine.ReactiveEngine`.
    """
    if out is None:
        out = sys.stdout
    engines = getattr(node, "shards", None)
    if engines is None:
        dump_engine(node, out=out, verbose=verbose)
    elif len(engines) == 1:
        dump_engine(engines[0], out=out, verbose=verbose)
    else:
        for si, engine in enumerate(engines):
            dump_engine(engine, out=out, verbose=verbose,
                        title=f"shard {si}")


def _demo_node(rules: int, depth: "int | None", shards: int):
    from repro import EngineConfig, Simulation
    from repro.core import eca, first_match
    from repro.core.actions import PyAction
    from repro.events import EAtom
    from repro.terms import Var, q

    sim = Simulation(latency=0.0)
    node = sim.reactive_node(
        "http://triedump.example",
        config=EngineConfig(shards=shards, trie_depth=depth),
    )
    action = PyAction(lambda n, b: None, "noop")
    symbols = max(2, int(rules ** 0.5))
    node.install(*(
        eca(f"r{i}",
            EAtom(q("stock", q("venue", f"V{i % 3}"), sym=f"S{i % symbols}")),
            action)
        for i in range(rules)
    ))
    overlap = first_match("overlap")
    overlap.add(eca("specific", EAtom(q("stock", sym="S0")), action))
    overlap.add(eca("fallback", EAtom(q("stock", Var("X"))), action))
    node.install(overlap)
    return node


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Dump a live engine's discrimination trie.")
    parser.add_argument("--rules", type=int, default=32,
                        help="synthetic demo rules to install (default 32)")
    parser.add_argument("--depth", type=int, default=None,
                        help="trie depth cap (default: unbounded)")
    parser.add_argument("--shards", type=int, default=1,
                        help="shard count for the demo node (default 1)")
    parser.add_argument("--verbose", action="store_true",
                        help="print each leaf's rule names")
    args = parser.parse_args(argv)
    if args.rules < 1 or args.shards < 1 or (
            args.depth is not None and args.depth < 1):
        print("error: --rules/--shards/--depth must be >= 1",
              file=sys.stderr)
        return 2
    node = _demo_node(args.rules, args.depth, args.shards)
    dump(node, verbose=args.verbose)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Execute every ``python`` code block in the Markdown documentation.

The docs CI job runs this so README/docs examples cannot rot: each
fenced block marked ```` ```python ```` is compiled and executed in its
own fresh namespace (blocks must be self-contained; use ```` ```text ````
for shell snippets and non-runnable fragments).

Usage::

    PYTHONPATH=src python tools/run_doc_examples.py [files...]

With no arguments, checks ``README.md`` and every ``docs/*.md`` relative
to the repository root.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

BLOCK = re.compile(r"^```python\n(.*?)^```", re.S | re.M)


def default_files(root: Path) -> list[Path]:
    return [root / "README.md"] + sorted((root / "docs").glob("*.md"))


def run_file(path: Path) -> int:
    """Execute each python block in *path*; the number of blocks run."""
    text = path.read_text(encoding="utf-8")
    count = 0
    for match in BLOCK.finditer(text):
        count += 1
        source = match.group(1)
        line = text[: match.start()].count("\n") + 2  # after the fence
        location = f"{path}:{line} (block {count})"
        try:
            code = compile(source, location, "exec")
            exec(code, {"__name__": f"doc_example_{count}"})  # noqa: S102
        except Exception:
            print(f"FAILED {location}", file=sys.stderr)
            raise
        print(f"ok     {location}")
    return count


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    files = [Path(arg) for arg in argv] or default_files(root)
    total = 0
    for path in files:
        if not path.exists():
            print(f"FAILED {path}: no such file", file=sys.stderr)
            return 1
        total += run_file(path)
    if total == 0:
        print("FAILED: no ```python blocks found — wrong paths?",
              file=sys.stderr)
        return 1
    print(f"{total} documentation example(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Parser for the surface rule language.

Builds on the term tokenizer/parser: rule keywords are UPPER-CASE
identifiers, term patterns are parsed by the inherited term grammar from
the same token stream.

Grammar (informal)::

    program   := (rule | procedure | ruleset)*
    ruleset   := RULESET name program END
    procedure := PROCEDURE name [params...] action
    rule      := RULE name [FIRST]
                 ON event
                 ( (IF cond DO action)+ [ELSE action] | DO action [ELSE action] )
    event     := seq (OR seq)*
    seq       := conj (THEN [NOT pattern THEN?] conj)* [THEN NOT pattern]
    conj      := prim (AND prim)*
    prim      := WITHIN number ( event )
               | COUNT int OF pattern WITHIN number [BY [vars]]
               | AGG fn var OF pattern (LAST int | WITHIN number) INTO var
                     [BY [vars]] [RISE number % | WHEN op number]
               | ( event )
               | pattern [AS var]
    cond      := c_or;  c_or := c_and (OR c_and)*;  c_and := c_prim (AND c_prim)*
    c_prim    := TRUE | NOT c_prim | ( cond )
               | IN uri : pattern
               | construct op construct          (comparison)
    action    := SEQUENCE action (ALSO action)* END [NONATOMIC]
               | TRY action (ELSETRY action)* END
               | WHEN cond THEN action [ELSE action] END
               | RAISE TO uri construct
               | INSERT construct INTO uri AT pattern [START]
               | DELETE pattern FROM uri
               | REPLACE pattern IN uri BY construct
               | PUT uri construct
               | DELETERESOURCE uri
               | PERSIST construct INTO uri [ROOT name]
               | CALL name [p = construct, ...]
               | INSTALL construct
               | UNINSTALL (name | var X)
    uri       := "string" | var X
"""

from __future__ import annotations

from repro.core import actions as act
from repro.core import conditions as cond
from repro.core.rules import ECARule
from repro.core.rulesets import RuleSet
from repro.errors import ParseError
from repro.events.queries import (
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EWithin,
)
from repro.terms.ast import Var
from repro.terms.parser import _Parser

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")

_AGG_FNS = ("count", "sum", "avg", "min", "max")


class _RuleParser(_Parser):
    """Extends the term parser with the rule grammar."""

    # -- small helpers -----------------------------------------------------------

    def _at_kw(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "ident" and token.value == word

    def _eat_kw(self, word: str) -> bool:
        if self._at_kw(word):
            self._advance()
            return True
        return False

    def _expect_kw(self, word: str) -> None:
        token = self._peek()
        if not self._eat_kw(word):
            raise ParseError(
                f"expected {word!r}, found {token.value or token.kind!r}",
                token.position, token.line,
            )

    def _name(self) -> str:
        return self._expect_label()

    def _uri(self) -> "str | Var":
        token = self._peek()
        if token.kind == "string":
            return self._advance().value
        if self._at_keyword("var"):
            self._advance()
            return Var(self._expect("ident").value)
        raise ParseError(
            f"expected a URI string or var, found {token.value or token.kind!r}",
            token.position, token.line,
        )

    def _number(self) -> float:
        token = self._expect("number")
        return float(token.value)

    def _int(self) -> int:
        token = self._expect("number")
        try:
            return int(token.value)
        except ValueError as exc:
            raise ParseError(f"expected an integer, found {token.value!r}",
                             token.position, token.line) from exc

    # -- events -------------------------------------------------------------------

    def parse_event(self):
        members = [self._event_seq()]
        while self._eat_kw("OR"):
            members.append(self._event_seq())
        return members[0] if len(members) == 1 else EOr(*members)

    def _event_seq(self):
        members = [self._event_conj()]
        has_seq = False
        while self._eat_kw("THEN"):
            has_seq = True
            if self._eat_kw("NOT"):
                members.append(ENot(self.parse_query()))
                if self._eat_kw("THEN"):
                    members.append(self._event_conj())
            else:
                members.append(self._event_conj())
        return members[0] if not has_seq else ESeq(*members)

    def _event_conj(self):
        members = [self._event_prim()]
        while self._eat_kw("AND"):
            members.append(self._event_prim())
        return members[0] if len(members) == 1 else EAnd(*members)

    def _event_prim(self):
        if self._eat_kw("WITHIN"):
            window = self._number()
            self._expect("punct", "(")
            inner = self.parse_event()
            self._expect("punct", ")")
            return EWithin(inner, window)
        if self._eat_kw("COUNT"):
            n = self._int()
            self._expect_kw("OF")
            pattern = self.parse_query()
            self._expect_kw("WITHIN")
            window = self._number()
            group = self._group_by()
            return ECount(pattern, n, window, group)
        if self._eat_kw("AGG"):
            fn = self._expect("ident").value
            if fn not in _AGG_FNS:
                raise ParseError(f"unknown aggregate function {fn!r}")
            self._expect("ident", "var")
            on = self._expect("ident").value
            self._expect_kw("OF")
            pattern = self.parse_query()
            size = None
            window = None
            if self._eat_kw("LAST"):
                size = self._int()
            else:
                self._expect_kw("WITHIN")
                window = self._number()
            self._expect_kw("INTO")
            self._expect("ident", "var")
            into = self._expect("ident").value
            group = self._group_by()
            predicate = None
            if self._eat_kw("RISE"):
                predicate = ("rise%", self._number())
            elif self._eat_kw("WHEN"):
                op = self._expect("cmp").value
                predicate = (op, self._number())
            return EAggregate(pattern, on, fn, into, size=size, window=window,
                              group_by=group, predicate=predicate)
        if self._at_punct("("):
            self._advance()
            inner = self.parse_event()
            self._expect("punct", ")")
            return inner
        pattern = self.parse_query()
        alias = None
        if self._eat_kw("AS"):
            self._expect("ident", "var")
            alias = self._expect("ident").value
        return EAtom(pattern, alias=alias)

    def _group_by(self) -> tuple[str, ...]:
        if not self._eat_kw("BY"):
            return ()
        self._expect("punct", "[")
        names = []
        while not self._at_punct("]"):
            names.append(self._expect("ident").value)
            if not self._eat_punct(","):
                break
        self._expect("punct", "]")
        return tuple(names)

    # -- conditions -------------------------------------------------------------------

    def parse_condition(self):
        members = [self._cond_and()]
        while self._eat_kw("OR"):
            members.append(self._cond_and())
        return members[0] if len(members) == 1 else cond.OrCond(*members)

    def _cond_and(self):
        members = [self._cond_prim()]
        while self._eat_kw("AND"):
            members.append(self._cond_prim())
        return members[0] if len(members) == 1 else cond.AndCond(*members)

    def _cond_prim(self):
        if self._eat_kw("TRUE"):
            return cond.TrueCond()
        if self._eat_kw("NOT"):
            return cond.NotCond(self._cond_prim())
        if self._at_punct("("):
            self._advance()
            inner = self.parse_condition()
            self._expect("punct", ")")
            return inner
        if self._eat_kw("IN"):
            uri = self._uri()
            self._expect("punct", ":")
            query = self.parse_query()
            return cond.QueryCond(uri, query)
        # comparison: construct op construct
        lhs = self.parse_construct()
        token = self._peek()
        if token.kind != "cmp":
            raise ParseError(
                f"expected a comparison operator, found {token.value or token.kind!r}",
                token.position, token.line,
            )
        op = self._advance().value
        rhs = self.parse_construct()
        return cond.CompareCond(lhs, op, rhs)

    # -- actions -----------------------------------------------------------------------

    def parse_action(self):
        if self._eat_kw("SEQUENCE"):
            steps = [self.parse_action()]
            while self._eat_kw("ALSO"):
                steps.append(self.parse_action())
            self._expect_kw("END")
            atomic = not self._eat_kw("NONATOMIC")
            return act.Sequence(*steps, atomic=atomic)
        if self._eat_kw("TRY"):
            options = [self.parse_action()]
            while self._eat_kw("ELSETRY"):
                options.append(self.parse_action())
            self._expect_kw("END")
            return act.Alternative(*options)
        if self._eat_kw("WHEN"):
            condition = self.parse_condition()
            self._expect_kw("THEN")
            then = self.parse_action()
            otherwise = self.parse_action() if self._eat_kw("ELSE") else None
            self._expect_kw("END")
            return act.Conditional(condition, then, otherwise)
        if self._eat_kw("RAISE"):
            self._expect_kw("TO")
            to = self._uri()
            return act.Raise(to, self.parse_construct())
        if self._eat_kw("INSERT"):
            payload = self.parse_construct()
            self._expect_kw("INTO")
            uri = self._uri()
            self._expect_kw("AT")
            target = self.parse_query()
            position = "start" if self._eat_kw("START") else "end"
            return act.Update(uri, "insert", target, payload, position)
        if self._eat_kw("DELETE"):
            target = self.parse_query()
            self._expect_kw("FROM")
            return act.Update(self._uri(), "delete", target)
        if self._eat_kw("REPLACE"):
            target = self.parse_query()
            self._expect_kw("IN")
            uri = self._uri()
            self._expect_kw("BY")
            return act.Update(uri, "replace", target, self.parse_construct())
        if self._eat_kw("PUT"):
            uri = self._uri()
            return act.PutResource(uri, self.parse_construct())
        if self._eat_kw("DELETERESOURCE"):
            return act.DeleteResource(self._uri())
        if self._eat_kw("PERSIST"):
            content = self.parse_construct()
            self._expect_kw("INTO")
            uri = self._uri()
            root = self._name() if self._eat_kw("ROOT") else "log"
            return act.Persist(uri, content, root)
        if self._eat_kw("CALL"):
            name = self._name()
            args = []
            if self._eat_punct("("):
                while not self._at_punct(")"):
                    param = self._expect("ident").value
                    self._expect("eq")
                    args.append((param, self.parse_construct()))
                    if not self._eat_punct(","):
                        break
                self._expect("punct", ")")
            return act.CallProcedure(name, tuple(args))
        if self._eat_kw("INSTALL"):
            return act.InstallRule(self.parse_construct())
        if self._eat_kw("UNINSTALL"):
            if self._at_keyword("var"):
                self._advance()
                return act.UninstallRule(Var(self._expect("ident").value))
            return act.UninstallRule(self._name())
        token = self._peek()
        raise ParseError(
            f"expected an action keyword, found {token.value or token.kind!r}",
            token.position, token.line,
        )

    # -- rules -------------------------------------------------------------------------

    def parse_one_rule(self) -> ECARule:
        self._expect_kw("RULE")
        name = self._name()
        firing = "first" if self._eat_kw("FIRST") else "all"
        self._expect_kw("ON")
        event = self.parse_event()
        branches = []
        otherwise = None
        while self._eat_kw("IF"):
            condition = self.parse_condition()
            self._expect_kw("DO")
            branches.append((condition, self.parse_action()))
        if not branches:
            self._expect_kw("DO")
            branches.append((None, self.parse_action()))
        if self._eat_kw("ELSE"):
            otherwise = self.parse_action()
        return ECARule(name, event, tuple(branches), otherwise, firing)

    def parse_program_items(self, toplevel: bool = True):
        """Yield rules / (name, params, action) procedures / RuleSets."""
        items = []
        while True:
            if self._at_kw("RULE"):
                items.append(self.parse_one_rule())
            elif self._at_kw("PROCEDURE"):
                self._advance()
                name = self._name()
                params = []
                self._expect("punct", "(")
                while not self._at_punct(")"):
                    params.append(self._expect("ident").value)
                    if not self._eat_punct(","):
                        break
                self._expect("punct", ")")
                items.append(("procedure", name, tuple(params), self.parse_action()))
            elif self._at_kw("RULESET"):
                self._advance()
                name = self._name()
                ruleset = RuleSet(name)
                for item in self.parse_program_items(toplevel=False):
                    if isinstance(item, ECARule):
                        ruleset.add(item)
                    elif isinstance(item, RuleSet):
                        child = ruleset.subset(item.name)
                        _merge_ruleset(child, item)
                    else:
                        raise ParseError("procedures must be declared at top level")
                self._expect_kw("END")
                items.append(ruleset)
            else:
                if not toplevel:
                    return items
                token = self._peek()
                if token.kind == "end":
                    return items
                raise ParseError(
                    f"expected RULE/PROCEDURE/RULESET, found {token.value or token.kind!r}",
                    token.position, token.line,
                )


def _merge_ruleset(target: RuleSet, source: RuleSet) -> None:
    for name, rule in source._rules.items():
        target.add(rule)
    for name, child in source._children.items():
        _merge_ruleset(target.subset(name), child)


def parse_rule(text: str) -> ECARule:
    """Parse a single ``RULE ...`` definition."""
    parser = _RuleParser(text)
    rule = parser.parse_one_rule()
    parser.expect_end()
    return rule


def parse_event_query(text: str):
    """Parse the event part of a rule (the ``ON ...`` grammar) on its own.

    >>> parse_event_query('a{{ x[var X] }} THEN b{{ x[var X] }}')  # doctest: +ELLIPSIS
    ESeq(...)
    """
    parser = _RuleParser(text)
    query = parser.parse_event()
    parser.expect_end()
    return query


def parse_condition(text: str):
    """Parse the condition part of a rule (the ``IF ...`` grammar) alone."""
    parser = _RuleParser(text)
    condition = parser.parse_condition()
    parser.expect_end()
    return condition


def parse_action(text: str):
    """Parse the action part of a rule (the ``DO ...`` grammar) alone."""
    parser = _RuleParser(text)
    action = parser.parse_action()
    parser.expect_end()
    return action


def parse_program(text: str) -> list:
    """Parse a whole program: rules, procedures, and rule sets.

    Returns a list whose items are :class:`ECARule`, :class:`RuleSet`, or
    ``("procedure", name, params, action)`` tuples, in source order.
    Install them on an engine with::

        for item in parse_program(src):
            if isinstance(item, tuple):
                engine.define_procedure(item[1], item[2], item[3])
            else:
                engine.install(item)
    """
    parser = _RuleParser(text)
    items = parser.parse_program_items()
    parser.expect_end()
    return items

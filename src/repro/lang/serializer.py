"""Serializer for the surface rule language (round-trip safe).

``parse_rule(rule_to_text(rule)) == rule`` for every serialisable rule
(rules with :class:`PyAction` are refused, as in the meta encoding).
"""

from __future__ import annotations

from repro.core import actions as act
from repro.core import conditions as cond
from repro.core.rules import ECARule
from repro.core.rulesets import RuleSet
from repro.errors import MetaError
from repro.events.queries import (
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EWithin,
)
from repro.terms.ast import Var
from repro.terms.parser import to_text


def _uri_text(uri) -> str:
    if isinstance(uri, Var):
        return f"var {uri.name}"
    escaped = uri.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def event_to_text(query, parent: str = "top") -> str:
    """Serialise an event query; parenthesised per the grammar's precedence
    (OR lowest, THEN, then AND, then primaries)."""
    if isinstance(query, EAtom):
        text = to_text(query.pattern)
        if query.alias:
            text += f" AS var {query.alias}"
        return text
    if isinstance(query, EOr):
        text = " OR ".join(event_to_text(m, "or") for m in query.members)
        return f"( {text} )" if parent in ("and", "seq") else text
    if isinstance(query, ESeq):
        parts = []
        for member in query.members:
            if isinstance(member, ENot):
                parts.append(f"NOT {to_text(member.pattern)}")
            else:
                parts.append(event_to_text(member, "seq"))
        text = " THEN ".join(parts)
        return f"( {text} )" if parent in ("and", "seq") else text
    if isinstance(query, EAnd):
        text = " AND ".join(event_to_text(m, "and") for m in query.members)
        return f"( {text} )" if parent == "and" else text
    if isinstance(query, EWithin):
        return f"WITHIN {query.window!r} ( {event_to_text(query.query)} )"
    if isinstance(query, ECount):
        text = f"COUNT {query.n} OF {to_text(query.pattern)} WITHIN {query.window!r}"
        if query.group_by:
            text += " BY [" + ", ".join(query.group_by) + "]"
        return text
    if isinstance(query, EAggregate):
        text = f"AGG {query.fn} var {query.on} OF {to_text(query.pattern)}"
        if query.size is not None:
            text += f" LAST {query.size}"
        else:
            text += f" WITHIN {query.window!r}"
        text += f" INTO var {query.into}"
        if query.group_by:
            text += " BY [" + ", ".join(query.group_by) + "]"
        if query.predicate is not None:
            op, value = query.predicate
            if op == "rise%":
                text += f" RISE {value!r}"
            else:
                text += f" WHEN {op} {value!r}"
        return text
    raise MetaError(f"cannot serialise event query {query!r}")


def condition_to_text(condition, parent: str = "top") -> str:
    if condition is None or isinstance(condition, cond.TrueCond):
        return "TRUE"
    if isinstance(condition, cond.QueryCond):
        return f"IN {_uri_text(condition.uri)} : {to_text(condition.query)}"
    if isinstance(condition, cond.NotCond):
        return f"NOT ( {condition_to_text(condition.inner)} )"
    if isinstance(condition, cond.AndCond):
        text = " AND ".join(condition_to_text(m, "and") for m in condition.members)
        return f"( {text} )" if parent == "and" else text
    if isinstance(condition, cond.OrCond):
        text = " OR ".join(condition_to_text(m, "or") for m in condition.members)
        return f"( {text} )" if parent in ("and",) else text
    if isinstance(condition, cond.CompareCond):
        return f"{to_text(condition.lhs)} {condition.op} {to_text(condition.rhs)}"
    raise MetaError(f"cannot serialise condition {condition!r}")


def action_to_text(action, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(action, act.Sequence):
        steps = ("\n" + pad + "ALSO ").join(
            action_to_text(s, indent + 1) for s in action.actions
        )
        text = f"SEQUENCE {steps}\n{pad}END"
        if not action.atomic:
            text += " NONATOMIC"
        return text
    if isinstance(action, act.Alternative):
        options = ("\n" + pad + "ELSETRY ").join(
            action_to_text(o, indent + 1) for o in action.actions
        )
        return f"TRY {options}\n{pad}END"
    if isinstance(action, act.Conditional):
        text = (
            f"WHEN {condition_to_text(action.condition)} "
            f"THEN {action_to_text(action.then, indent + 1)}"
        )
        if action.otherwise is not None:
            text += f" ELSE {action_to_text(action.otherwise, indent + 1)}"
        return text + " END"
    if isinstance(action, act.Raise):
        return f"RAISE TO {_uri_text(action.to)} {to_text(action.term)}"
    if isinstance(action, act.Update):
        if action.kind == "insert":
            text = (
                f"INSERT {to_text(action.payload)} INTO {_uri_text(action.uri)} "
                f"AT {to_text(action.target)}"
            )
            if action.position == "start":
                text += " START"
            return text
        if action.kind == "delete":
            return f"DELETE {to_text(action.target)} FROM {_uri_text(action.uri)}"
        return (
            f"REPLACE {to_text(action.target)} IN {_uri_text(action.uri)} "
            f"BY {to_text(action.payload)}"
        )
    if isinstance(action, act.PutResource):
        return f"PUT {_uri_text(action.uri)} {to_text(action.content)}"
    if isinstance(action, act.DeleteResource):
        return f"DELETERESOURCE {_uri_text(action.uri)}"
    if isinstance(action, act.Persist):
        text = f"PERSIST {to_text(action.content)} INTO {_uri_text(action.uri)}"
        if action.root_label != "log":
            text += f" ROOT {action.root_label}"
        return text
    if isinstance(action, act.CallProcedure):
        if not action.args:
            return f"CALL {action.name}()"
        args = ", ".join(f"{name} = {to_text(value)}" for name, value in action.args)
        return f"CALL {action.name}({args})"
    if isinstance(action, act.InstallRule):
        return f"INSTALL {to_text(action.rule_term)}"
    if isinstance(action, act.UninstallRule):
        if isinstance(action.name, Var):
            return f"UNINSTALL var {action.name.name}"
        return f"UNINSTALL {action.name}"
    if isinstance(action, act.PyAction):
        raise MetaError(f"PyAction {action.label!r} has no textual form")
    raise MetaError(f"cannot serialise action {action!r}")


def rule_to_text(rule: ECARule) -> str:
    """Serialise one rule to the surface language."""
    lines = [f"RULE {rule.name}" + (" FIRST" if rule.firing == "first" else "")]
    lines.append(f"ON {event_to_text(rule.event)}")
    plain = len(rule.branches) == 1 and (
        rule.branches[0][0] is None or isinstance(rule.branches[0][0], cond.TrueCond)
    )
    if plain:
        lines.append(f"DO {action_to_text(rule.branches[0][1], 1)}")
    else:
        for branch_condition, branch_action in rule.branches:
            lines.append(f"IF {condition_to_text(branch_condition)}")
            lines.append(f"DO {action_to_text(branch_action, 1)}")
    if rule.otherwise is not None:
        lines.append(f"ELSE {action_to_text(rule.otherwise, 1)}")
    return "\n".join(lines)


def program_to_text(items: list) -> str:
    """Serialise a program (the inverse of ``parse_program``)."""
    chunks = []
    for item in items:
        if isinstance(item, ECARule):
            chunks.append(rule_to_text(item))
        elif isinstance(item, RuleSet):
            chunks.append(_ruleset_to_text(item))
        elif isinstance(item, tuple) and item and item[0] == "procedure":
            _, name, params, action = item
            chunks.append(
                f"PROCEDURE {name}({', '.join(params)}) {action_to_text(action, 1)}"
            )
        else:
            raise MetaError(f"cannot serialise program item {item!r}")
    return "\n\n".join(chunks)


def _ruleset_to_text(ruleset: RuleSet) -> str:
    lines = [f"RULESET {ruleset.name}"]
    for rule in ruleset._rules.values():
        lines.append(rule_to_text(rule))
    for child in ruleset._children.values():
        lines.append(_ruleset_to_text(child))
    lines.append("END")
    return "\n".join(lines)

"""The surface syntax for reactive rule programs (the XChange role).

A small, readable textual language for whole rules and rule programs::

    RULE notify-shipment
    ON order{{ id[var O], customer[var C] }} THEN payment{{ id[var O] }}
    IF IN "http://shop.example/stock" : item{{ id[var O], qty[var Q] }}
       AND var Q > 0
    DO SEQUENCE
         REPLACE qty[var Q] IN "http://shop.example/stock"
                 BY qty[sub(var Q, 1)]
         ALSO RAISE TO "http://warehouse.example" ship{ id[var O], to[var C] }
       END

Keywords are upper-case; everything lower-case inside patterns is the term
language from :mod:`repro.terms.parser`.  ``parse_rule``/``parse_program``
and ``rule_to_text`` round-trip (tested), which together with the term
encoding in :mod:`repro.core.meta` gives two interchangeable wire formats
for rule exchange (Thesis 11).
"""

from repro.lang.parser import (
    parse_action,
    parse_condition,
    parse_event_query,
    parse_program,
    parse_rule,
)
from repro.lang.serializer import program_to_text, rule_to_text

__all__ = [
    "parse_action",
    "parse_condition",
    "parse_event_query",
    "parse_program",
    "parse_rule",
    "program_to_text",
    "rule_to_text",
]

"""Textual syntax for data, query, and construct terms.

The syntax follows Xcerpt's look and feel:

- ``f[a, b]`` — ordered data term; ``f{a, b}`` — unordered data term.
- Query children braces select the matching mode: ``f[x]`` ordered total,
  ``f[[x]]`` ordered partial, ``f{x}`` unordered total, ``f{{x}}`` unordered
  partial.  A bare label in a query (``f``) matches a term labelled ``f``
  with *any* children (shorthand for ``f{{}}``); in a data term it denotes a
  leaf element (no children).
- ``var X``, ``var X -> q``, ``desc q``, ``without q``,
  ``optional q default v``, comparisons ``> 5`` / ``== var X``, and regular
  expressions ``re "pat"`` form the remaining query constructs.
- Construct terms use ``var X``, grouping ``all c`` (optionally
  ``all c order [X, Y]``), aggregations ``count(var X)`` etc., and scalar
  functions ``add(var X, 1)``.
- Attributes attach after the label: ``book @{lang="en"} {...}``.
- Labels that collide with keywords (or contain exotic characters) are
  written back-quoted: ``` `var`{...} ```.

:func:`to_text` serialises any term such that parsing the output yields an
equal term (round-trip property, tested with hypothesis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError
from repro.terms.ast import (
    Agg,
    All,
    Child,
    Compare,
    Construct,
    CTerm,
    Data,
    Desc,
    Fn,
    LabelVar,
    Optional_,
    QTerm,
    Query,
    RegexMatch,
    Var,
    Without,
    is_scalar,
)

_KEYWORDS = frozenset(
    [
        "var", "desc", "without", "optional", "default", "all", "order",
        "by", "true", "false", "re",
    ]
)

_AGG_FNS = frozenset(["count", "sum", "avg", "min", "max", "first", "last"])

_PUNCT = frozenset("{}[](),@^*:;")

_CMP_OPS = ("==", "!=", "<=", ">=", "<", ">")


@dataclass(frozen=True)
class _Token:
    kind: str  # ident, string, number, punct, cmp, arrow, eq, end
    value: str
    position: int
    line: int


class _Tokenizer:
    """Hand-written tokenizer shared by all three term parsers."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self._line = 1

    def tokens(self) -> list[_Token]:
        out = []
        while True:
            token = self._next()
            out.append(token)
            if token.kind == "end":
                return out

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self._pos, self._line)

    def _next(self) -> _Token:
        text = self._text
        while self._pos < len(text):
            ch = text[self._pos]
            if ch == "\n":
                self._line += 1
                self._pos += 1
            elif ch.isspace():
                self._pos += 1
            elif ch == "#":  # comment to end of line
                while self._pos < len(text) and text[self._pos] != "\n":
                    self._pos += 1
            else:
                break
        if self._pos >= len(text):
            return _Token("end", "", self._pos, self._line)
        start, line = self._pos, self._line
        ch = text[start]
        two = text[start : start + 2]
        if two == "->":
            self._pos += 2
            return _Token("arrow", "->", start, line)
        if two in ("==", "!=", "<=", ">="):
            self._pos += 2
            return _Token("cmp", two, start, line)
        if ch in "<>":
            self._pos += 1
            return _Token("cmp", ch, start, line)
        if ch == "=":
            self._pos += 1
            return _Token("eq", "=", start, line)
        if ch in _PUNCT:
            self._pos += 1
            return _Token("punct", ch, start, line)
        if ch == '"':
            return self._string(start, line)
        if ch == "`":
            return self._quoted_ident(start, line)
        if ch.isdigit() or (ch == "-" and start + 1 < len(text) and text[start + 1].isdigit()):
            return self._number(start, line)
        if ch.isalpha() or ch == "_":
            return self._ident(start, line)
        raise self._error(f"unexpected character {ch!r}")

    def _string(self, start: int, line: int) -> _Token:
        text = self._text
        pos = start + 1
        parts: list[str] = []
        while pos < len(text):
            ch = text[pos]
            if ch == '"':
                self._pos = pos + 1
                return _Token("string", "".join(parts), start, line)
            if ch == "\\":
                if pos + 1 >= len(text):
                    break
                escape = text[pos + 1]
                mapped = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}.get(escape)
                if mapped is None:
                    raise ParseError(f"bad escape \\{escape}", pos, line)
                parts.append(mapped)
                pos += 2
            else:
                if ch == "\n":
                    self._line += 1
                parts.append(ch)
                pos += 1
        raise ParseError("unterminated string literal", start, line)

    def _quoted_ident(self, start: int, line: int) -> _Token:
        text = self._text
        pos = start + 1
        while pos < len(text) and text[pos] != "`":
            pos += 1
        if pos >= len(text):
            raise ParseError("unterminated back-quoted label", start, line)
        self._pos = pos + 1
        return _Token("qident", text[start + 1 : pos], start, line)

    def _number(self, start: int, line: int) -> _Token:
        text = self._text
        pos = start + 1 if text[start] == "-" else start
        while pos < len(text) and text[pos].isdigit():
            pos += 1
        if pos < len(text) and text[pos] == ".":
            pos += 1
            while pos < len(text) and text[pos].isdigit():
                pos += 1
        if pos < len(text) and text[pos] in "eE":
            probe = pos + 1
            if probe < len(text) and text[probe] in "+-":
                probe += 1
            if probe < len(text) and text[probe].isdigit():
                pos = probe
                while pos < len(text) and text[pos].isdigit():
                    pos += 1
        self._pos = pos
        return _Token("number", text[start:pos], start, line)

    def _ident(self, start: int, line: int) -> _Token:
        text = self._text
        pos = start
        while pos < len(text) and (text[pos].isalnum() or text[pos] in "_-.:"):
            pos += 1
        # Do not swallow a trailing '.', '-', or ':' (keeps "a.b." and
        # "X :" round-trippable; namespace colons mid-ident are preserved).
        while pos > start and text[pos - 1] in ".-:":
            pos -= 1
        self._pos = pos
        return _Token("ident", text[start:pos], start, line)


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self._tokens = _Tokenizer(text).tokens()
        self._index = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, ahead: int = 0) -> _Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "end":
            self._index += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> _Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}, found {token.value or token.kind!r}",
                             token.position, token.line)
        return self._advance()

    def _expect_label(self) -> str:
        token = self._peek()
        if token.kind not in ("ident", "qident"):
            raise ParseError(f"expected a label, found {token.value or token.kind!r}",
                             token.position, token.line)
        return self._advance().value

    def _at_punct(self, value: str) -> bool:
        token = self._peek()
        return token.kind == "punct" and token.value == value

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "ident" and token.value == word

    def _eat_punct(self, value: str) -> bool:
        if self._at_punct(value):
            self._advance()
            return True
        return False

    def expect_end(self) -> None:
        token = self._peek()
        if token.kind != "end":
            raise ParseError(f"trailing input: {token.value!r}", token.position, token.line)

    # -- literals ------------------------------------------------------------

    def _literal(self) -> Child:
        token = self._peek()
        if token.kind == "string":
            self._advance()
            return token.value
        if token.kind == "number":
            self._advance()
            if any(ch in token.value for ch in ".eE"):
                return float(token.value)
            return int(token.value)
        if token.kind == "ident" and token.value in ("true", "false"):
            self._advance()
            return token.value == "true"
        raise ParseError(f"expected a literal, found {token.value or token.kind!r}",
                         token.position, token.line)

    def _at_literal(self) -> bool:
        token = self._peek()
        return token.kind in ("string", "number") or (
            token.kind == "ident" and token.value in ("true", "false")
        )

    def _attrs(self, allow_vars: bool) -> tuple[tuple[str, "str | Var"], ...]:
        """Parse ``@{k="v", k2=var X}`` (the ``@`` is already consumed)."""
        self._expect("punct", "{")
        pairs: list[tuple[str, "str | Var"]] = []
        while not self._at_punct("}"):
            key = self._expect_label()
            self._expect("eq")
            if allow_vars and self._at_keyword("var"):
                self._advance()
                pairs.append((key, Var(self._expect("ident").value)))
            else:
                pairs.append((key, self._expect("string").value))
            if not self._eat_punct(","):
                break
        self._expect("punct", "}")
        return tuple(sorted(pairs, key=lambda kv: kv[0]))

    # -- data terms ----------------------------------------------------------

    def parse_data(self) -> Child:
        if self._at_literal():
            return self._literal()
        label = self._expect_label()
        attrs: tuple[tuple[str, str], ...] = ()
        if self._eat_punct("@"):
            attrs = self._attrs(allow_vars=False)  # type: ignore[assignment]
        if self._eat_punct("{"):
            children = self._data_children("}")
            return Data(label, children, False, attrs)
        if self._eat_punct("["):
            children = self._data_children("]")
            return Data(label, children, True, attrs)
        return Data(label, (), True, attrs)

    def _data_children(self, closing: str) -> tuple[Child, ...]:
        children: list[Child] = []
        while not self._at_punct(closing):
            children.append(self.parse_data())
            if not self._eat_punct(","):
                break
        self._expect("punct", closing)
        return tuple(children)

    # -- query terms ----------------------------------------------------------

    def parse_query(self) -> Query:
        token = self._peek()
        if token.kind == "cmp":
            self._advance()
            if self._at_keyword("var"):
                self._advance()
                return Compare(token.value, Var(self._expect("ident").value))
            literal = self._literal()
            return Compare(token.value, literal)  # type: ignore[arg-type]
        if self._at_keyword("var"):
            self._advance()
            name = self._expect("ident").value
            if self._peek().kind == "arrow":
                self._advance()
                return Var(name, self.parse_query())
            return Var(name)
        if self._at_keyword("desc"):
            self._advance()
            return Desc(self.parse_query())
        if self._at_keyword("without"):
            self._advance()
            return Without(self.parse_query())
        if self._at_keyword("optional"):
            self._advance()
            inner = self.parse_query()
            default: Child | None = None
            if self._at_keyword("default"):
                self._advance()
                default = self.parse_data()
            return Optional_(inner, default)
        if self._at_keyword("re"):
            self._advance()
            return RegexMatch(self._expect("string").value)
        if self._at_literal():
            return self._literal()
        return self._qterm()

    def _qterm(self) -> QTerm:
        label: "str | LabelVar"
        if self._eat_punct("^"):
            label = LabelVar(self._expect("ident").value)
        elif self._eat_punct("*"):
            label = "*"
        else:
            label = self._expect_label()
        attrs: tuple[tuple[str, "str | Var"], ...] = ()
        if self._eat_punct("@"):
            attrs = self._attrs(allow_vars=True)
        if self._eat_punct("{"):
            if self._eat_punct("{"):
                children = self._query_children("}")
                self._expect("punct", "}")
                return QTerm(label, children, False, False, attrs)
            children = self._query_children("}")
            return QTerm(label, children, False, True, attrs)
        if self._eat_punct("["):
            if self._eat_punct("["):
                children = self._query_children("]")
                self._expect("punct", "]")
                return QTerm(label, children, True, False, attrs)
            children = self._query_children("]")
            return QTerm(label, children, True, True, attrs)
        # Bare label: match any children (unordered partial, no patterns).
        return QTerm(label, (), False, False, attrs)

    def _query_children(self, closing: str) -> tuple[Query, ...]:
        children: list[Query] = []
        while not self._at_punct(closing):
            children.append(self.parse_query())
            if not self._eat_punct(","):
                break
        self._expect("punct", closing)
        return tuple(children)

    # -- construct terms -------------------------------------------------------

    def parse_construct(self) -> Construct:
        if self._at_keyword("var"):
            self._advance()
            return Var(self._expect("ident").value)
        if self._at_keyword("all"):
            self._advance()
            inner = self.parse_construct()
            order_by: tuple[str, ...] = ()
            if self._at_keyword("order"):
                self._advance()
                self._expect("ident", "by")
                self._expect("punct", "[")
                names = []
                while not self._at_punct("]"):
                    names.append(self._expect("ident").value)
                    if not self._eat_punct(","):
                        break
                self._expect("punct", "]")
                order_by = tuple(names)
            return All(inner, order_by)
        if self._at_literal():
            return self._literal()
        # Label: plain, variable (^X), or function/aggregation call.
        token = self._peek()
        if token.kind == "ident" and self._peek(1).kind == "punct" and self._peek(1).value == "(":
            return self._call()
        label: "str | Var"
        if self._eat_punct("^"):
            label = Var(self._expect("ident").value)
        else:
            label = self._expect_label()
        attrs: tuple[tuple[str, "str | Var"], ...] = ()
        if self._eat_punct("@"):
            attrs = self._attrs(allow_vars=True)
        if self._eat_punct("{"):
            children = self._construct_children("}")
            return CTerm(label, children, False, attrs)
        if self._eat_punct("["):
            children = self._construct_children("]")
            return CTerm(label, children, True, attrs)
        return CTerm(label, (), True, attrs)

    def _call(self) -> Construct:
        name = self._expect("ident").value
        self._expect("punct", "(")
        if name in _AGG_FNS and self._at_keyword("var"):
            self._advance()
            var_name = self._expect("ident").value
            self._expect("punct", ")")
            return Agg(name, var_name)
        args: list[Construct] = []
        while not self._at_punct(")"):
            args.append(self.parse_construct())
            if not self._eat_punct(","):
                break
        self._expect("punct", ")")
        return Fn(name, tuple(args))

    def _construct_children(self, closing: str) -> tuple[Construct, ...]:
        children: list[Construct] = []
        while not self._at_punct(closing):
            children.append(self.parse_construct())
            if not self._eat_punct(","):
                break
        self._expect("punct", closing)
        return tuple(children)


# ---------------------------------------------------------------------------
# Public parse functions
# ---------------------------------------------------------------------------


def parse_data(text: str) -> Child:
    """Parse a data term (or scalar literal) from text."""
    parser = _Parser(text)
    term = parser.parse_data()
    parser.expect_end()
    return term


def parse_query(text: str) -> Query:
    """Parse a query term from text."""
    parser = _Parser(text)
    term = parser.parse_query()
    parser.expect_end()
    return term


def parse_construct(text: str) -> Construct:
    """Parse a construct term from text."""
    parser = _Parser(text)
    term = parser.parse_construct()
    parser.expect_end()
    return term


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------


def _escape_string(value: str) -> str:
    out = value.replace("\\", "\\\\").replace('"', '\\"')
    out = out.replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r")
    return f'"{out}"'


def _is_plain_ident(label: str) -> bool:
    if not label or label in _KEYWORDS:
        return False
    if not (label[0].isalpha() or label[0] == "_"):
        return False
    if label[-1] in ".-":
        return False
    return all(ch.isalnum() or ch in "_-.:" for ch in label)


def _label_text(label: str) -> str:
    return label if _is_plain_ident(label) else f"`{label}`"


def _scalar_text(value: Child) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return _escape_string(value)
    return repr(value)


def _attrs_text(attrs: tuple[tuple[str, object], ...]) -> str:
    if not attrs:
        return ""
    parts = []
    for key, value in attrs:
        key_text = _label_text(key)
        if isinstance(value, Var):
            parts.append(f"{key_text}=var {value.name}")
        elif isinstance(value, Fn):
            parts.append(f"{key_text}={to_text(value)}")
        else:
            parts.append(f"{key_text}={_escape_string(str(value))}")
    return " @{" + ", ".join(parts) + "}"


def to_text(term: "Query | Construct | Child") -> str:
    """Serialise any term to parseable text (round-trip safe)."""
    if is_scalar(term):
        return _scalar_text(term)  # type: ignore[arg-type]
    if isinstance(term, Data):
        label = _label_text(term.label) + _attrs_text(term.attrs)
        if not term.children and term.ordered:
            return label
        inner = ", ".join(to_text(child) for child in term.children)
        return f"{label}[{inner}]" if term.ordered else f"{label}{{{inner}}}"
    if isinstance(term, Var):
        if term.inner is not None:
            return f"var {term.name} -> {to_text(term.inner)}"
        return f"var {term.name}"
    if isinstance(term, Desc):
        return f"desc {to_text(term.inner)}"
    if isinstance(term, Without):
        return f"without {to_text(term.inner)}"
    if isinstance(term, Optional_):
        text = f"optional {to_text(term.inner)}"
        if term.default is not None:
            text += f" default {to_text(term.default)}"
        return text
    if isinstance(term, Compare):
        rhs = f"var {term.rhs.name}" if isinstance(term.rhs, Var) else _scalar_text(term.rhs)
        return f"{term.op} {rhs}"
    if isinstance(term, RegexMatch):
        return f"re {_escape_string(term.pattern)}"
    if isinstance(term, QTerm):
        if isinstance(term.label, LabelVar):
            label = f"^{term.label.name}"
        elif term.label == "*":
            label = "*"
        else:
            label = _label_text(term.label)
        label += _attrs_text(term.attrs)
        if not term.children and not term.ordered and not term.total:
            return label
        inner = ", ".join(to_text(child) for child in term.children)
        if term.ordered:
            return f"{label}[{inner}]" if term.total else f"{label}[[{inner}]]"
        return f"{label}{{{inner}}}" if term.total else f"{label}{{{{{inner}}}}}"
    if isinstance(term, CTerm):
        if isinstance(term.label, Var):
            label = f"^{term.label.name}"
        else:
            label = _label_text(term.label)
        label += _attrs_text(term.attrs)
        if not term.children and term.ordered:
            return label
        inner = ", ".join(to_text(child) for child in term.children)
        return f"{label}[{inner}]" if term.ordered else f"{label}{{{inner}}}"
    if isinstance(term, All):
        text = f"all {to_text(term.inner)}"
        if term.order_by:
            text += " order by [" + ", ".join(term.order_by) + "]"
        return text
    if isinstance(term, Agg):
        return f"{term.fn}(var {term.var})"
    if isinstance(term, Fn):
        return f"{term.name}(" + ", ".join(to_text(arg) for arg in term.args) + ")"
    raise ParseError(f"cannot serialise {term!r}")

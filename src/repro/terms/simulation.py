"""Simulation unification: matching query terms against data terms.

This is the query-evaluation core of the library (Thesis 7).  ``match``
returns *all* ways a query term simulates into a data term, each as a
:class:`~repro.terms.ast.Bindings`; an empty list means no match, a list
containing the empty binding set means a match that bound no variables.

Matching modes (set per query term) follow Xcerpt:

====================  =======================================================
mode                  children semantics
====================  =======================================================
ordered, total        query children match data children exactly, in order
ordered, partial      query children match an order-preserving subsequence
unordered, total      bijection between query children and data children
unordered, partial    injection from query children into data children
====================  =======================================================

``without`` (subterm negation) asserts that *no* child of the matched data
term matches the negated pattern; it is evaluated after the positive
children, under the bindings they produced.  ``optional`` prefers presence:
the absent branch (with its declared defaults) is taken only when no overall
match consumes a child for it.

Two entry points evaluate a pattern:

- :func:`match` / :func:`matches` — the interpreted tree-walk;
- :func:`compile_pattern` — compiles a pattern *once* into a closure that
  front-loads ground-constant checks (root label, constant attributes,
  required constant children) as direct comparisons, so the common
  non-matching candidate is rejected without recursion or binding
  allocation; all-constant patterns never fall back to the tree-walk at
  all.  The closure returns exactly what ``match`` returns (the property
  suite fuzzes the equivalence).

Both entry points bump a call counter (:func:`matcher_call_count`) that
engines snapshot around evaluator calls to attribute matching work to
dispatch (``EngineStats.matcher_calls``).  The counter is *thread-local*:
with the threaded shard executor (``EngineConfig(executor="threads")``)
several workers match concurrently, and each engine's before/after delta
must see only its own worker's calls — a shared global would double-count
across shards and tear under concurrent increments.
"""

from __future__ import annotations

import re
import threading
from functools import lru_cache
from typing import Callable, Iterator

from repro.errors import QueryError
from repro.terms.ast import (
    Bindings,
    Child,
    Compare,
    Data,
    Desc,
    EMPTY_BINDINGS,
    LabelVar,
    Optional_,
    QTerm,
    Query,
    RegexMatch,
    Var,
    Without,
    is_scalar,
    values_equal,
)


class _MatcherCounter(threading.local):
    """Per-thread matcher-call tally (fresh zero in every worker thread)."""

    def __init__(self) -> None:
        self.n = 0


_matcher_calls = _MatcherCounter()


def matcher_call_count() -> int:
    """Total matcher invocations (interpreted and compiled) on this thread.

    Monotonic per thread; engines snapshot it around evaluator calls to
    compute the per-dispatch delta for ``EngineStats.matcher_calls`` —
    thread-local so concurrent shard workers never see each other's calls.
    """
    return _matcher_calls.n


def match(query: Query, data: Child, bindings: Bindings = EMPTY_BINDINGS) -> list[Bindings]:
    """Return every binding set under which *query* matches *data*.

    The result is deduplicated and order-stable (first-derivation order).
    """
    _matcher_calls.n += 1
    return _collect(query, data, bindings)


def matches(query: Query, data: Child, bindings: Bindings = EMPTY_BINDINGS) -> bool:
    """Return True if *query* matches *data* at least one way."""
    _matcher_calls.n += 1
    for _ in _match(query, data, bindings):
        return True
    return False


def _collect(query: Query, data: Child, bindings: Bindings) -> list[Bindings]:
    """Deduplicated, order-stable derivations (shared by match/compiled)."""
    seen: set[Bindings] = set()
    result: list[Bindings] = []
    for b in _match(query, data, bindings):
        if b not in seen:
            seen.add(b)
            result.append(b)
    return result


@lru_cache(maxsize=512)
def _compiled(pattern: str) -> "re.Pattern[str]":
    return re.compile(pattern)


def _match(query: Query, data: Child, b: Bindings) -> Iterator[Bindings]:
    """Yield binding extensions (possibly with duplicates)."""
    if is_scalar(query):
        if is_scalar(data) and values_equal(query, data):  # type: ignore[arg-type]
            yield b
        return

    if isinstance(query, Data):
        if values_equal(query, data):
            yield b
        return

    if isinstance(query, Var):
        yield from _match_var(query, data, b)
        return

    if isinstance(query, Desc):
        yield from _match_desc(query, data, b)
        return

    if isinstance(query, Compare):
        if _compare_holds(query, data, b):
            yield b
        return

    if isinstance(query, RegexMatch):
        if isinstance(data, str) and _compiled(query.pattern).fullmatch(data):
            yield b
        return

    if isinstance(query, Without):
        if not matches(query.inner, data, b):
            yield b
        return

    if isinstance(query, Optional_):
        matched = False
        for b2 in _match(query.inner, data, b):
            matched = True
            yield b2
        if not matched:
            yield _bind_optional_default(query, b)
        return

    if isinstance(query, QTerm):
        yield from _match_qterm(query, data, b)
        return

    raise QueryError(f"not a query term: {query!r}")


def _match_var(query: Var, data: Child, b: Bindings) -> Iterator[Bindings]:
    bound = query.name in b
    if bound:
        if not values_equal(b[query.name], data):
            return
        if query.inner is None:
            yield b
        else:
            yield from _match(query.inner, data, b)
        return
    if query.inner is None:
        extended = b.bind(query.name, data)
        if extended is not None:
            yield extended
        return
    for b2 in _match(query.inner, data, b):
        extended = b2.bind(query.name, data)
        if extended is not None:
            yield extended


def _match_desc(query: Desc, data: Child, b: Bindings) -> Iterator[Bindings]:
    yield from _match(query.inner, data, b)
    if isinstance(data, Data):
        for child in data.children:
            yield from _match_desc(query, child, b)


def _compare_holds(query: Compare, data: Child, b: Bindings) -> bool:
    if not is_scalar(data):
        return False
    rhs = query.rhs
    if isinstance(rhs, Var):
        if rhs.name not in b:
            raise QueryError(
                f"comparison references unbound variable {rhs.name!r}; "
                "comparisons are evaluated after positive patterns"
            )
        rhs = b[rhs.name]  # type: ignore[assignment]
        if not is_scalar(rhs):
            return False
    if query.op == "==":
        return values_equal(data, rhs)  # type: ignore[arg-type]
    if query.op == "!=":
        return not values_equal(data, rhs)  # type: ignore[arg-type]
    # Ordering comparisons: numbers with numbers (bool excluded), str with str.
    left_num = isinstance(data, (int, float)) and not isinstance(data, bool)
    right_num = isinstance(rhs, (int, float)) and not isinstance(rhs, bool)
    if left_num and right_num:
        pass
    elif isinstance(data, str) and isinstance(rhs, str):
        pass
    else:
        return False
    if query.op == "<":
        return data < rhs  # type: ignore[operator]
    if query.op == "<=":
        return data <= rhs  # type: ignore[operator]
    if query.op == ">":
        return data > rhs  # type: ignore[operator]
    return data >= rhs  # type: ignore[operator]


def _bind_optional_default(query: Optional_, b: Bindings) -> Bindings:
    """Bind the optional's variable to its default when the child is absent."""
    inner = query.inner
    if query.default is not None and isinstance(inner, Var) and inner.name not in b:
        extended = b.bind(inner.name, query.default)
        if extended is not None:
            return extended
    return b


def _match_qterm(query: QTerm, data: Child, b: Bindings) -> Iterator[Bindings]:
    if not isinstance(data, Data):
        return
    # Label.
    if isinstance(query.label, LabelVar):
        extended = b.bind(query.label.name, data.label)
        if extended is None:
            return
        b = extended
    elif query.label != "*" and query.label != data.label:
        return
    # Attributes (always partial).
    for key, want in query.attrs:
        have = data.attr(key)
        if have is None:
            return
        if isinstance(want, Var):
            extended = b.bind(want.name, have)
            if extended is None:
                return
            b = extended
        elif want != have:
            return
    # Children.
    positives = [c for c in query.children if not isinstance(c, Without)]
    withouts = [c for c in query.children if isinstance(c, Without)]
    if query.ordered:
        if query.total:
            candidate_iter = _seq_total(positives, data.children, 0, 0, b)
        else:
            candidate_iter = _seq_partial(positives, data.children, 0, 0, b)
    else:
        candidate_iter = _unordered(positives, data.children, 0, frozenset(), b, query.total)
    for b2 in candidate_iter:
        if _withouts_hold(withouts, data.children, b2):
            yield b2


def _seq_total(
    qs: list[Query], ds: tuple[Child, ...], qi: int, di: int, b: Bindings
) -> Iterator[Bindings]:
    """Ordered total: consume every data child, in order."""
    if qi == len(qs):
        if di == len(ds):
            yield b
        return
    head = qs[qi]
    if isinstance(head, Optional_):
        produced = False
        if di < len(ds):
            for b2 in _match(head.inner, ds[di], b):
                for out in _seq_total(qs, ds, qi + 1, di + 1, b2):
                    produced = True
                    yield out
        if not produced:
            yield from _seq_total(qs, ds, qi + 1, di, _bind_optional_default(head, b))
        return
    if di >= len(ds):
        return
    for b2 in _match(head, ds[di], b):
        yield from _seq_total(qs, ds, qi + 1, di + 1, b2)


def _seq_partial(
    qs: list[Query], ds: tuple[Child, ...], qi: int, di: int, b: Bindings
) -> Iterator[Bindings]:
    """Ordered partial: match an order-preserving subsequence."""
    if qi == len(qs):
        yield b
        return
    head = qs[qi]
    if isinstance(head, Optional_):
        produced = False
        for j in range(di, len(ds)):
            for b2 in _match(head.inner, ds[j], b):
                for out in _seq_partial(qs, ds, qi + 1, j + 1, b2):
                    produced = True
                    yield out
        if not produced:
            yield from _seq_partial(qs, ds, qi + 1, di, _bind_optional_default(head, b))
        return
    for j in range(di, len(ds)):
        for b2 in _match(head, ds[j], b):
            yield from _seq_partial(qs, ds, qi + 1, j + 1, b2)


def _unordered(
    qs: list[Query],
    ds: tuple[Child, ...],
    qi: int,
    used: frozenset[int],
    b: Bindings,
    total: bool,
) -> Iterator[Bindings]:
    """Unordered: injective (partial) or bijective (total) assignment."""
    if qi == len(qs):
        if not total or len(used) == len(ds):
            yield b
        return
    head = qs[qi]
    if isinstance(head, Optional_):
        produced = False
        for j, child in enumerate(ds):
            if j in used:
                continue
            for b2 in _match(head.inner, child, b):
                for out in _unordered(qs, ds, qi + 1, used | {j}, b2, total):
                    produced = True
                    yield out
        if not produced:
            yield from _unordered(qs, ds, qi + 1, used, _bind_optional_default(head, b), total)
        return
    for j, child in enumerate(ds):
        if j in used:
            continue
        for b2 in _match(head, child, b):
            yield from _unordered(qs, ds, qi + 1, used | {j}, b2, total)


def _withouts_hold(withouts: list[Without], ds: tuple[Child, ...], b: Bindings) -> bool:
    """Negated siblings: no data child may match any negated pattern."""
    for negated in withouts:
        for child in ds:
            if matches(negated.inner, child, b):
                return False
    return True


# ---------------------------------------------------------------------------
# Compiled pattern matchers
# ---------------------------------------------------------------------------

#: A compiled pattern: ``fn(data, bindings) -> list[Bindings]``, exactly
#: :func:`match`'s result for the pattern it was compiled from.
CompiledMatcher = Callable[..., "list[Bindings]"]


def scalar_key(value) -> tuple[bool, object]:
    """Hash/equality key with :func:`values_equal` semantics for scalars.

    ``1`` and ``1.0`` share a key (Python's cross-type numeric equality is
    exact); booleans are segregated from their int values; strings never
    collide with numbers.
    """
    return (isinstance(value, bool), value)


def _may_raise(query: Query) -> bool:
    """Whether evaluating *query* can raise instead of failing cleanly.

    ``Compare`` with an unbound variable rhs raises :class:`QueryError`;
    ``RegexMatch`` may raise on an invalid pattern (compiled lazily).
    Guards must not pre-empt such raises with a silent non-match, so
    child-level guards are disabled for patterns containing these forms.
    """
    if isinstance(query, Compare):
        return isinstance(query.rhs, Var)
    if isinstance(query, RegexMatch):
        return True
    if isinstance(query, (Desc, Without, Optional_)):
        return _may_raise(query.inner)
    if isinstance(query, Var):
        return query.inner is not None and _may_raise(query.inner)
    if isinstance(query, QTerm):
        return any(_may_raise(child) for child in query.children)
    return False


def child_value_requirement(child: Query) -> "tuple[str, object] | None":
    """``(label, scalar)`` a non-optional query child forces on the data.

    The single source of the "constant child value" necessary condition:
    both the compiled matcher guards here and the dispatch discriminators
    (:func:`repro.events.queries.pattern_discriminators`) derive from it,
    so the index can never require a constant the matcher does not.
    """
    if isinstance(child, Var) and child.inner is not None:
        return child_value_requirement(child.inner)
    if (
        isinstance(child, QTerm)
        and isinstance(child.label, str)
        and child.label != "*"
        and len(child.children) == 1
        and is_scalar(child.children[0])
    ):
        return (child.label, child.children[0])
    return None


def _child_label_requirement(child: Query) -> "str | None":
    """A constant child label a non-optional query child forces."""
    if isinstance(child, Var) and child.inner is not None:
        return _child_label_requirement(child.inner)
    if isinstance(child, QTerm) and isinstance(child.label, str) and child.label != "*":
        return child.label
    return None


#: repr-keyed memo: Python's dataclass equality conflates patterns that
#: differ only by bool/int/float scalar type (``q("a", 1) == q("a", True)``)
#: whereas matching (values_equal) keeps bool distinct — so the cache key
#: must be the type-faithful repr, not the pattern's own equality.
_COMPILED: "dict[str, tuple[CompiledMatcher, Callable[..., bool]]]" = {}
_COMPILED_LIMIT = 2048


def compile_pattern(query: Query) -> CompiledMatcher:
    """Compile *query* into a closure equivalent to ``match(query, ...)``.

    The closure specialises ground-constant checks into direct
    comparisons, evaluated before any recursion or binding allocation:

    - scalar and ground data-term patterns compare by value and never
      recurse;
    - structured patterns front-load *necessary* conditions — root label,
      constant attribute values, child-count bounds, required constant
      scalar children and required child labels — and reject mismatching
      candidates immediately;
    - patterns whose children are all constant scalars (any matching
      mode) are decided entirely by the compiled form;
    - anything that survives the guards falls back to the interpreted
      tree-walk, so the full simulation semantics (and its exceptions,
      e.g. unbound comparison variables) are preserved exactly.

    Results are memoised per pattern (patterns are immutable), so repeated
    compilation — e.g. the naive evaluator re-entering per event — is a
    cache hit.
    """
    return _compiled_pair(query)[0]


def compile_matches(query: Query) -> "Callable[..., bool]":
    """Boolean companion of :func:`compile_pattern` (≡ ``matches``).

    Same guards, but the interpreted fallback stops at the *first*
    derivation instead of collecting them all — the right form for
    existence checks (absence blockers), where a variable-rich pattern
    against a wide term can otherwise enumerate thousands of bindings
    only to be thrown away.
    """
    return _compiled_pair(query)[1]


def _compiled_pair(query: Query):
    key = repr(query)
    pair = _COMPILED.get(key)
    if pair is None:
        if len(_COMPILED) >= _COMPILED_LIMIT:
            _COMPILED.clear()
        pair = _build_matchers(query)
        _COMPILED[key] = pair
    return pair


def _build_matchers(query: Query):
    if is_scalar(query):
        def match_scalar(data: Child, bindings: Bindings = EMPTY_BINDINGS) -> list[Bindings]:
            _matcher_calls.n += 1
            if is_scalar(data) and values_equal(query, data):  # type: ignore[arg-type]
                return [bindings]
            return []
        return match_scalar, lambda data, bindings=EMPTY_BINDINGS: bool(
            match_scalar(data, bindings))

    if isinstance(query, Data):
        def match_ground(data: Child, bindings: Bindings = EMPTY_BINDINGS) -> list[Bindings]:
            _matcher_calls.n += 1
            return [bindings] if values_equal(query, data) else []
        return match_ground, lambda data, bindings=EMPTY_BINDINGS: bool(
            match_ground(data, bindings))

    if isinstance(query, QTerm):
        return _compile_qterm(query)

    def match_fallback(data: Child, bindings: Bindings = EMPTY_BINDINGS) -> list[Bindings]:
        _matcher_calls.n += 1
        return _collect(query, data, bindings)

    def matches_fallback(data: Child, bindings: Bindings = EMPTY_BINDINGS) -> bool:
        _matcher_calls.n += 1
        for _ in _match(query, data, bindings):
            return True
        return False
    return match_fallback, matches_fallback


def _compile_qterm(query: QTerm):
    label = query.label if isinstance(query.label, str) and query.label != "*" else None
    if isinstance(query.label, LabelVar):
        label = None
    const_attrs = tuple((k, v) for k, v in query.attrs if isinstance(v, str))

    positives = [c for c in query.children if not isinstance(c, Without)]
    scalar_children = tuple(c for c in positives if is_scalar(c))
    all_scalar = (
        len(scalar_children) == len(query.children)  # no Without/Optional either
    )
    guard_children = not _may_raise(query)
    min_children = sum(1 for c in positives if not isinstance(c, Optional_))
    max_children = len(positives) if query.total else None
    need_scalars: dict[tuple[bool, object], int] = {}
    for child in scalar_children:
        key = scalar_key(child)
        need_scalars[key] = need_scalars.get(key, 0) + 1
    need_values = []
    need_labels = []
    ground_children = []
    for child in positives:
        if is_scalar(child):
            continue
        if isinstance(child, Data):
            ground_children.append(child)
            continue
        requirement = child_value_requirement(child)
        if requirement is not None:
            need_values.append(requirement)
            continue
        child_label = _child_label_requirement(child)
        if child_label is not None:
            need_labels.append(child_label)

    def guards_hold(data: Data) -> bool:
        ds = data.children
        n = len(ds)
        if n < min_children:
            return False
        if max_children is not None and n > max_children:
            return False
        if need_scalars:
            have: dict[tuple[bool, object], int] = {}
            for dc in ds:
                if is_scalar(dc):
                    key = scalar_key(dc)
                    have[key] = have.get(key, 0) + 1
            for key, needed in need_scalars.items():
                if have.get(key, 0) < needed:
                    return False
        for child_label, value in need_values:
            if not any(
                isinstance(dc, Data) and dc.label == child_label
                and any(is_scalar(gc) and values_equal(gc, value) for gc in dc.children)
                for dc in ds
            ):
                return False
        for child_label in need_labels:
            if not any(isinstance(dc, Data) and dc.label == child_label for dc in ds):
                return False
        for ground in ground_children:
            if not any(values_equal(ground, dc) for dc in ds):
                return False
        return True

    if label is not None and all_scalar and guard_children:
        # Fully decidable: constant label, all children constant scalars.
        # Attributes (constant or binding) are handled inline; the result
        # is [extended bindings] or [] with no interpreted fallback.
        attrs = query.attrs
        ordered, total = query.ordered, query.total
        scalars = scalar_children

        def match_compiled(data: Child, bindings: Bindings = EMPTY_BINDINGS) -> list[Bindings]:
            _matcher_calls.n += 1
            if not isinstance(data, Data) or data.label != label:
                return []
            b = bindings
            for key, want in attrs:
                have = data.attr(key)
                if have is None:
                    return []
                if isinstance(want, Var):
                    extended = b.bind(want.name, have)
                    if extended is None:
                        return []
                    b = extended
                elif want != have:
                    return []
            ds = data.children
            if ordered and total:
                if len(ds) != len(scalars):
                    return []
                for qc, dc in zip(scalars, ds):
                    if not (is_scalar(dc) and values_equal(qc, dc)):
                        return []
                return [b]
            if ordered:  # order-preserving subsequence of constants
                position = 0
                for qc in scalars:
                    while position < len(ds) and not (
                        is_scalar(ds[position]) and values_equal(qc, ds[position])
                    ):
                        position += 1
                    if position == len(ds):
                        return []
                    position += 1
                return [b]
            have: dict[tuple[bool, object], int] = {}
            for dc in ds:
                if is_scalar(dc):
                    key = scalar_key(dc)
                    have[key] = have.get(key, 0) + 1
            if total:
                if len(ds) != len(scalars) or sum(have.values()) != len(ds):
                    return []
                if len(have) != len(need_scalars):
                    return []
                return [b] if all(
                    have.get(key, 0) == needed for key, needed in need_scalars.items()
                ) else []
            return [b] if all(
                have.get(key, 0) >= needed for key, needed in need_scalars.items()
            ) else []
        return match_compiled, lambda data, bindings=EMPTY_BINDINGS: bool(
            match_compiled(data, bindings))

    def guards_reject(data: Child) -> bool:
        if not isinstance(data, Data):
            return True
        if label is not None and data.label != label:
            return True
        for key, value in const_attrs:
            if data.attr(key) != value:
                return True
        return guard_children and not guards_hold(data)

    def match_guarded(data: Child, bindings: Bindings = EMPTY_BINDINGS) -> list[Bindings]:
        _matcher_calls.n += 1
        if guards_reject(data):
            return []
        return _collect(query, data, bindings)

    def matches_guarded(data: Child, bindings: Bindings = EMPTY_BINDINGS) -> bool:
        _matcher_calls.n += 1
        if guards_reject(data):
            return False
        for _ in _match(query, data, bindings):
            return True
        return False
    return match_guarded, matches_guarded

"""Simulation unification: matching query terms against data terms.

This is the query-evaluation core of the library (Thesis 7).  ``match``
returns *all* ways a query term simulates into a data term, each as a
:class:`~repro.terms.ast.Bindings`; an empty list means no match, a list
containing the empty binding set means a match that bound no variables.

Matching modes (set per query term) follow Xcerpt:

====================  =======================================================
mode                  children semantics
====================  =======================================================
ordered, total        query children match data children exactly, in order
ordered, partial      query children match an order-preserving subsequence
unordered, total      bijection between query children and data children
unordered, partial    injection from query children into data children
====================  =======================================================

``without`` (subterm negation) asserts that *no* child of the matched data
term matches the negated pattern; it is evaluated after the positive
children, under the bindings they produced.  ``optional`` prefers presence:
the absent branch (with its declared defaults) is taken only when no overall
match consumes a child for it.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Iterator

from repro.errors import QueryError
from repro.terms.ast import (
    Bindings,
    Child,
    Compare,
    Data,
    Desc,
    EMPTY_BINDINGS,
    LabelVar,
    Optional_,
    QTerm,
    Query,
    RegexMatch,
    Var,
    Without,
    is_scalar,
    values_equal,
)


def match(query: Query, data: Child, bindings: Bindings = EMPTY_BINDINGS) -> list[Bindings]:
    """Return every binding set under which *query* matches *data*.

    The result is deduplicated and order-stable (first-derivation order).
    """
    seen: set[Bindings] = set()
    result: list[Bindings] = []
    for b in _match(query, data, bindings):
        if b not in seen:
            seen.add(b)
            result.append(b)
    return result


def matches(query: Query, data: Child, bindings: Bindings = EMPTY_BINDINGS) -> bool:
    """Return True if *query* matches *data* at least one way."""
    for _ in _match(query, data, bindings):
        return True
    return False


@lru_cache(maxsize=512)
def _compiled(pattern: str) -> "re.Pattern[str]":
    return re.compile(pattern)


def _match(query: Query, data: Child, b: Bindings) -> Iterator[Bindings]:
    """Yield binding extensions (possibly with duplicates)."""
    if is_scalar(query):
        if is_scalar(data) and values_equal(query, data):  # type: ignore[arg-type]
            yield b
        return

    if isinstance(query, Data):
        if values_equal(query, data):
            yield b
        return

    if isinstance(query, Var):
        yield from _match_var(query, data, b)
        return

    if isinstance(query, Desc):
        yield from _match_desc(query, data, b)
        return

    if isinstance(query, Compare):
        if _compare_holds(query, data, b):
            yield b
        return

    if isinstance(query, RegexMatch):
        if isinstance(data, str) and _compiled(query.pattern).fullmatch(data):
            yield b
        return

    if isinstance(query, Without):
        if not matches(query.inner, data, b):
            yield b
        return

    if isinstance(query, Optional_):
        matched = False
        for b2 in _match(query.inner, data, b):
            matched = True
            yield b2
        if not matched:
            yield _bind_optional_default(query, b)
        return

    if isinstance(query, QTerm):
        yield from _match_qterm(query, data, b)
        return

    raise QueryError(f"not a query term: {query!r}")


def _match_var(query: Var, data: Child, b: Bindings) -> Iterator[Bindings]:
    bound = query.name in b
    if bound:
        if not values_equal(b[query.name], data):
            return
        if query.inner is None:
            yield b
        else:
            yield from _match(query.inner, data, b)
        return
    if query.inner is None:
        extended = b.bind(query.name, data)
        if extended is not None:
            yield extended
        return
    for b2 in _match(query.inner, data, b):
        extended = b2.bind(query.name, data)
        if extended is not None:
            yield extended


def _match_desc(query: Desc, data: Child, b: Bindings) -> Iterator[Bindings]:
    yield from _match(query.inner, data, b)
    if isinstance(data, Data):
        for child in data.children:
            yield from _match_desc(query, child, b)


def _compare_holds(query: Compare, data: Child, b: Bindings) -> bool:
    if not is_scalar(data):
        return False
    rhs = query.rhs
    if isinstance(rhs, Var):
        if rhs.name not in b:
            raise QueryError(
                f"comparison references unbound variable {rhs.name!r}; "
                "comparisons are evaluated after positive patterns"
            )
        rhs = b[rhs.name]  # type: ignore[assignment]
        if not is_scalar(rhs):
            return False
    if query.op == "==":
        return values_equal(data, rhs)  # type: ignore[arg-type]
    if query.op == "!=":
        return not values_equal(data, rhs)  # type: ignore[arg-type]
    # Ordering comparisons: numbers with numbers (bool excluded), str with str.
    left_num = isinstance(data, (int, float)) and not isinstance(data, bool)
    right_num = isinstance(rhs, (int, float)) and not isinstance(rhs, bool)
    if left_num and right_num:
        pass
    elif isinstance(data, str) and isinstance(rhs, str):
        pass
    else:
        return False
    if query.op == "<":
        return data < rhs  # type: ignore[operator]
    if query.op == "<=":
        return data <= rhs  # type: ignore[operator]
    if query.op == ">":
        return data > rhs  # type: ignore[operator]
    return data >= rhs  # type: ignore[operator]


def _bind_optional_default(query: Optional_, b: Bindings) -> Bindings:
    """Bind the optional's variable to its default when the child is absent."""
    inner = query.inner
    if query.default is not None and isinstance(inner, Var) and inner.name not in b:
        extended = b.bind(inner.name, query.default)
        if extended is not None:
            return extended
    return b


def _match_qterm(query: QTerm, data: Child, b: Bindings) -> Iterator[Bindings]:
    if not isinstance(data, Data):
        return
    # Label.
    if isinstance(query.label, LabelVar):
        extended = b.bind(query.label.name, data.label)
        if extended is None:
            return
        b = extended
    elif query.label != "*" and query.label != data.label:
        return
    # Attributes (always partial).
    for key, want in query.attrs:
        have = data.attr(key)
        if have is None:
            return
        if isinstance(want, Var):
            extended = b.bind(want.name, have)
            if extended is None:
                return
            b = extended
        elif want != have:
            return
    # Children.
    positives = [c for c in query.children if not isinstance(c, Without)]
    withouts = [c for c in query.children if isinstance(c, Without)]
    if query.ordered:
        if query.total:
            candidate_iter = _seq_total(positives, data.children, 0, 0, b)
        else:
            candidate_iter = _seq_partial(positives, data.children, 0, 0, b)
    else:
        candidate_iter = _unordered(positives, data.children, 0, frozenset(), b, query.total)
    for b2 in candidate_iter:
        if _withouts_hold(withouts, data.children, b2):
            yield b2


def _seq_total(
    qs: list[Query], ds: tuple[Child, ...], qi: int, di: int, b: Bindings
) -> Iterator[Bindings]:
    """Ordered total: consume every data child, in order."""
    if qi == len(qs):
        if di == len(ds):
            yield b
        return
    head = qs[qi]
    if isinstance(head, Optional_):
        produced = False
        if di < len(ds):
            for b2 in _match(head.inner, ds[di], b):
                for out in _seq_total(qs, ds, qi + 1, di + 1, b2):
                    produced = True
                    yield out
        if not produced:
            yield from _seq_total(qs, ds, qi + 1, di, _bind_optional_default(head, b))
        return
    if di >= len(ds):
        return
    for b2 in _match(head, ds[di], b):
        yield from _seq_total(qs, ds, qi + 1, di + 1, b2)


def _seq_partial(
    qs: list[Query], ds: tuple[Child, ...], qi: int, di: int, b: Bindings
) -> Iterator[Bindings]:
    """Ordered partial: match an order-preserving subsequence."""
    if qi == len(qs):
        yield b
        return
    head = qs[qi]
    if isinstance(head, Optional_):
        produced = False
        for j in range(di, len(ds)):
            for b2 in _match(head.inner, ds[j], b):
                for out in _seq_partial(qs, ds, qi + 1, j + 1, b2):
                    produced = True
                    yield out
        if not produced:
            yield from _seq_partial(qs, ds, qi + 1, di, _bind_optional_default(head, b))
        return
    for j in range(di, len(ds)):
        for b2 in _match(head, ds[j], b):
            yield from _seq_partial(qs, ds, qi + 1, j + 1, b2)


def _unordered(
    qs: list[Query],
    ds: tuple[Child, ...],
    qi: int,
    used: frozenset[int],
    b: Bindings,
    total: bool,
) -> Iterator[Bindings]:
    """Unordered: injective (partial) or bijective (total) assignment."""
    if qi == len(qs):
        if not total or len(used) == len(ds):
            yield b
        return
    head = qs[qi]
    if isinstance(head, Optional_):
        produced = False
        for j, child in enumerate(ds):
            if j in used:
                continue
            for b2 in _match(head.inner, child, b):
                for out in _unordered(qs, ds, qi + 1, used | {j}, b2, total):
                    produced = True
                    yield out
        if not produced:
            yield from _unordered(qs, ds, qi + 1, used, _bind_optional_default(head, b), total)
        return
    for j, child in enumerate(ds):
        if j in used:
            continue
        for b2 in _match(head, child, b):
            yield from _unordered(qs, ds, qi + 1, used | {j}, b2, total)


def _withouts_hold(withouts: list[Without], ds: tuple[Child, ...], b: Bindings) -> bool:
    """Negated siblings: no data child may match any negated pattern."""
    for negated in withouts:
        for child in ds:
            if matches(negated.inner, child, b):
                return False
    return True

"""RDF data model: triples, pattern queries, and RDFS inference.

The paper (Theses 2 and 7) requires reactive rules to query Semantic Web
data — RDF triples with RDFS-style inference — alongside XML-ish data terms.
This module provides:

- :class:`Triple` and :class:`Graph`, an indexed in-memory triple store;
- pattern queries with variables shared with the term language
  (:class:`~repro.terms.ast.Var`), returning :class:`Bindings`;
- forward-chained RDFS closure (subclass, subproperty, domain, range);
- a bridge mapping graphs to data terms (``rdf{triple[s, p, o], ...}``) so
  the *same* query language can match RDF data (language coherency).

Objects of triples are term children (IRIs as strings, or literal scalars);
subjects and predicates are IRI strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import TermError
from repro.terms.ast import Bindings, Child, Data, Var, is_scalar, values_equal

RDF_TYPE = "rdf:type"
RDFS_SUBCLASS = "rdfs:subClassOf"
RDFS_SUBPROPERTY = "rdfs:subPropertyOf"
RDFS_DOMAIN = "rdfs:domain"
RDFS_RANGE = "rdfs:range"


@dataclass(frozen=True)
class Triple:
    """An RDF triple. Subject and predicate are IRIs; object is IRI or literal."""

    subject: str
    predicate: str
    object: Child

    def __post_init__(self) -> None:
        if not isinstance(self.subject, str) or not self.subject:
            raise TermError(f"triple subject must be an IRI string: {self.subject!r}")
        if not isinstance(self.predicate, str) or not self.predicate:
            raise TermError(f"triple predicate must be an IRI string: {self.predicate!r}")
        if not is_scalar(self.object) and not isinstance(self.object, Data):
            raise TermError(f"triple object must be a scalar or data term: {self.object!r}")

    def to_term(self) -> Data:
        """Encode as an ordered data term ``triple[s, p, o]``."""
        return Data("triple", (self.subject, self.predicate, self.object), True)

    @staticmethod
    def from_term(term: Data) -> "Triple":
        """Decode a ``triple[s, p, o]`` data term."""
        if term.label != "triple" or len(term.children) != 3:
            raise TermError(f"not a triple term: {term!r}")
        subject, predicate, obj = term.children
        if not isinstance(subject, str) or not isinstance(predicate, str):
            raise TermError(f"triple subject/predicate must be strings: {term!r}")
        return Triple(subject, predicate, obj)


#: A pattern position: a concrete value, a variable, or None (wildcard).
Pattern = "str | Child | Var | None"


class Graph:
    """An indexed, mutable set of triples with pattern queries and inference.

    Indexes by subject and by predicate keep pattern queries cheap; the
    store is deterministic (insertion ordered).
    """

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: dict[Triple, None] = {}
        self._by_subject: dict[str, list[Triple]] = {}
        self._by_predicate: dict[str, list[Triple]] = {}
        for triple in triples:
            self.add(triple)

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def add(self, triple: Triple) -> bool:
        """Insert a triple; returns False if it was already present."""
        if triple in self._triples:
            return False
        self._triples[triple] = None
        self._by_subject.setdefault(triple.subject, []).append(triple)
        self._by_predicate.setdefault(triple.predicate, []).append(triple)
        return True

    def assert_(self, subject: str, predicate: str, obj: Child) -> bool:
        """Convenience: add a triple from its three components."""
        return self.add(Triple(subject, predicate, obj))

    def remove(self, triple: Triple) -> bool:
        """Remove a triple; returns False if it was absent."""
        if triple not in self._triples:
            return False
        del self._triples[triple]
        self._by_subject[triple.subject].remove(triple)
        self._by_predicate[triple.predicate].remove(triple)
        return True

    def copy(self) -> "Graph":
        """Return an independent copy of the graph."""
        return Graph(self)

    # -- pattern queries -----------------------------------------------------

    def triples(
        self,
        subject: "str | Var | None" = None,
        predicate: "str | Var | None" = None,
        obj: "Child | Var | None" = None,
    ) -> Iterator[Triple]:
        """Yield triples matching the concrete parts of the pattern.

        Variables and ``None`` are wildcards here; use :meth:`query` to get
        bindings for the variables.
        """
        candidates: Iterable[Triple]
        if isinstance(subject, str):
            candidates = self._by_subject.get(subject, ())
        elif isinstance(predicate, str):
            candidates = self._by_predicate.get(predicate, ())
        else:
            candidates = self._triples
        for triple in candidates:
            if isinstance(subject, str) and triple.subject != subject:
                continue
            if isinstance(predicate, str) and triple.predicate != predicate:
                continue
            if obj is not None and not isinstance(obj, Var) and not values_equal(triple.object, obj):
                continue
            yield triple

    def query(
        self,
        pattern: "tuple[str | Var | None, str | Var | None, Child | Var | None]",
        bindings: Bindings = Bindings(),
    ) -> list[Bindings]:
        """Match one triple pattern, extending *bindings*.

        Variables already bound act as constants; unbound variables bind to
        the matching triple components.
        """
        subject, predicate, obj = (self._resolve(p, bindings) for p in pattern)
        out: list[Bindings] = []
        for triple in self.triples(
            subject if isinstance(subject, str) else None,
            predicate if isinstance(predicate, str) else None,
            obj if not isinstance(obj, (Var, type(None))) else None,
        ):
            extended: Bindings | None = bindings
            for part, value in ((subject, triple.subject), (predicate, triple.predicate),
                                (obj, triple.object)):
                if isinstance(part, Var):
                    extended = extended.bind(part.name, value)
                    if extended is None:
                        break
            if extended is not None:
                out.append(extended)
        return out

    def query_all(
        self,
        patterns: "Iterable[tuple[str | Var | None, str | Var | None, Child | Var | None]]",
        bindings: Bindings = Bindings(),
    ) -> list[Bindings]:
        """Conjunctive query: join a sequence of triple patterns."""
        frontier = [bindings]
        for pattern in patterns:
            next_frontier: list[Bindings] = []
            for b in frontier:
                next_frontier.extend(self.query(pattern, b))
            frontier = next_frontier
            if not frontier:
                return []
        # Deduplicate, preserving derivation order.
        seen: set[Bindings] = set()
        out = []
        for b in frontier:
            if b not in seen:
                seen.add(b)
                out.append(b)
        return out

    @staticmethod
    def _resolve(part: "str | Child | Var | None", bindings: Bindings) -> "str | Child | Var | None":
        if isinstance(part, Var) and part.name in bindings:
            return bindings[part.name]
        return part

    # -- RDFS inference --------------------------------------------------------

    def rdfs_closure(self) -> "Graph":
        """Return a new graph extended with the RDFS forward closure.

        Implements the four classic RDFS entailment patterns:

        - transitivity of ``rdfs:subClassOf`` and ``rdfs:subPropertyOf``;
        - type propagation along ``rdfs:subClassOf``;
        - property propagation along ``rdfs:subPropertyOf``;
        - ``rdfs:domain`` / ``rdfs:range`` typing of subjects/objects.
        """
        closed = self.copy()
        changed = True
        while changed:
            changed = False
            for triple in list(closed):
                changed |= _apply_rdfs_rules(closed, triple)
        return closed

    # -- term bridge ------------------------------------------------------------

    def to_term(self) -> Data:
        """Encode the whole graph as ``rdf{triple[s,p,o], ...}`` (unordered)."""
        return Data("rdf", tuple(t.to_term() for t in self), False)

    @staticmethod
    def from_term(term: Data) -> "Graph":
        """Decode a graph from its ``rdf{...}`` term encoding."""
        if term.label != "rdf":
            raise TermError(f"not an rdf graph term: {term.label!r}")
        graph = Graph()
        for child in term.children:
            if not isinstance(child, Data):
                raise TermError(f"rdf graph children must be triple terms: {child!r}")
            graph.add(Triple.from_term(child))
        return graph


def _apply_rdfs_rules(graph: Graph, triple: Triple) -> bool:
    changed = False
    s, p, o = triple.subject, triple.predicate, triple.object
    if p == RDFS_SUBCLASS and isinstance(o, str):
        # Transitivity: (s sc o), (o sc c) => (s sc c)
        for upper in list(graph.triples(o, RDFS_SUBCLASS)):
            changed |= graph.assert_(s, RDFS_SUBCLASS, upper.object)
        # Type propagation: (x type s) => (x type o)
        for typed in list(graph.triples(None, RDF_TYPE, s)):
            changed |= graph.assert_(typed.subject, RDF_TYPE, o)
    elif p == RDFS_SUBPROPERTY and isinstance(o, str):
        for upper in list(graph.triples(o, RDFS_SUBPROPERTY)):
            changed |= graph.assert_(s, RDFS_SUBPROPERTY, upper.object)
        for used in list(graph.triples(None, s)):
            changed |= graph.assert_(used.subject, o, used.object)
    elif p == RDF_TYPE and isinstance(o, str):
        for upper in list(graph.triples(o, RDFS_SUBCLASS)):
            changed |= graph.assert_(s, RDF_TYPE, upper.object)
    elif p == RDFS_DOMAIN and isinstance(o, str):
        for used in list(graph.triples(None, s)):
            changed |= graph.assert_(used.subject, RDF_TYPE, o)
    elif p == RDFS_RANGE and isinstance(o, str):
        for used in list(graph.triples(None, s)):
            if isinstance(used.object, str):
                changed |= graph.assert_(used.object, RDF_TYPE, o)
    else:
        # The subject's predicate may itself have schema statements.
        for schema in list(graph.triples(p, None)):
            if schema.predicate == RDFS_SUBPROPERTY and isinstance(schema.object, str):
                changed |= graph.assert_(s, schema.object, o)
            elif schema.predicate == RDFS_DOMAIN and isinstance(schema.object, str):
                changed |= graph.assert_(s, RDF_TYPE, schema.object)
            elif schema.predicate == RDFS_RANGE and isinstance(schema.object, str):
                if isinstance(o, str):
                    changed |= graph.assert_(o, RDF_TYPE, schema.object)
    return changed

"""OWL-style inference on top of the RDF graph (Semantic Web substrate).

The paper's motivation section names "HTML, XML, RDF, Topic Maps, and OWL
data, as well as inference from RDF triples" as the data reactive rules
must handle; the e-learning scenario "might refer to inference rules
expressed in terms of RDF triples, RDF Schema, and OWL".  This module adds
the OWL property characteristics most used in such lightweight ontologies
(a pragmatic OWL-Lite subset):

- ``owl:sameAs`` — symmetric + transitive identity, with statement copying
  between aliases;
- ``owl:inverseOf`` — inverse property completion;
- ``owl:SymmetricProperty`` and ``owl:TransitiveProperty``;
- ``owl:FunctionalProperty`` consistency *checking* (two distinct values
  for a functional property of one subject are reported, not merged —
  reported inconsistencies are a useful trigger for reactive rules).

All computed by forward closure to a fixpoint, like
:meth:`~repro.terms.rdf.Graph.rdfs_closure`, and composable with it.
"""

from __future__ import annotations

from repro.terms.ast import Child
from repro.terms.rdf import Graph, RDF_TYPE, Triple

OWL_SAME_AS = "owl:sameAs"
OWL_INVERSE_OF = "owl:inverseOf"
OWL_SYMMETRIC = "owl:SymmetricProperty"
OWL_TRANSITIVE = "owl:TransitiveProperty"
OWL_FUNCTIONAL = "owl:FunctionalProperty"

_SCHEMA_PREDICATES = (OWL_SAME_AS, OWL_INVERSE_OF)


def owl_closure(graph: Graph) -> Graph:
    """Return a new graph extended with the OWL forward closure."""
    closed = graph.copy()
    changed = True
    while changed:
        changed = False
        changed |= _close_same_as(closed)
        changed |= _close_inverses(closed)
        changed |= _close_characteristics(closed)
    return closed


def _close_same_as(graph: Graph) -> bool:
    changed = False
    # Symmetry and transitivity of sameAs.
    for triple in list(graph.triples(None, OWL_SAME_AS)):
        if isinstance(triple.object, str):
            changed |= graph.assert_(triple.object, OWL_SAME_AS, triple.subject)
            for onward in list(graph.triples(triple.object, OWL_SAME_AS)):
                if isinstance(onward.object, str) and onward.object != triple.subject:
                    changed |= graph.assert_(triple.subject, OWL_SAME_AS, onward.object)
    # Statement copying between aliases (both subject and object position).
    for same in list(graph.triples(None, OWL_SAME_AS)):
        if not isinstance(same.object, str):
            continue
        left, right = same.subject, same.object
        for statement in list(graph.triples(left)):
            if statement.predicate != OWL_SAME_AS:
                changed |= graph.assert_(right, statement.predicate, statement.object)
        for statement in list(graph):
            if statement.predicate in _SCHEMA_PREDICATES:
                continue
            if isinstance(statement.object, str) and statement.object == left:
                changed |= graph.assert_(statement.subject, statement.predicate, right)
    return changed


def _close_inverses(graph: Graph) -> bool:
    changed = False
    for schema in list(graph.triples(None, OWL_INVERSE_OF)):
        if not isinstance(schema.object, str):
            continue
        forward, backward = schema.subject, schema.object
        for pair in ((forward, backward), (backward, forward)):
            for statement in list(graph.triples(None, pair[0])):
                if isinstance(statement.object, str):
                    changed |= graph.assert_(statement.object, pair[1],
                                             statement.subject)
    return changed


def _close_characteristics(graph: Graph) -> bool:
    changed = False
    for typed in list(graph.triples(None, RDF_TYPE, OWL_SYMMETRIC)):
        prop = typed.subject
        for statement in list(graph.triples(None, prop)):
            if isinstance(statement.object, str):
                changed |= graph.assert_(statement.object, prop, statement.subject)
    for typed in list(graph.triples(None, RDF_TYPE, OWL_TRANSITIVE)):
        prop = typed.subject
        for first in list(graph.triples(None, prop)):
            if not isinstance(first.object, str):
                continue
            for second in list(graph.triples(first.object, prop)):
                changed |= graph.assert_(first.subject, prop, second.object)
    return changed


def functional_conflicts(graph: Graph) -> list[tuple[str, str, Child, Child]]:
    """Report violations of functional properties.

    Returns ``(subject, property, value1, value2)`` tuples for every
    subject holding two semantically different values of a property typed
    ``owl:FunctionalProperty`` — the kind of inconsistency a reactive rule
    would subscribe to.
    """
    from repro.terms.ast import values_equal

    conflicts = []
    for typed in graph.triples(None, RDF_TYPE, OWL_FUNCTIONAL):
        prop = typed.subject
        by_subject: dict[str, list[Child]] = {}
        for statement in graph.triples(None, prop):
            by_subject.setdefault(statement.subject, []).append(statement.object)
        for subject, values in by_subject.items():
            for i, left in enumerate(values):
                for right in values[i + 1:]:
                    if not values_equal(left, right):
                        conflicts.append((subject, prop, left, right))
    return conflicts


def semantic_closure(graph: Graph) -> Graph:
    """RDFS + OWL closure to a joint fixpoint."""
    current = graph
    while True:
        step = owl_closure(current.rdfs_closure())
        if len(step) == len(current):
            return step
        current = step

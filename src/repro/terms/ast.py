"""Term classes: data terms, query terms, and construct terms.

The term model follows the Xcerpt design the paper builds on (Theses 5-9):

- *Data terms* represent persistent Web data (XML-ish labelled trees) and
  event payloads.  A data term has a label, attributes, and children that are
  either nested data terms or scalar leaves; children may be *ordered* (like
  an XML document) or *unordered* (like a database relation).
- *Query terms* are patterns matched against data terms by simulation
  unification (:mod:`repro.terms.simulation`).  A query term is *total*
  (matches all children of a node) or *partial* (matches a sub-multiset), and
  ordered or unordered, giving the four matching modes of Xcerpt
  (``{ }``, ``{{ }}``, ``[ ]``, ``[[ ]]``).
- *Construct terms* build new data terms from variable bindings
  (:mod:`repro.terms.construct`), including grouping (``all``) and
  aggregation.

All classes are immutable (frozen dataclasses) so terms can be shared freely
between resources, events, and rule state, and used as dictionary keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Union

from repro.errors import QueryError, TermError

# ---------------------------------------------------------------------------
# Scalars
# ---------------------------------------------------------------------------

#: Scalar leaf values allowed as children of data terms.
Scalar = Union[str, int, float, bool]

_SCALAR_TYPES = (str, int, float, bool)


def is_scalar(value: object) -> bool:
    """Return True if *value* is a scalar leaf (str, int, float, or bool)."""
    return isinstance(value, _SCALAR_TYPES)


# ---------------------------------------------------------------------------
# Data terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Data:
    """An immutable data term: ``label[attrs]{children}``.

    Parameters
    ----------
    label:
        Non-empty element name.
    children:
        Tuple of child terms; each child is a :class:`Data` or a scalar.
    ordered:
        Whether the order of children is significant (XML-like) or not
        (relation-like).  Matching and structural equality respect this.
    attrs:
        Attribute name/value pairs, stored sorted by name.
    """

    label: str
    children: tuple["Child", ...] = ()
    ordered: bool = True
    attrs: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.label, str) or not self.label:
            raise TermError(f"data term label must be a non-empty string, got {self.label!r}")
        for child in self.children:
            if not isinstance(child, Data) and not is_scalar(child):
                raise TermError(f"invalid data term child: {child!r}")
        sorted_attrs = tuple(sorted(self.attrs))
        for key, value in sorted_attrs:
            if not isinstance(key, str) or not isinstance(value, str):
                raise TermError(f"attributes must be str pairs, got {(key, value)!r}")
        object.__setattr__(self, "attrs", sorted_attrs)

    # -- inspection ---------------------------------------------------------

    def attr(self, name: str, default: str | None = None) -> str | None:
        """Return the value of attribute *name*, or *default*."""
        for key, value in self.attrs:
            if key == name:
                return value
        return default

    @property
    def value(self) -> Scalar | None:
        """The single scalar child, if this term wraps exactly one scalar."""
        if len(self.children) == 1 and is_scalar(self.children[0]):
            return self.children[0]  # type: ignore[return-value]
        return None

    def first(self, label: str) -> "Data | None":
        """Return the first direct child data term with the given label."""
        for child in self.children:
            if isinstance(child, Data) and child.label == label:
                return child
        return None

    def all(self, label: str) -> tuple["Data", ...]:
        """Return all direct child data terms with the given label."""
        return tuple(
            child for child in self.children if isinstance(child, Data) and child.label == label
        )

    def subterms(self) -> Iterator["Data"]:
        """Yield this term and all descendant data terms, pre-order."""
        yield self
        for child in self.children:
            if isinstance(child, Data):
                yield from child.subterms()

    def size(self) -> int:
        """Total number of nodes (data terms and scalar leaves)."""
        total = 1
        for child in self.children:
            total += child.size() if isinstance(child, Data) else 1
        return total

    def depth(self) -> int:
        """Height of the term tree (a leaf term has depth 1)."""
        best = 0
        for child in self.children:
            if isinstance(child, Data):
                best = max(best, child.depth())
        return best + 1

    # -- functional updates --------------------------------------------------

    def with_children(self, children: tuple["Child", ...]) -> "Data":
        """Return a copy with *children* replacing the current children."""
        return Data(self.label, children, self.ordered, self.attrs)

    def with_attr(self, name: str, value: str) -> "Data":
        """Return a copy with attribute *name* set to *value*."""
        attrs = tuple((k, v) for k, v in self.attrs if k != name) + ((name, value),)
        return Data(self.label, self.children, self.ordered, attrs)

    def append(self, *new_children: "Child") -> "Data":
        """Return a copy with *new_children* appended."""
        return self.with_children(self.children + tuple(new_children))

    # -- canonical form ------------------------------------------------------

    def canonical(self) -> "Data":
        """Return a canonical form: unordered children sorted recursively.

        Two data terms are semantically equal iff their canonical forms are
        structurally equal; see :func:`values_equal`.
        """
        kids = tuple(c.canonical() if isinstance(c, Data) else c for c in self.children)
        if not self.ordered:
            kids = tuple(sorted(kids, key=canonical_str))
        return Data(self.label, kids, self.ordered, self.attrs)

    def __str__(self) -> str:
        return canonical_str(self)


#: A child of a data term: nested term or scalar leaf.
Child = Union[Data, Scalar]


def d(label: str, *children: Child, ordered: bool = True, **attrs: str) -> Data:
    """Convenience factory for data terms.

    >>> d("book", d("title", "TAPL"), d("year", 2002), lang="en").label
    'book'
    """
    return Data(label, tuple(children), ordered, tuple(sorted(attrs.items())))


def u(label: str, *children: Child, **attrs: str) -> Data:
    """Convenience factory for *unordered* data terms."""
    return Data(label, tuple(children), False, tuple(sorted(attrs.items())))


def canonical_str(child: Child) -> str:
    """Deterministic string form of a child, used for sorting and equality.

    Scalars are tagged with their type so ``1`` and ``"1"`` and ``True``
    stay distinct.  Memoised per (immutable) data term: canonicalisation is
    on the hot path of fact deduplication and unordered comparison.
    """
    if isinstance(child, Data):
        cached = child.__dict__.get("_canonical_str")
        if cached is not None:
            return cached
        attrs = "".join(f"@{k}={v};" for k, v in child.attrs)
        parts = [canonical_str(c) for c in child.children]
        if not child.ordered:
            parts.sort()
        braces = "[%s]" if child.ordered else "{%s}"
        text = child.label + attrs + (braces % ",".join(parts))
        object.__setattr__(child, "_canonical_str", text)
        return text
    if isinstance(child, bool):
        return f"b:{child}"
    if isinstance(child, int):
        return f"i:{child}"
    if isinstance(child, float):
        return f"f:{child!r}"
    return f"s:{child}"


def values_equal(left: Child, right: Child) -> bool:
    """Semantic equality of term values (unordered children order-blind)."""
    if isinstance(left, Data) and isinstance(right, Data):
        return canonical_str(left) == canonical_str(right)
    if isinstance(left, Data) or isinstance(right, Data):
        return False
    # bool is an int subtype: require matching boolean-ness, allow 1 == 1.0.
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    return type(left) is type(right) and left == right if isinstance(left, str) else left == right


# ---------------------------------------------------------------------------
# Bindings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Bindings:
    """An immutable set of variable bindings produced by matching.

    A binding maps a variable name to a term value (data term or scalar).
    Bindings are hashable, so answer sets can be deduplicated with ``set``.
    """

    items: tuple[tuple[str, Child], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(sorted(self.items, key=lambda kv: kv[0])))

    @staticmethod
    def of(**values: Child) -> "Bindings":
        """Build bindings from keyword arguments."""
        return Bindings(tuple(values.items()))

    def get(self, name: str, default: Child | None = None) -> Child | None:
        """Return the value bound to *name*, or *default*."""
        for key, value in self.items:
            if key == name:
                return value
        return default

    def __contains__(self, name: str) -> bool:
        return any(key == name for key, _ in self.items)

    def __getitem__(self, name: str) -> Child:
        for key, value in self.items:
            if key == name:
                return value
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:  # an empty Bindings is still a valid answer
        return True

    @property
    def names(self) -> frozenset[str]:
        """The set of bound variable names."""
        return frozenset(key for key, _ in self.items)

    def bind(self, name: str, value: Child) -> "Bindings | None":
        """Extend with ``name -> value``; None if *name* is bound differently."""
        current = self.get(name, _MISSING)
        if current is _MISSING:
            return Bindings(self.items + ((name, value),))
        return self if values_equal(current, value) else None  # type: ignore[arg-type]

    def merge(self, other: "Bindings") -> "Bindings | None":
        """Combine two binding sets; None if they disagree on any variable."""
        merged: Bindings | None = self
        for key, value in other.items:
            merged = merged.bind(key, value)
            if merged is None:
                return None
        return merged

    def project(self, names: frozenset[str] | set[str]) -> "Bindings":
        """Restrict to the given variable names."""
        return Bindings(tuple((k, v) for k, v in self.items if k in names))

    def as_dict(self) -> dict[str, Child]:
        """Return a plain dict copy of the bindings."""
        return dict(self.items)


_MISSING = object()

#: The empty binding set (a successful match that bound nothing).
EMPTY_BINDINGS = Bindings()


# ---------------------------------------------------------------------------
# Query terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LabelVar:
    """A variable in label position: ``^X{...}`` binds X to the label."""

    name: str


@dataclass(frozen=True)
class Var:
    """A term variable: ``var X`` or the restricted form ``var X -> q``.

    Matches any child term (or, restricted, any child matching ``inner``)
    and binds it to *name*.
    """

    name: str
    inner: "Query | None" = None


@dataclass(frozen=True)
class Desc:
    """``desc q``: matches a term if *q* matches it or any descendant."""

    inner: "Query"


@dataclass(frozen=True)
class Without:
    """Subterm negation: as a child pattern, asserts *no* sibling matches."""

    inner: "Query"


@dataclass(frozen=True)
class Optional_:
    """Optional child pattern: matches one child if possible, else nothing.

    When the child is absent and *default* is given, variables inside a plain
    ``Var`` pattern are bound to the default value.
    """

    inner: "Query"
    default: Child | None = None


@dataclass(frozen=True)
class Compare:
    """Scalar comparison pattern: matches a scalar child satisfying ``op``.

    ``rhs`` may be a scalar or a :class:`Var`; a variable must already be
    bound when the comparison is evaluated.
    """

    op: str
    rhs: "Scalar | Var"

    _OPS = ("==", "!=", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise QueryError(f"unknown comparison operator {self.op!r}")


@dataclass(frozen=True)
class RegexMatch:
    """Matches a string child against a regular expression (full match)."""

    pattern: str


@dataclass(frozen=True)
class QTerm:
    """A structured query term.

    ``total`` selects whether all children of the data term must be matched
    (curly single braces in Xcerpt) or only a subset (double braces);
    ``ordered`` selects whether query children must appear in document order.
    Attributes always match partially: listed attributes must be present and
    agree, extra attributes on the data term are ignored.
    """

    label: "str | LabelVar"
    children: tuple["Query", ...] = ()
    ordered: bool = True
    total: bool = True
    attrs: tuple[tuple[str, "str | Var"], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.label, str) and not self.label:
            raise QueryError("query term label must be non-empty")
        if self.ordered and self.total:
            for child in self.children:
                if isinstance(child, Without):
                    raise QueryError(
                        "'without' is not allowed in an ordered total term; "
                        "use a partial ({{ }} or [[ ]]) or unordered term"
                    )


#: Any query pattern (scalars match equal scalar leaves).
Query = Union[QTerm, Var, Desc, Without, Optional_, Compare, RegexMatch, Scalar, Data]


def q(
    label: "str | LabelVar",
    *children: "Query",
    ordered: bool = False,
    total: bool = False,
    **attrs: "str | Var",
) -> QTerm:
    """Convenience factory for query terms (default: unordered partial)."""
    return QTerm(label, tuple(children), ordered, total, tuple(sorted(attrs.items())))


# ---------------------------------------------------------------------------
# Construct terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CTerm:
    """A structured construct term: builds a :class:`Data` when instantiated."""

    label: "str | Var"
    children: tuple["Construct", ...] = ()
    ordered: bool = True
    attrs: tuple[tuple[str, "str | Var | Fn"], ...] = ()


@dataclass(frozen=True)
class All:
    """Grouping construct: ``all c`` instantiates *c* once per distinct
    binding of its free variables across the alternative bindings of the
    query part (Xcerpt's grouping semantics).

    ``order_by`` names variables whose values determine the output order;
    without it, groups appear in first-seen order.
    """

    inner: "Construct"
    order_by: tuple[str, ...] = ()


@dataclass(frozen=True)
class Agg:
    """Aggregation over grouped bindings: ``count(var X)``, ``avg(var X)``...

    Supported functions: count, sum, avg, min, max, first, last.
    """

    fn: str
    var: str

    _FNS = ("count", "sum", "avg", "min", "max", "first", "last")

    def __post_init__(self) -> None:
        if self.fn not in self._FNS:
            raise TermError(f"unknown aggregation function {self.fn!r}")


@dataclass(frozen=True)
class Fn:
    """A scalar function application over construct arguments.

    The function registry lives in :mod:`repro.terms.construct`; built-ins
    include add, sub, mul, div, mod, concat, lower, upper, str, num.
    """

    name: str
    args: tuple["Construct", ...] = ()


#: Any construct term (scalars and ground data terms construct themselves).
Construct = Union[CTerm, All, Agg, Fn, Var, Scalar, Data]


def c(label: "str | Var", *children: "Construct", ordered: bool = True,
      **attrs: "str | Var") -> CTerm:
    """Convenience factory for construct terms."""
    return CTerm(label, tuple(children), ordered, tuple(sorted(attrs.items())))


# ---------------------------------------------------------------------------
# Variable analysis
# ---------------------------------------------------------------------------


def free_vars(term: "Query | Construct") -> frozenset[str]:
    """Variables bound by (queries) or required by (constructs) *term*.

    For query terms, variables under ``Without`` are *not* free: negated
    subterms are locally scoped and produce no bindings.  Label variables
    count as free.
    """
    names: set[str] = set()
    _collect_vars(term, names, include_negated=False)
    return frozenset(names)


def all_vars(term: "Query | Construct") -> frozenset[str]:
    """All variable names occurring anywhere in *term*, negation included."""
    names: set[str] = set()
    _collect_vars(term, names, include_negated=True)
    return frozenset(names)


def _collect_vars(term: object, out: set[str], include_negated: bool) -> None:
    if isinstance(term, Var):
        out.add(term.name)
        if term.inner is not None:
            _collect_vars(term.inner, out, include_negated)
    elif isinstance(term, LabelVar):
        out.add(term.name)
    elif isinstance(term, QTerm):
        if isinstance(term.label, LabelVar):
            out.add(term.label.name)
        for _, value in term.attrs:
            if isinstance(value, Var):
                out.add(value.name)
        for child in term.children:
            _collect_vars(child, out, include_negated)
    elif isinstance(term, CTerm):
        if isinstance(term.label, Var):
            out.add(term.label.name)
        for _, value in term.attrs:
            if isinstance(value, (Var, Fn)):
                _collect_vars(value, out, include_negated)
        for child in term.children:
            _collect_vars(child, out, include_negated)
    elif isinstance(term, Desc):
        _collect_vars(term.inner, out, include_negated)
    elif isinstance(term, Without):
        if include_negated:
            _collect_vars(term.inner, out, include_negated)
    elif isinstance(term, Optional_):
        _collect_vars(term.inner, out, include_negated)
    elif isinstance(term, Compare):
        if isinstance(term.rhs, Var):
            out.add(term.rhs.name)
    elif isinstance(term, All):
        _collect_vars(term.inner, out, include_negated)
        out.update(term.order_by)
    elif isinstance(term, Agg):
        out.add(term.var)
    elif isinstance(term, Fn):
        for arg in term.args:
            _collect_vars(arg, out, include_negated)
    # Data, scalars, RegexMatch: no variables.

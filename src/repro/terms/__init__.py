"""Term data model: the library's single representation for Web data.

This package realises Thesis 7's "language coherency": one term language is
used for persistent Web documents (data terms), for querying both documents
and event payloads (query terms), and for building new data, messages, and
update payloads (construct terms).

Public API
----------
- :mod:`repro.terms.ast` — term classes (``Data``, ``Var``, ``QTerm``, ...)
- :mod:`repro.terms.simulation` — the matcher (simulation unification)
- :mod:`repro.terms.construct` — answer construction with grouping
- :mod:`repro.terms.parser` — textual syntax (parse/serialise round-trip)
- :mod:`repro.terms.rdf` — RDF triples, RDFS inference, term bridge
"""

from repro.terms.ast import (
    Agg,
    All,
    Bindings,
    Child,
    Compare,
    Construct,
    CTerm,
    Data,
    Desc,
    EMPTY_BINDINGS,
    Fn,
    LabelVar,
    Optional_,
    QTerm,
    Query,
    RegexMatch,
    Scalar,
    Var,
    Without,
    all_vars,
    c,
    canonical_str,
    d,
    free_vars,
    is_scalar,
    q,
    u,
    values_equal,
)
from repro.terms.construct import instantiate, instantiate_all, register_function
from repro.terms.parser import (
    parse_construct,
    parse_data,
    parse_query,
    to_text,
)
from repro.terms.simulation import (
    compile_matches,
    compile_pattern,
    match,
    matcher_call_count,
    matches,
)

__all__ = [
    "Agg",
    "All",
    "Bindings",
    "Child",
    "Compare",
    "Construct",
    "CTerm",
    "Data",
    "Desc",
    "EMPTY_BINDINGS",
    "Fn",
    "LabelVar",
    "Optional_",
    "QTerm",
    "Query",
    "RegexMatch",
    "Scalar",
    "Var",
    "Without",
    "all_vars",
    "c",
    "canonical_str",
    "compile_matches",
    "compile_pattern",
    "d",
    "free_vars",
    "instantiate",
    "instantiate_all",
    "is_scalar",
    "match",
    "matcher_call_count",
    "matches",
    "parse_construct",
    "parse_data",
    "parse_query",
    "q",
    "register_function",
    "to_text",
    "u",
    "values_equal",
]

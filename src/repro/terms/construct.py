"""Construction of data terms from construct terms and bindings.

The construction side of the query language (Theses 7-8): rule actions and
event-raising build new data terms from the bindings collected by event and
condition queries.  Supports Xcerpt-style grouping (``all``), aggregation
over groups, and scalar functions.

Two entry points:

- :func:`instantiate` — build from a single binding set (no grouping
  context; ``all`` raises).
- :func:`instantiate_all` — build from a *list* of alternative binding sets;
  ``all`` sub-constructs expand per distinct projection onto their free
  variables, and aggregations fold over the alternatives.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ConstructError, UnboundVariableError
from repro.terms.ast import (
    Agg,
    All,
    Bindings,
    Child,
    Construct,
    CTerm,
    Data,
    Fn,
    Scalar,
    Var,
    canonical_str,
    free_vars,
    is_scalar,
    values_equal,
)

# ---------------------------------------------------------------------------
# Scalar function registry
# ---------------------------------------------------------------------------

FunctionImpl = Callable[..., Scalar]

_FUNCTIONS: dict[str, FunctionImpl] = {}


def register_function(name: str, impl: FunctionImpl) -> None:
    """Register a scalar function usable as ``Fn(name, args)`` in constructs."""
    if name in _FUNCTIONS:
        raise ConstructError(f"function {name!r} already registered")
    _FUNCTIONS[name] = impl


def _num(value: Child, fn: str) -> float | int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConstructError(f"{fn}: expected a number, got {value!r}")
    return value


def _builtin_add(*args: Child) -> Scalar:
    return sum(_num(a, "add") for a in args)


def _builtin_sub(a: Child, b: Child) -> Scalar:
    return _num(a, "sub") - _num(b, "sub")


def _builtin_mul(*args: Child) -> Scalar:
    out: float | int = 1
    for a in args:
        out *= _num(a, "mul")
    return out


def _builtin_div(a: Child, b: Child) -> Scalar:
    denominator = _num(b, "div")
    if denominator == 0:
        raise ConstructError("div: division by zero")
    return _num(a, "div") / denominator


def _builtin_mod(a: Child, b: Child) -> Scalar:
    denominator = _num(b, "mod")
    if denominator == 0:
        raise ConstructError("mod: division by zero")
    return _num(a, "mod") % denominator


def _builtin_concat(*args: Child) -> Scalar:
    parts = []
    for a in args:
        if isinstance(a, Data):
            raise ConstructError(f"concat: expected a scalar, got term {a.label!r}")
        parts.append(str(a))
    return "".join(parts)


def _builtin_lower(a: Child) -> Scalar:
    if not isinstance(a, str):
        raise ConstructError(f"lower: expected a string, got {a!r}")
    return a.lower()


def _builtin_upper(a: Child) -> Scalar:
    if not isinstance(a, str):
        raise ConstructError(f"upper: expected a string, got {a!r}")
    return a.upper()


def _builtin_str(a: Child) -> Scalar:
    if isinstance(a, Data):
        return canonical_str(a)
    return str(a)


def _builtin_num(a: Child) -> Scalar:
    if isinstance(a, (int, float)) and not isinstance(a, bool):
        return a
    if isinstance(a, str):
        try:
            return int(a)
        except ValueError:
            try:
                return float(a)
            except ValueError as exc:
                raise ConstructError(f"num: cannot parse {a!r}") from exc
    raise ConstructError(f"num: cannot convert {a!r}")


for _name, _impl in [
    ("add", _builtin_add),
    ("sub", _builtin_sub),
    ("mul", _builtin_mul),
    ("div", _builtin_div),
    ("mod", _builtin_mod),
    ("concat", _builtin_concat),
    ("lower", _builtin_lower),
    ("upper", _builtin_upper),
    ("str", _builtin_str),
    ("num", _builtin_num),
]:
    _FUNCTIONS[_name] = _impl


# ---------------------------------------------------------------------------
# Instantiation
# ---------------------------------------------------------------------------


def instantiate(construct: Construct, bindings: Bindings) -> Child:
    """Build a data term (or scalar) from *construct* under one binding set.

    Raises :class:`UnboundVariableError` for unbound variables and
    :class:`ConstructError` if the construct needs a grouping context
    (``all`` or an aggregation) — use :func:`instantiate_all` for those.
    """
    return _build(construct, bindings, None)


def instantiate_all(construct: Construct, alternatives: Sequence[Bindings]) -> Child:
    """Build from *alternatives*, expanding ``all`` and aggregations.

    Variables outside ``all``/aggregations take the value on which *all*
    alternatives agree (variables with disagreeing values are treated as
    unbound outside a grouping context — group them with ``all`` instead).
    An empty alternative list yields empty groups and zero-counts.
    """
    return _build(construct, _common_bindings(alternatives), list(alternatives))


def _common_bindings(alternatives: Sequence[Bindings]) -> Bindings:
    """The bindings shared (with equal values) by every alternative."""
    if not alternatives:
        return Bindings()
    common = alternatives[0]
    for alt in alternatives[1:]:
        agreed = [
            (name, value)
            for name, value in common.items
            if name in alt and values_equal(alt[name], value)
        ]
        common = Bindings(tuple(agreed))
        if not common.items:
            break
    return common


def _build(
    construct: Construct, b: Bindings, alternatives: list[Bindings] | None
) -> Child:
    if is_scalar(construct):
        return construct  # type: ignore[return-value]
    if isinstance(construct, Data):
        return construct
    if isinstance(construct, Var):
        value = b.get(construct.name, _MISSING)
        if value is _MISSING:
            raise UnboundVariableError(construct.name)
        return value  # type: ignore[return-value]
    if isinstance(construct, Fn):
        return _apply_fn(construct, b, alternatives)
    if isinstance(construct, Agg):
        return _aggregate(construct, b, alternatives)
    if isinstance(construct, All):
        raise ConstructError(
            "'all' can only appear inside a structured construct term "
            "instantiated with instantiate_all"
        )
    if isinstance(construct, CTerm):
        return _build_cterm(construct, b, alternatives)
    raise ConstructError(f"not a construct term: {construct!r}")


def _build_cterm(
    construct: CTerm, b: Bindings, alternatives: list[Bindings] | None
) -> Data:
    label = construct.label
    if isinstance(label, Var):
        value = b.get(label.name, _MISSING)
        if value is _MISSING:
            raise UnboundVariableError(label.name)
        if not isinstance(value, str):
            raise ConstructError(f"label variable {label.name!r} bound to non-string {value!r}")
        label = value
    attrs = []
    for key, want in construct.attrs:
        if isinstance(want, (Var, Fn)):
            value = _build(want, b, alternatives)
            if isinstance(value, Data):
                raise ConstructError(f"attribute {key!r} bound to a structured term")
            attrs.append((key, str(value)))
        else:
            attrs.append((key, want))
    children: list[Child] = []
    for child in construct.children:
        if isinstance(child, All):
            children.extend(_expand_all(child, b, alternatives))
        else:
            children.append(_build(child, b, alternatives))
    return Data(label, tuple(children), construct.ordered, tuple(attrs))


def _grouping_vars(construct: Construct) -> frozenset[str]:
    """Variables of *construct* outside any nested ``all``/aggregation scope.

    These determine the group key of an ``all``: variables that only occur
    under a nested ``all`` or aggregation are grouped at that deeper level
    and must not split the outer groups.
    """
    out: set[str] = set()
    _collect_grouping(construct, out)
    return frozenset(out)


def _collect_grouping(term: Construct, out: set[str]) -> None:
    if isinstance(term, Var):
        out.add(term.name)
    elif isinstance(term, CTerm):
        if isinstance(term.label, Var):
            out.add(term.label.name)
        for _, value in term.attrs:
            if isinstance(value, Var):
                out.add(value.name)
            elif isinstance(value, Fn):
                _collect_grouping(value, out)
        for child in term.children:
            _collect_grouping(child, out)
    elif isinstance(term, Fn):
        for arg in term.args:
            _collect_grouping(arg, out)
    # All and Agg introduce a deeper grouping scope; Data/scalars bind nothing.


def _expand_all(
    group: All, b: Bindings, alternatives: list[Bindings] | None
) -> list[Child]:
    if alternatives is None:
        raise ConstructError("'all' needs a grouping context (instantiate_all)")
    group_vars = _grouping_vars(group.inner) | set(group.order_by)
    compatible = [alt for alt in alternatives if b.merge(alt) is not None]
    # One output child per distinct projection of the alternatives onto the
    # free variables of the grouped construct (Xcerpt grouping semantics).
    buckets: dict[Bindings, list[Bindings]] = {}
    order: list[Bindings] = []
    for alt in compatible:
        key = alt.project(group_vars)
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(alt)
    if group.order_by:
        def sort_key(key: Bindings) -> tuple[object, ...]:
            return tuple(_orderable(key.get(name)) for name in group.order_by)

        order = sorted(order, key=sort_key)
    out: list[Child] = []
    for key in order:
        merged = b.merge(key)
        if merged is None:
            continue
        out.append(_build(group.inner, merged, buckets[key]))
    return out


def _orderable(value: Child | None) -> tuple[int, object]:
    """A total order over heterogeneous term values for ``order_by``."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    return (4, canonical_str(value))


def _aggregate(agg: Agg, b: Bindings, alternatives: list[Bindings] | None) -> Scalar:
    if alternatives is None:
        raise ConstructError(f"{agg.fn}(var {agg.var}) needs a grouping context")
    compatible = [alt for alt in alternatives if b.merge(alt) is not None]
    values = [alt[agg.var] for alt in compatible if agg.var in alt]
    if agg.fn == "count":
        return len(values)
    if not values:
        raise ConstructError(f"{agg.fn}: no values for variable {agg.var!r}")
    if agg.fn == "first":
        return _scalar_only(values[0], agg.fn)
    if agg.fn == "last":
        return _scalar_only(values[-1], agg.fn)
    numbers = [_num(v, agg.fn) for v in values]
    if agg.fn == "sum":
        return sum(numbers)
    if agg.fn == "avg":
        return sum(numbers) / len(numbers)
    if agg.fn == "min":
        return min(numbers)
    return max(numbers)


def _scalar_only(value: Child, fn: str) -> Scalar:
    if isinstance(value, Data):
        raise ConstructError(f"{fn}: expected a scalar, got term {value.label!r}")
    return value


def _apply_fn(fn: Fn, b: Bindings, alternatives: list[Bindings] | None) -> Scalar:
    impl = _FUNCTIONS.get(fn.name)
    if impl is None:
        raise ConstructError(f"unknown function {fn.name!r}")
    args = [_build(arg, b, alternatives) for arg in fn.args]
    try:
        return impl(*args)
    except ConstructError:
        raise
    except TypeError as exc:
        raise ConstructError(f"{fn.name}: bad arguments {args!r}: {exc}") from exc


_MISSING = object()

"""Atomic execution of compound updates (Thesis 8).

The most common compound action is a *sequence*; if one step fails the
earlier steps must not remain half-applied.  A :class:`Transaction`
snapshots one or more resource stores (cheap: documents are immutable) and
rolls them back on failure.  Used by the action executor for ``Sequence``
actions and available directly::

    with Transaction(store) as tx:
        store.put(uri, new_root)
        ...                      # any exception rolls everything back

Atomicity extends to *observers*: opening a transaction switches each
store into notification-buffering mode, so resource watchers (polling
baselines, Thesis-10 identity monitors) hear about the transaction's
puts/deletes only when it commits — in update order — and hear nothing at
all when it rolls back.  Without the buffering, a watcher could react to
an intermediate state of an update that officially never happened (a
phantom ``resource-changed``), violating Thesis 8.  Transactions nest:
an inner rollback discards only the inner scope's notifications, and
everything flushes at the outermost commit.

The outermost commit is also the **durability point**: the store's
``_persist`` seam receives the surviving operations as *one* commit —
before any transactional watcher hears them — so on a durable store
(:mod:`repro.store`) a whole transaction becomes permanent with a single
WAL append and fsync (group commit), or not at all.  A rolled-back
transaction never reaches the seam; after a crash, recovery restores
exactly the committed prefix.
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeVar

from repro.errors import TransactionError
from repro.web.resources import ResourceStore

T = TypeVar("T")


class Transaction:
    """Snapshot-rollback transaction over one or more resource stores."""

    def __init__(self, *stores: ResourceStore) -> None:
        if not stores:
            raise TransactionError("a transaction needs at least one store")
        self._stores = stores
        self._snapshots = [store.snapshot() for store in stores]
        # Buffer watcher notifications until the outcome is known; the
        # marks let a nested rollback discard only its own scope.
        self._marks = [store._begin_buffering() for store in stores]
        self._finished = False
        self.committed = False

    def commit(self) -> None:
        """Make the changes permanent (flushes buffered notifications
        when this is the outermost transaction on each store)."""
        self._check_open()
        self._finished = True
        self.committed = True
        for store, mark in zip(self._stores, self._marks):
            store._end_buffering(mark, commit=True)

    def rollback(self) -> None:
        """Restore every store to its snapshot; watchers hear nothing of
        the rolled-back changes (their buffered notifications are
        discarded — the transaction never happened)."""
        self._check_open()
        for store, snapshot in zip(self._stores, self._snapshots):
            store.restore(snapshot)
        self._finished = True
        for store, mark in zip(self._stores, self._marks):
            store._end_buffering(mark, commit=False)

    def _check_open(self) -> None:
        if self._finished:
            raise TransactionError("transaction already finished")

    def __del__(self) -> None:
        # An abandoned transaction (never committed nor rolled back) must
        # not leave its stores buffering watcher notifications forever —
        # release the scopes, discarding this scope's notifications, like
        # a rollback would (the documents themselves are left as-is:
        # deciding the data outcome is the caller's job, silencing every
        # future watcher is not).
        if getattr(self, "_finished", True):
            return
        try:
            for store, mark in zip(self._stores, self._marks):
                store._end_buffering(mark, commit=False)
        except Exception:
            pass  # interpreter teardown: never raise from __del__

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._finished:
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False  # propagate exceptions after rollback


def atomically(stores: "ResourceStore | Iterable[ResourceStore]",
               action: Callable[[], T]) -> T:
    """Run *action* atomically over the given store(s).

    Returns the action's result; on any exception the stores are rolled
    back and the exception re-raised.
    """
    if isinstance(stores, ResourceStore):
        stores = [stores]
    with Transaction(*stores):
        return action()

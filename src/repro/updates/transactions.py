"""Atomic execution of compound updates (Thesis 8).

The most common compound action is a *sequence*; if one step fails the
earlier steps must not remain half-applied.  A :class:`Transaction`
snapshots one or more resource stores (cheap: documents are immutable) and
rolls them back on failure.  Used by the action executor for ``Sequence``
actions and available directly::

    with Transaction(store) as tx:
        store.put(uri, new_root)
        ...                      # any exception rolls everything back
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeVar

from repro.errors import TransactionError
from repro.web.resources import ResourceStore

T = TypeVar("T")


class Transaction:
    """Snapshot-rollback transaction over one or more resource stores."""

    def __init__(self, *stores: ResourceStore) -> None:
        if not stores:
            raise TransactionError("a transaction needs at least one store")
        self._stores = stores
        self._snapshots = [store.snapshot() for store in stores]
        self._finished = False
        self.committed = False

    def commit(self) -> None:
        """Make the changes permanent."""
        self._check_open()
        self._finished = True
        self.committed = True

    def rollback(self) -> None:
        """Restore every store to its snapshot."""
        self._check_open()
        for store, snapshot in zip(self._stores, self._snapshots):
            store.restore(snapshot)
        self._finished = True

    def _check_open(self) -> None:
        if self._finished:
            raise TransactionError("transaction already finished")

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._finished:
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False  # propagate exceptions after rollback


def atomically(stores: "ResourceStore | Iterable[ResourceStore]",
               action: Callable[[], T]) -> T:
    """Run *action* atomically over the given store(s).

    Returns the action's result; on any exception the stores are rolled
    back and the exception re-raised.
    """
    if isinstance(stores, ResourceStore):
        stores = [stores]
    with Transaction(*stores):
        return action()

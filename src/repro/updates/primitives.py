"""Primitive updates on data terms and RDF graphs.

Terms are immutable, so every update rebuilds the spine of the tree and
returns a new root together with the number of affected positions.  Targets
are selected with ordinary query terms (language coherency, Thesis 7):
variables bound by the rule's event and condition parts parameterise both
the target query and the replacement construct.

The three shapes from the paper:

- :func:`insert_child` — add constructed children to every matching parent;
- :func:`delete_terms` — remove every matching subterm;
- :func:`replace_terms` — swap every matching subterm for a constructed one
  (the construct sees the match's own bindings, so replacements can reuse
  parts of what they replace).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import UpdateError
from repro.terms.ast import Bindings, Child, Construct, Data, Query
from repro.terms.construct import instantiate
from repro.terms.rdf import Graph, Triple
from repro.terms.simulation import match, matches


def _rebuild(node: Data, transform: "Callable[[Data], Data | None]") -> "Data | None":
    """Bottom-up rebuild: *transform* maps each data term to its
    replacement (or None to delete it)."""
    new_children: list[Child] = []
    changed = False
    for child in node.children:
        if isinstance(child, Data):
            rebuilt = _rebuild(child, transform)
            if rebuilt is not child:
                changed = True
            if rebuilt is not None:
                new_children.append(rebuilt)
        else:
            new_children.append(child)
    rebuilt_node = node.with_children(tuple(new_children)) if changed else node
    return transform(rebuilt_node)


def insert_child(
    root: Data,
    parent_query: Query,
    construct: Construct,
    bindings: Bindings = Bindings(),
    position: str = "end",
) -> tuple[Data, int]:
    """Insert the constructed term as a child of every matching parent.

    ``position`` is ``"end"`` or ``"start"``.  Returns (new root, number of
    parents extended).  The construct is instantiated once per matching
    parent, with the parent's match bindings merged in.
    """
    if position not in ("end", "start"):
        raise UpdateError(f"unknown insert position {position!r}")
    count = 0

    def transform(node: Data) -> Data:
        nonlocal count
        found = match(parent_query, node, bindings)
        if not found:
            return node
        count += 1
        new_child = instantiate(construct, found[0])
        if position == "end":
            return node.append(new_child)
        return node.with_children((new_child,) + node.children)

    new_root = _rebuild(root, transform)
    assert new_root is not None  # insert never deletes
    return new_root, count


def delete_terms(
    root: Data, target_query: Query, bindings: Bindings = Bindings()
) -> tuple[Data, int]:
    """Delete every subterm matching the query; the root is protected."""
    count = 0

    def transform(node: Data) -> "Data | None":
        nonlocal count
        if matches(target_query, node, bindings):
            count += 1
            return None
        return node

    new_root = _rebuild(root, transform)
    if new_root is None:
        raise UpdateError(
            "refusing to delete the resource root; delete the resource itself instead"
        )
    return new_root, count


def replace_terms(
    root: Data,
    target_query: Query,
    construct: Construct,
    bindings: Bindings = Bindings(),
) -> tuple[Data, int]:
    """Replace every *outermost* matching subterm with the constructed term.

    Matches nested inside a replaced term are not replaced separately (the
    replacement swallows them) — top-down, outermost-wins semantics.  The
    construct is instantiated under the incoming bindings merged with the
    bindings of each individual match, so a replacement can be written in
    terms of the replaced content, e.g. incrementing a counter::

        replace_terms(root, parse_query("qty[ var Q ]"),
                      parse_construct("qty[ add(var Q, 1) ]"))
    """
    count = 0

    def walk(node: Data) -> Data:
        nonlocal count
        found = match(target_query, node, bindings)
        if found:
            count += 1
            replacement = instantiate(construct, found[0])
            if not isinstance(replacement, Data):
                raise UpdateError(
                    f"replacement must be a data term, got scalar {replacement!r}"
                )
            return replacement
        new_children: list[Child] = []
        changed = False
        for child in node.children:
            if isinstance(child, Data):
                rebuilt = walk(child)
                changed = changed or rebuilt is not child
                new_children.append(rebuilt)
            else:
                new_children.append(child)
        return node.with_children(tuple(new_children)) if changed else node

    return walk(root), count


# ---------------------------------------------------------------------------
# RDF updates
# ---------------------------------------------------------------------------


def rdf_insert(graph: Graph, triples: "list[Triple] | Triple") -> int:
    """Insert triples into a graph; returns how many were new."""
    if isinstance(triples, Triple):
        triples = [triples]
    return sum(1 for triple in triples if graph.add(triple))


def rdf_delete(graph: Graph, pattern: tuple) -> int:
    """Delete all triples matching a (subject, predicate, object) pattern
    (None or variables act as wildcards); returns how many were removed."""
    victims = list(graph.triples(*pattern))
    for triple in victims:
        graph.remove(triple)
    return len(victims)

"""The update language: state-changing primitives and transactions (Thesis 8).

    "Complex reactions can conveniently be built as compounds of primitive
    actions such as insertions, deletions, or modifications of XML
    elements, RDF triples, or OWL facts."

- :mod:`repro.updates.primitives` — insert/delete/replace on data terms
  (query-term targeting, construct-term payloads) and on RDF graphs;
- :mod:`repro.updates.transactions` — atomic execution of compound updates
  over resource stores, with snapshot rollback.
"""

from repro.updates.primitives import (
    delete_terms,
    insert_child,
    rdf_delete,
    rdf_insert,
    replace_terms,
)
from repro.updates.transactions import Transaction, atomically

__all__ = [
    "Transaction",
    "atomically",
    "delete_terms",
    "insert_child",
    "rdf_delete",
    "rdf_insert",
    "replace_terms",
]

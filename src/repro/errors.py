"""Exception hierarchy for the ReWeb library.

Every error raised by the library derives from :class:`ReWebError` so that
applications can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReWebError(Exception):
    """Base class for all errors raised by the ReWeb library."""


#: The package-named alias of :class:`ReWebError` — ``except ReproError``
#: catches every library failure without referencing the historical name.
ReproError = ReWebError


class TermError(ReWebError):
    """Malformed data, query, or construct term."""


class ParseError(TermError):
    """Raised by the textual parsers (terms and rule language).

    Carries the position of the offending token so error messages can point
    at the source text.
    """

    def __init__(self, message: str, position: int = -1, line: int = -1) -> None:
        self.position = position
        self.line = line
        if line >= 0:
            message = f"line {line}: {message}"
        super().__init__(message)


class QueryError(TermError):
    """A query term is invalid (e.g. ``without`` in an ordered total term)."""


class ConstructError(TermError):
    """A construct term cannot be instantiated (e.g. unbound variable)."""


class UnboundVariableError(ConstructError):
    """A variable referenced during construction has no binding."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"unbound variable: {name!r}")


class EventError(ReWebError):
    """Malformed event or event query."""


class EventQueryError(EventError):
    """An event query is structurally invalid (e.g. unguarded negation)."""


class WebError(ReWebError):
    """Errors from the simulated Web substrate."""


class IngestError(WebError):
    """Errors from the ingestion tier (transport, admission, wire format)."""


class FrameError(IngestError):
    """A wire frame is malformed: truncated or oversized length prefix,
    undecodable payload, or a payload that is not an event envelope."""


class StoreError(WebError):
    """Errors from the durable resource-store layer (:mod:`repro.store`):
    unusable configuration, an unreadable snapshot, or a persistence
    backend that failed outside the torn-tail cases recovery repairs."""


class ResourceNotFound(WebError):
    """A GET/update targeted a URI that does not exist."""

    def __init__(self, uri: str) -> None:
        self.uri = uri
        super().__init__(f"no such resource: {uri}")


class NodeNotFound(WebError):
    """A message was sent to a URI whose authority is not on the network."""

    def __init__(self, uri: str) -> None:
        self.uri = uri
        super().__init__(f"no node registered for: {uri}")


class UpdateError(ReWebError):
    """An update primitive could not be applied."""


class TransactionError(UpdateError):
    """A transaction failed to commit and was rolled back."""


class ActionError(ReWebError):
    """An action failed to execute; triggers ``Alternative`` fallback."""


class RuleError(ReWebError):
    """Malformed reactive rule or rule set."""


class DeductiveError(ReWebError):
    """Malformed deductive rule program (e.g. recursion where forbidden)."""


class RecursionRejected(DeductiveError):
    """Recursive deductive rules are rejected for event-level views (Thesis 9)."""


class MetaError(ReWebError):
    """Rule (de)serialisation to data terms failed (Thesis 11)."""


class AuthenticationError(ReWebError):
    """The principal could not be authenticated (Thesis 12)."""


class AuthorizationError(ReWebError):
    """The principal is not authorised for the requested action (Thesis 12)."""

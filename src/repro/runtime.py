"""Threaded shard execution: a worker pool with an epoch/barrier protocol.

PR 4 left every shard of a sharded :class:`~repro.api.ReactiveNode` running
on the scheduler's thread; this module is the seam the ROADMAP named next:
"move shard engines onto real threads — the inbox seam is now per-shard, so
only the shared resource store and clock need coordination."

The execution model is *parallel match, sequential act*:

1. **Snapshot** — the router's drain callback computes, on the scheduler
   thread, exactly the per-shard inbox segments the inline merge-drain
   would have popped this drain (same global-arrival order, same
   ``inbox_batch`` budgets), so the epoch's work set is deterministic.
2. **Epoch** — :meth:`ShardWorkerPool.run_epoch` hands each shard's
   segment to that shard's dedicated :class:`ShardWorker` thread.  Workers
   advance their own engine's evaluators (the per-event matching work —
   the hot path) and *collect* the answers they would have fired, tagged
   with the event's global sequence number.  A worker touches only its own
   shard's state, so no engine-level locking is needed.
3. **Barrier** — the scheduler thread blocks until every worker reports
   done (simulated time cannot advance while a shard is mid-drain), then
   merges the collected answers in ``(arrival seq, installation order)``
   order and fires them — condition evaluation, action execution,
   INSTALL/UNINSTALL re-partitions, wake-up registration — serially on
   the scheduler thread.  Shared mutable state (the resource store, the
   network, the clock) is therefore only ever written from one thread at
   a time, and firing order is bit-identical to the inline executor.

Workers are *pinned*: worker *i* only ever runs jobs for shard *i*, so an
engine's state is handed between exactly two threads (worker and
coordinator), always separated by the queue synchronisation of an epoch —
no torn reads.  Threads start lazily at the first epoch and are reclaimed
by :meth:`ShardWorkerPool.shutdown` (the router arms a ``weakref.finalize``
so abandoned nodes do not leak threads).

A failing job does not tear the barrier down: the coordinator still joins
every worker before re-raising the lowest-shard error, so the fleet is
quiescent when the exception propagates.

Adaptive evaluation (``EngineConfig(evaluator="adaptive")``) rides the
same contract: a mechanism switch taken by a worker mid-epoch mutates
only that shard's evaluator (replacing its inner mechanism in place,
answers unchanged), while everything a governor decision needs to
*schedule* — the evaluator's post-switch ``next_deadline()``, governor
tick registration — crosses the epoch barrier like any other wake-up:
the router runs the deferred ``_schedule_wakeups`` pass on the scheduler
thread after the workers have joined.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Sequence

from repro.errors import WebError

__all__ = ["ShardWorker", "ShardWorkerPool"]

_STOP = object()  # sentinel job: the worker thread exits its loop


class ShardWorker(threading.Thread):
    """One daemon thread permanently pinned to one shard index.

    Jobs arrive through a private queue; every completion (successful or
    not) is reported to the pool's shared done-queue so the coordinator
    can count the barrier down without polling.
    """

    def __init__(self, index: int, name: str,
                 done: "queue.SimpleQueue") -> None:
        super().__init__(name=name, daemon=True)
        self.index = index
        self._jobs: "queue.SimpleQueue" = queue.SimpleQueue()
        self._done = done
        # Wall-clock seconds spent inside jobs; written only by this
        # thread, read by the coordinator between epochs (the barrier
        # orders the accesses).
        self.busy_s = 0.0

    def submit(self, job) -> None:
        self._jobs.put(job)

    def run(self) -> None:  # pragma: no cover - exercised via the pool
        while True:
            job = self._jobs.get()
            if job is _STOP:
                return
            error = None
            started = time.perf_counter()
            try:
                job()
            except BaseException as exc:  # noqa: BLE001 - reported at the barrier
                error = exc
            self.busy_s += time.perf_counter() - started
            self._done.put((self.index, error))


class ShardWorkerPool:
    """N pinned workers plus the epoch/barrier protocol that drives them.

    Counters (read between epochs — the coordinator owns them):

    - :attr:`epochs` — barrier round-trips taken;
    - :attr:`jobs_run` — shard jobs executed across all epochs;
    - :attr:`barrier_wait_s` — wall-clock seconds the coordinator spent
      blocked from releasing the workers to joining the last one; the
      per-epoch quotient is the protocol's overhead floor, the number
      ``BENCH_e17.json`` tracks;
    - :meth:`worker_busy_s` — per-worker wall-clock seconds spent inside
      jobs; comparing the sum against ``barrier_wait_s`` separates "the
      work is slow" from "the barrier is slow" (skew across workers is
      the load-imbalance signal).
    """

    def __init__(self, n_workers: int, name: str = "shards") -> None:
        if n_workers < 1:
            raise WebError(f"a worker pool needs >= 1 worker, got {n_workers}")
        self.n_workers = n_workers
        self.name = name
        self._workers: "list[ShardWorker] | None" = None  # started lazily
        self._done: "queue.SimpleQueue" = queue.SimpleQueue()
        self._closed = False
        self.epochs = 0
        self.jobs_run = 0
        self.barrier_wait_s = 0.0

    @property
    def started(self) -> bool:
        """True once worker threads exist (the first epoch starts them)."""
        return self._workers is not None

    def worker_busy_s(self) -> tuple[float, ...]:
        """Per-worker seconds spent inside jobs (all zero before the
        first epoch); read between epochs like the other counters."""
        if self._workers is None:
            return tuple(0.0 for _ in range(self.n_workers))
        return tuple(worker.busy_s for worker in self._workers)

    def _ensure_started(self) -> None:
        if self._workers is None:
            self._workers = [
                ShardWorker(i, f"{self.name}[{i}]", self._done)
                for i in range(self.n_workers)
            ]
            for worker in self._workers:
                worker.start()

    def run_epoch(self, jobs: Sequence["Callable[[], None] | None"]) -> None:
        """Run one job per shard concurrently; return after ALL finish.

        *jobs* is indexed by shard; ``None`` means the shard is idle this
        epoch.  The call blocks the calling (scheduler) thread until every
        released worker has reported back — the barrier — and only then
        re-raises the lowest-indexed job error, if any, so a failure never
        leaves a worker still mutating shard state behind the caller's
        back.
        """
        if self._closed:
            raise WebError(f"worker pool {self.name!r} is shut down")
        if len(jobs) != self.n_workers:
            raise WebError(
                f"epoch needs one job slot per worker: got {len(jobs)} "
                f"slots for {self.n_workers} workers"
            )
        active = [index for index, job in enumerate(jobs) if job is not None]
        if not active:
            return
        self._ensure_started()
        released = time.perf_counter()
        for index in active:
            self._workers[index].submit(jobs[index])
        errors: dict[int, BaseException] = {}
        for _ in active:
            index, error = self._done.get()
            if error is not None:
                errors[index] = error
        self.epochs += 1
        self.jobs_run += len(active)
        self.barrier_wait_s += time.perf_counter() - released
        if errors:
            raise errors[min(errors)]

    def shutdown(self) -> None:
        """Stop the worker threads (idempotent; armed via weakref.finalize).

        Joins with a timeout as a backstop — workers are daemon threads, so
        a wedged job cannot hang interpreter exit.
        """
        self._closed = True
        workers, self._workers = self._workers, None
        if not workers:
            return
        for worker in workers:
            worker.submit(_STOP)
        for worker in workers:
            worker.join(timeout=1.0)

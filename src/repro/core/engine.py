"""The reactive engine: local rule processing at one Web node (Thesis 2).

Each node runs its own engine over its own rule base; engines never talk to
each other except through event messages and resource reads — global
behaviour is choreography, not orchestration.

The engine:

- keeps one *incremental* event evaluator per installed rule (Thesis 6);
- schedules scheduler wake-ups at absence deadlines, so trailing-``ENot``
  answers fire at the right simulated time without polling;
- evaluates rule conditions against local and remote resources,
  parameterised by the event bindings (Thesis 7);
- executes actions, including atomic sequences, alternatives, procedure
  calls (Thesis 9), and rule installation from received rule terms
  (Thesis 11);
- optionally expands *deductive event views* (Thesis 9): a non-recursive
  deductive program derives further event terms from each incoming event
  (e.g. classifying ``order`` events as ``high-value-order``), and rules
  can subscribe to the derived labels.

Dispatch: the discrimination trie
---------------------------------

Deciding *which* rules an incoming event can affect is the per-event hot
path, so the rule base is compiled into a multi-level discrimination
**trie** consulted by ``_interested``:

1. **Root label** — the first level keys on the event's root label, built
   from each evaluator's ``interest()``
   (:class:`~repro.events.queries.EventInterest`).  Wildcard rules (label
   variables, ``desc``, bare variables) are kept in one seq-ordered side
   list merged in at dispatch; events whose label has no bucket see only
   the wildcard rules.
2. **Discriminator trie** — within one label, rules are recursively split
   by the constants they constrain — attribute values and constant-scalar
   children (``stock[sym: "ACME"]``).  Each trie node picks the most
   selective axis among its rules' remaining discriminators (the axis the
   most rules constrain, ties broken by distinct-value count then axis
   name), routes each rule either to the child keyed by its constant on
   that axis (consuming the discriminator) or to the *residual* subtrie
   of rules that don't constrain the axis, and splits again until no
   discriminators remain (``EngineConfig(trie_depth=...)`` caps the
   recursion; ``trie_depth=1`` is the old two-level net).  Dispatch
   extracts the event's value per visited axis
   (:func:`~repro.events.queries.extract_axis_value`) and descends into
   the matching child plus the residual, merging the reached leaves (and
   wildcards) by installation sequence.  Extraction is conservative: an
   event exhibiting an axis ambiguously (several same-label children,
   non-scalar content) degrades to that node's whole subtree, so
   discrimination can over-deliver but never under-deliver.

Maintenance is **incremental**: installing a rule inserts one row per
interested label along an O(depth) trie path (splitting only the touched
leaf), and uninstalling prunes the same path eagerly (collapsing emptied
nodes), so neither pays the O(rules) full rebuild — that cost is reserved
for :meth:`ReactiveEngine.refresh`, which still handles rule-set changes
by rebuilding through the same insert machinery.

Three config knobs select the pipeline depth, each the ablation switch of
a benchmark experiment: ``indexed_dispatch=False`` broadcasts every event
to every rule (E13); ``discriminating_index=False`` stops at the root
label (E15); the default runs the full trie (depth swept in E22).  All
modes produce identical answers and firing counts, and — under queued
delivery, the default — identical firing order; only the candidate count
changes (``EngineStats.candidates_considered`` / ``index_probes`` /
``matcher_calls`` expose it).  The one sequencing caveat:
with ``sync_delivery=True``, broadcast hands *unrelated* events to an
absence rule's evaluator, which can confirm a pending absence one
callback earlier than the scheduled wake-up when such an event lands
exactly on the deadline instant — same simulated time and answers,
different intra-instant order.

Overlapping-rule combinators (:mod:`repro.core.rulesets`) compile into
per-rule ``(group, kind, precedence)`` specs: at dispatch, answers of
grouped rules are set aside while ungrouped rules fire exactly as before,
then each group fires only its highest-precedence answering members —
losers are counted in ``EngineStats.firings_suppressed``.  Within one
event instant, group winners therefore fire after ungrouped rules, in
installation order.

Sharding hooks
--------------

One engine is one *shard* of a node's rule base.  With
``EngineConfig(shards=N)`` (N > 1) the facade puts a
:class:`~repro.sharding.ShardRouter` in front of N engines; the router
drives each engine through a few dedicated seams instead of the node
inbox:

- ``attach=False`` skips the ``node.on_event`` registration (the router
  is the node's only handler and feeds shards from per-shard inboxes);
- :meth:`ReactiveEngine.handle_event` takes ``fire=False`` for events
  delivered to a *replica* of a rule hosted on several shards: the
  evaluators advance (state stays identical across replicas) but the
  answers are counted in ``EngineStats.firings_deduped`` instead of
  firing — exactly-once actions across the fleet;
- ``wakeup_via`` redirects absence-deadline registration to the router,
  which merges same-instant wake-ups across shards so firing order at a
  shared deadline follows global installation order;
- ``installer`` redirects ``INSTALL``/``UNINSTALL`` actions (Thesis 11)
  executed inside a shard back to the router, which re-partitions;
- :meth:`ReactiveEngine.sync_rules` replaces the whole rule base in one
  step (the router computes each shard's slice), preserving evaluator
  state of rules that stay put.

None of this affects a directly-constructed engine: with the default
``shards=1`` nothing changes, bit for bit.
"""

from __future__ import annotations

import bisect
import heapq
import os
from dataclasses import dataclass, field, fields

from repro.core import actions as act
from repro.core import conditions as cond
from repro.core.rules import ECARule
from repro.core.rulesets import RuleSet, compile_group_specs
from repro.deductive.base import TermBase
from repro.deductive.evaluation import forward_chain
from repro.deductive.rules import Program
from repro.errors import ActionError, RecursionRejected, RuleError
from repro.events.consumption import ConsumingEvaluator, ConsumptionPolicy
from repro.events.factory import resolve_evaluator
from repro.events.model import Event, make_event
from repro.events.queries import extract_axis_value
from repro.terms.ast import Bindings, Data, canonical_str
from repro.terms.simulation import matcher_call_count, scalar_key
from repro.updates.primitives import delete_terms, insert_child, replace_terms
from repro.updates.transactions import Transaction
from repro.web.network import authority
from repro.web.node import WebNode


@dataclass
class EngineStats:
    """Counters the benchmark experiments report.

    The dispatch-efficiency triple measures the discrimination trie:
    ``candidates_considered`` counts (rule, evaluator) pairs handed an
    event (broadcast: rules × events; discriminating: close to the rules
    that can actually match), ``index_probes`` counts dispatch-index
    probes — one for the root-label lookup plus one per trie node visited,
    so at most 1 + the trie depth per event — and ``matcher_calls`` counts
    term-matcher invocations made by the evaluators the event reached —
    the work the index failed to avoid.

    ``firings_deduped`` counts answers produced by *replica* evaluators
    of rules hosted on several shards and therefore suppressed (the
    designated shard fired them); always 0 outside sharded mode.
    ``firings_suppressed`` counts answers of combinator-group members
    outvoted by a higher-precedence member answering the same instant
    (see :mod:`repro.core.rulesets`); 0 without combinator groups.  See
    :attr:`repro.api.ReactiveNode.stats` for the full key-by-key guide.

    ``executor`` names the execution layer that produced the snapshot
    (``"inline"`` or ``"threads"``); with threads, ``epochs`` counts
    barrier round-trips and ``barrier_wait_s`` the coordinator's
    wall-clock seconds spent inside them (both 0 inline).  Keys are also
    readable dict-style — ``stats["executor"]`` — for report scripts.
    """

    events_processed: int = 0
    derived_events: int = 0
    rule_firings: int = 0
    condition_evaluations: int = 0
    actions_executed: int = 0
    updates_applied: int = 0
    events_raised: int = 0
    rollbacks: int = 0
    wakeups: int = 0
    evaluator_advances: int = 0
    candidates_considered: int = 0
    index_probes: int = 0
    matcher_calls: int = 0
    firings_deduped: int = 0
    firings_suppressed: int = 0
    # Mirrored from the node's inbox by ReactiveNode.stats (the facade is
    # the one place that sees both halves); 0 for a bare engine.
    inbox_depth: int = 0
    inbox_peak: int = 0
    # Execution-layer descriptors, stamped by the router/facade snapshot
    # (never summed like the counters above).
    executor: str = "inline"
    epochs: int = 0
    barrier_wait_s: float = 0.0
    # Mechanism switches taken by adaptive evaluators across all active
    # rules; stamped at snapshot time by the facade/router (the live
    # counters sit on the evaluators, see mechanism_report()).  0 for
    # fixed mechanisms.
    evaluator_switches: int = 0
    # Ingestion-tier mirror, stamped by ReactiveNode.stats when a gateway
    # is configured (EngineConfig.ingest); all zero otherwise.  The full
    # counter set lives on IngestStats (node.ingest_stats) — these are the
    # headline numbers reports read from one snapshot: admission outcomes
    # and enqueue-to-fire latency percentiles in simulated seconds.
    ingest_admitted: int = 0
    ingest_rejected: int = 0
    ingest_dropped: int = 0
    ingest_rate_limited: int = 0
    ingest_malformed: int = 0
    ingest_spilled: int = 0
    ingest_latency_p50: float = 0.0
    ingest_latency_p99: float = 0.0
    ingest_latency_max: float = 0.0

    def __getitem__(self, key: str):
        """Dict-style read access (``stats["executor"]``) for reports."""
        if key not in _ENGINE_STATS_FIELDS:
            raise KeyError(key)
        return getattr(self, key)


_ENGINE_STATS_FIELDS = frozenset(field_.name for field_ in fields(EngineStats))


@dataclass(frozen=True)
class EngineConfig:
    """Everything configurable about one node's engine, in one value.

    This is the single reference for every knob; pass it as
    ``sim.reactive_node(uri, config=EngineConfig(...))`` or directly to
    :class:`ReactiveEngine`.

    **Semantics**

    - ``consumption`` — event instance consumption policy applied to every
      rule's evaluator: ``"unrestricted"`` (default), ``"chronicle"``, or
      ``"recent"`` (see :mod:`repro.events.consumption`).
    - ``evaluator`` — the event-query evaluation mechanism built for each
      rule: ``"incremental"`` (default; prefix extension), ``"tree"``
      (join trees with frequency-ordered plans, re-planned from the
      node's observed per-label event rates on every
      :meth:`ReactiveEngine.refresh`), or ``"naive"`` (full
      re-evaluation, the Thesis 6 baseline).  Also accepts a custom
      :class:`~repro.events.factory.EvaluatorFactory` or a bare
      ``(query, rates) -> evaluator`` callable; all mechanisms produce
      identical answers in identical order (property-tested), so the
      knob only moves cost.  The engine, the shard router, and the
      facade all build evaluators through this one seam.  A fourth
      mechanism, ``"adaptive"``, starts incremental and lets a per-rule
      governor switch incremental↔tree at runtime from observed traffic
      with lossless state migration (see :mod:`repro.events.governor`;
      tune its knobs with :func:`repro.events.governor.adaptive`).
    - ``rate_halflife`` — EWMA half-life (simulated seconds) applied to
      the engine's per-label observed event rates, the signal rate-aware
      evaluators seed and re-plan their joins from on
      :meth:`ReactiveEngine.refresh`.  ``None`` (default) keeps the
      original cumulative counters — bit-for-bit the old behaviour,
      where a skew reversal never re-orders an existing plan because
      history outweighs any drift.  With a half-life, rates decay in
      simulated time, so ``plan()`` orders follow the *recent* skew.
    - ``event_views`` — a non-recursive deductive :class:`Program`
      deriving further event terms from each incoming event (Thesis 9);
      rules can subscribe to the derived labels.

    **Dispatch pipeline** (all modes are observationally equivalent; only
    the candidate counts in :class:`EngineStats` change)

    - ``indexed_dispatch`` — route events to rules through the label index
      (the default).  ``False`` restores the broadcast baseline where every
      event visits every rule's evaluator; kept as an ablation switch for
      the dispatch-scaling experiment (E13).
    - ``discriminating_index`` — within one root label's bucket, sub-index
      rules by their constant discriminators (attribute values or
      constant-scalar children) in a recursive discrimination trie, so
      high-fanout labels stop broadcasting to their whole bucket (the
      default).  ``False`` stops the net at the root label — the E15
      ablation, i.e. pre-discrimination behaviour.  Only meaningful with
      ``indexed_dispatch=True``.
    - ``trie_depth`` — cap on how many axis levels the discrimination
      trie may split below each root label.  ``None`` (default) splits
      until rules run out of discriminators; ``1`` reproduces the old
      two-level net (one shared axis per label bucket) — the E22
      ablation.  Only meaningful with ``discriminating_index=True``.

    **Delivery and scheduling**

    - ``sync_delivery`` — ``True`` dispatches events inline on the
      sender's stack instead of through the node's queued inbox (see the
      delivery model in :mod:`repro.web.node`; the ablation switch for the
      async inbox experiment E14), ``False`` forces queued delivery, and
      ``None`` (default) leaves the node's setting alone (a fresh node
      queues).
    - ``inbox_batch`` — cap on events one inbox drain processes before
      re-yielding to the scheduler (``None`` = leave the node's setting
      alone; a fresh node drains its whole backlog at once).  With
      ``shards > 1`` the same value caps how many events each *shard*
      consumes per router drain — the fairness knob that stops one
      backlogged shard from starving the others.
    - ``coalesced_wakeups`` — at an absence-deadline wake-up, advance only
      the evaluators that own a deadline at that instant (the default).
      ``False`` restores the broadcast baseline where every active rule's
      evaluator is advanced at every wake-up; the E14 ablation switch.

    **Scale-out**

    - ``shards`` — number of engine shards behind one
      :class:`~repro.api.ReactiveNode` (default 1: a single engine, the
      exact pre-sharding code path).  With N > 1 the facade builds a
      :class:`~repro.sharding.ShardRouter` that partitions installed rules
      across N engines by root label (splitting one hot label along its
      discriminator-attribute axis), gives each shard its own FIFO inbox,
      and drains them from the scheduler in global arrival order —
      answers and firing order are identical to ``shards=1`` (the E16
      experiment; property-tested).  One caveat, mirroring the
      sync-delivery note above: with ``sync_delivery=True`` a mid-action
      ``raise_local`` that finds replica copies still queued defers like
      a backlog, so intra-instant firing interleaving can differ from
      ``shards=1`` (answers and firing counts still agree).  Only the
      facade interprets this field: a bare :class:`ReactiveEngine`
      rejects N > 1.
    - ``executor`` — how the shard fleet is driven: ``"inline"`` (default)
      merge-drains every shard on the scheduler thread, bit-for-bit the
      pre-threading path; ``"threads"`` gives each shard a pinned worker
      thread (:mod:`repro.runtime`): a drain snapshots the per-shard
      inbox segments for the instant, the workers advance their
      evaluators in parallel collecting would-be firings, and a barrier
      joins them before the answers fire serially in global (arrival,
      installation) order — answers and firing order match ``"inline"``
      (property-tested, E17).  Two scoping rules: the knob only engages
      on a sharded node (``shards=1`` has no fleet to drive), and
      ``sync_delivery=True`` falls back to the inline executor (a nested
      sync hand-off runs on the raising stack by definition).  One
      threaded-mode caveat: a rule installed *by a fired action* joins
      from the next event onward — events that shared the installing
      event's epoch were already matched when the action ran (the inline
      executor lets the tail of the same drain reach the new rule).
      The environment variable ``REPRO_DEFAULT_EXECUTOR`` overrides the
      default — the CI matrix leg that re-runs tier-1 threaded sets it.

    **Ingestion**

    - ``ingest`` — an :class:`~repro.ingest.admission.IngestConfig` puts
      the ingestion tier's admission controller in front of the node
      inbox: high-water backpressure with an overflow policy (``reject``
      / ``drop-oldest`` / ``spill``), per-sender token-bucket rate
      limiting, weighted-fair service, and enqueue-to-fire latency
      accounting (see :mod:`repro.ingest`).  The facade exposes the
      gateway as :attr:`~repro.api.ReactiveNode.ingest` and mirrors its
      headline counters into :attr:`~repro.api.ReactiveNode.stats`.
      ``None`` (default) builds no gateway at all — events reach the
      inbox exactly as before; the E18 ablation.  Only the facade
      interprets this field, like ``shards``.

    **Persistence**

    - ``store`` — a :class:`~repro.store.StoreConfig` makes the node's
      resource store durable: committed outermost transactions are
      persisted (``backend="wal"``: one CRC-framed group-commit record
      and one fsync per transaction, with periodic snapshot compaction;
      ``backend="sqlite"``: the same shape inside one database file) and
      reopening a node on the same path recovers the committed state,
      per-URI version floors included (see :mod:`repro.store`).  ``None``
      or ``backend="memory"`` (the defaults) keep the plain in-memory
      store — bit-for-bit the pre-persistence path.  Only the facade
      interprets this field: it opens the store and swaps it in as
      ``node.resources`` before the engine (or shard fleet) attaches, so
      every layer — engine actions, polling, identity monitors, all
      shards — shares the one durable store.
    """

    consumption: str = "unrestricted"
    event_views: "Program | None" = None
    indexed_dispatch: bool = True
    discriminating_index: bool = True
    trie_depth: "int | None" = None
    sync_delivery: bool | None = None
    inbox_batch: int | None = None
    coalesced_wakeups: bool = True
    shards: int = 1
    executor: str = field(
        default_factory=lambda: os.environ.get("REPRO_DEFAULT_EXECUTOR", "inline")
    )
    ingest: "object | None" = None  # IngestConfig; typed loosely to keep
    # the core layer free of an import from repro.ingest (which imports web)
    store: "object | None" = None  # StoreConfig; same deferred-import
    # discipline as ingest — core stays free of an import from repro.store
    evaluator: "str | object" = "incremental"
    rate_halflife: "float | None" = None

    def __post_init__(self) -> None:
        # Fail at construction, not at first install; ConsumptionPolicy is
        # the single source of truth for valid policy names.
        ConsumptionPolicy(self.consumption)
        resolve_evaluator(self.evaluator)
        if self.rate_halflife is not None and not self.rate_halflife > 0:
            raise RuleError(
                f"rate_halflife must be > 0, got {self.rate_halflife}")
        if self.trie_depth is not None and self.trie_depth < 1:
            raise RuleError(f"trie_depth must be >= 1, got {self.trie_depth}")
        if self.inbox_batch is not None and self.inbox_batch < 1:
            raise RuleError(f"inbox_batch must be >= 1, got {self.inbox_batch}")
        if self.shards < 1:
            raise RuleError(f"shards must be >= 1, got {self.shards}")
        if self.executor not in ("inline", "threads"):
            raise RuleError(
                f"unknown executor {self.executor!r} "
                "(expected 'inline' or 'threads')"
            )
        if self.ingest is not None:
            # Deferred import: repro.ingest sits above the web layer and
            # must stay un-imported by core unless the knob is used.
            from repro.ingest.admission import IngestConfig

            if not isinstance(self.ingest, IngestConfig):
                raise RuleError(
                    f"ingest must be an IngestConfig, got {self.ingest!r}"
                )
        if self.store is not None:
            from repro.store import StoreConfig

            if not isinstance(self.store, StoreConfig):
                raise RuleError(
                    f"store must be a StoreConfig, got {self.store!r}"
                )


@dataclass(frozen=True)
class Procedure:
    """A named, parameterised action (Thesis 9 procedural abstraction)."""

    name: str
    params: tuple[str, ...]
    action: object


def derive_events(program: "Program | None", event: Event,
                  source_uri: str) -> list[Event]:
    """Expand one event through a deductive event-view program (Thesis 9).

    Shared by the single engine and the shard router: on a sharded node
    derivation must happen *before* routing (a derived event's label may
    live on a different shard than the triggering event's), so the router
    calls this once per incoming event and routes every derived event like
    a fresh arrival.
    """
    if program is None:
        return []
    base = TermBase([event.term])
    closed = forward_chain(program, base)
    out = []
    for fact in closed:
        if canonical_str(fact) == canonical_str(event.term):
            continue
        out.append(make_event(fact, event.time, source=source_uri,
                              occurrence=event.occurrence))
    return out


def _row_seq(row):
    """Sort key of one trie row: its installation sequence."""
    return row[0]


class _TrieNode:
    """One node of a root label's discrimination trie.

    A node is either a **leaf** (``axis is None``) holding seq-sorted rows
    ``(seq, rule, evaluator, remaining_discriminators)``, or **internal**:
    ``axis`` names the ``(kind, key)`` pair it discriminates on,
    ``children`` maps each constant on that axis to the subtrie of rows
    requiring it (the routing discriminator consumed), and ``residual``
    holds the subtrie of rows with no discriminator on the axis.  A leaf
    *splits* when some row still carries an unconsumed discriminator (and
    the depth cap allows), picking the most selective axis exactly like
    the old two-level net did: most constraining rows, ties broken by
    distinct-value count then axis name.

    All edits are in-place and O(path): ``insert`` descends by the row's
    discriminators (splitting only the touched leaf), ``remove`` prunes
    the same path and collapses emptied nodes (splicing a lone residual
    up).  Dispatch (``collect``) therefore copies what it returns —
    callers never hold references into live node state.  ``_subtree``
    caches the seq-sorted rows of a whole subtree for ambiguous events;
    any edit below a node invalidates the caches along its path.
    """

    __slots__ = ("axis", "children", "residual", "entries", "_subtree")

    def __init__(self) -> None:
        self.axis: "tuple[str, str] | None" = None
        self.children: "dict | None" = None  # value -> _TrieNode
        self.residual: "_TrieNode | None" = None
        self.entries: list = []  # leaf rows, seq-sorted
        self._subtree: "list | None" = None

    def _route(self, discs: frozenset):
        """The discriminator this node's axis consumes from *discs*.

        Deterministic when a row carries several constants on one axis
        (canonically smallest wins), so remove retraces insert's path.
        """
        on_axis = [d for d in discs if (d.kind, d.key) == self.axis]
        if not on_axis:
            return None
        return min(on_axis, key=lambda d: canonical_str(d.value))

    def insert(self, row, depth: int, max_depth: "int | None") -> None:
        """Insert one row, splitting the reached leaf if it discriminates."""
        self._subtree = None
        if self.axis is None:
            bisect.insort(self.entries, row, key=_row_seq)
            if max_depth is None or depth < max_depth:
                self._maybe_split(depth, max_depth)
            return
        seq, rule, evaluator, discs = row
        routed = self._route(discs)
        if routed is None:
            if self.residual is None:
                self.residual = _TrieNode()
            self.residual.insert(row, depth + 1, max_depth)
        else:
            child = self.children.get(routed.value)
            if child is None:
                child = self.children[routed.value] = _TrieNode()
            child.insert((seq, rule, evaluator, discs - {routed}),
                         depth + 1, max_depth)

    def _maybe_split(self, depth: int, max_depth: "int | None") -> None:
        """Split this leaf on its most selective remaining axis, if any.

        Even a single-row leaf splits (matching the old net, where a
        lone discriminating rule still got a value sub-index): the value
        child lets dispatch skip the rule entirely on other constants.
        """
        values_per_axis: dict[tuple[str, str], set] = {}
        for _seq, _rule, _evaluator, discs in self.entries:
            for disc in discs:
                values_per_axis.setdefault(disc.axis, set()).add(
                    scalar_key(disc.value)
                )
        if not values_per_axis:
            return
        counts = {
            axis: sum(
                1 for _s, _r, _e, discs in self.entries
                if any(d.axis == axis for d in discs)
            )
            for axis in values_per_axis
        }
        axis = max(counts, key=lambda a: (counts[a], len(values_per_axis[a]), a))
        rows, self.entries = self.entries, []
        self.axis = axis
        self.children = {}
        for row in rows:
            self.insert(row, depth, max_depth)

    def remove(self, row) -> bool:
        """Remove the row (matched by seq), collapsing emptied nodes.

        Retraces the insert path by the row's discriminators; returns
        whether the row was found.  A node whose children all empty out
        splices its residual into its own place (or reverts to an empty
        leaf), so the trie never accumulates dead interior nodes.
        """
        self._subtree = None
        if self.axis is None:
            for i, existing in enumerate(self.entries):
                if existing[0] == row[0]:
                    del self.entries[i]
                    return True
            return False
        seq, rule, evaluator, discs = row
        routed = self._route(discs)
        if routed is None:
            if self.residual is None:
                return False
            found = self.residual.remove(row)
            if found and self.residual.is_empty():
                self.residual = None
        else:
            child = self.children.get(routed.value)
            if child is None:
                return False
            found = child.remove((seq, rule, evaluator, discs - {routed}))
            if found and child.is_empty():
                del self.children[routed.value]
        if found and not self.children:
            spliced = self.residual
            if spliced is None:
                self.axis = None
                self.children = None
                self.entries = []
            else:
                self.axis = spliced.axis
                self.children = spliced.children
                self.residual = spliced.residual
                self.entries = spliced.entries
        return found

    def is_empty(self) -> bool:
        return self.axis is None and not self.entries

    def subtree_rows(self) -> list:
        """All rows below this node, seq-sorted (cached until edited)."""
        if self.axis is None:
            return self.entries
        if self._subtree is None:
            lists = [child.subtree_rows() for child in self.children.values()]
            if self.residual is not None:
                lists.append(self.residual.subtree_rows())
            self._subtree = sorted(
                (row for rows in lists for row in rows), key=_row_seq
            )
        return self._subtree

    def collect(self, term: Data, stats: EngineStats, out: list) -> None:
        """Append the seq-sorted row lists *term* can affect to *out*.

        Iterative descent: at each internal node extract the event's
        constant on the node's axis once, then follow the matching value
        child plus the residual.  Ambiguity takes the whole subtree
        instead (the residual is already inside it).
        """
        stack = [self]
        while stack:
            node = stack.pop()
            if node.axis is None:
                if node.entries:
                    out.append(node.entries)
                continue
            stats.index_probes += 1
            value, ambiguous = extract_axis_value(term, *node.axis)
            if ambiguous:
                rows = node.subtree_rows()
                if rows:
                    out.append(rows)
                continue
            if node.residual is not None:
                stack.append(node.residual)
            if value is not None:
                child = node.children.get(value)
                if child is not None:
                    stack.append(child)


class ReactiveEngine:
    """Rule evaluation and action execution for one node."""

    def __init__(self, node: WebNode, event_views: "Program | None" = None,
                 consumption: str = "unrestricted",
                 config: "EngineConfig | None" = None, *,
                 attach: bool = True) -> None:
        if config is None:
            config = EngineConfig(consumption=consumption, event_views=event_views)
        elif event_views is not None or consumption != "unrestricted":
            raise RuleError(
                "pass consumption/event_views through EngineConfig when "
                "config= is given (mixing both is ambiguous)"
            )
        if config.shards != 1:
            raise RuleError(
                f"a bare ReactiveEngine is exactly one shard; shards="
                f"{config.shards} is interpreted by the ReactiveNode facade "
                "(sim.reactive_node(uri, config=...)), which puts a "
                "ShardRouter in front of the engines"
            )
        if config.event_views is not None and config.event_views.is_recursive():
            raise RecursionRejected(
                "event-level deductive views must be non-recursive (Thesis 9)"
            )
        self.node = node
        self.config = config
        self.stats = EngineStats()
        self.consumption = config.consumption
        self._factory = resolve_evaluator(config.evaluator)
        # Observed events per root label (derived events included): the
        # rate signal rate-aware evaluators seed their join plans from.
        # Cumulative counters by default; with config.rate_halflife set
        # they become EWMA masses decayed in simulated time (stamps
        # below), so recent skew outweighs history.
        self._label_rates: dict[str, float] = {}
        self._rate_halflife = config.rate_halflife
        self._label_stamps: dict[str, float] = {}
        self._event_views = config.event_views
        self._indexed = config.indexed_dispatch
        self._discriminating = config.discriminating_index
        # Depth cap handed to trie inserts: the root-label-only ablation
        # (discriminating_index=False) is "never split", i.e. depth 0.
        self._split_depth = config.trie_depth if config.discriminating_index else 0
        self._coalesced = config.coalesced_wakeups
        # Only settings the config actually specifies reach the node;
        # node-level delivery choices survive an engine with defaults.
        if config.sync_delivery is not None:
            node.configure_delivery(sync_delivery=config.sync_delivery)
        if config.inbox_batch is not None:
            node.configure_delivery(inbox_batch=config.inbox_batch)
        self._rulesets: list[RuleSet] = []
        self._single_rules: dict[str, ECARule] = {}
        self._active: dict[str, tuple[ECARule, object]] = {}
        # The discrimination trie (maintained incrementally, rebuilt
        # wholesale only by refresh): root label of an incoming event ->
        # _TrieNode over the (seq, rule, evaluator, discriminators) rows
        # whose queries can be affected by it.  Wildcard rules live in the
        # seq-sorted _wildcard_rows side list, merged in at dispatch (so a
        # wildcard install is O(log n), not O(labels)); _wildcard is its
        # (rule, evaluator) projection for label-less events.
        self._index: dict[str, _TrieNode] = {}
        self._wildcard_rows: list = []
        self._wildcard: list[tuple[ECARule, object]] = []
        # Installation sequences are tuples — singles (0, i), rule-set
        # rules (1, set_index, member_index) — so incrementally installed
        # singles keep firing before all rule-set rules, exactly the order
        # a full refresh would assign.  _next_single continues the single
        # counter between refreshes.
        self._next_single = 0
        # Seq-sorted [(rule, evaluator)] snapshot of the active table,
        # rebuilt lazily (broadcast dispatch and non-coalesced wake-ups
        # need it; _active's dict order lags behind seq order once
        # installs go incremental).
        self._entry_cache: "list[tuple[ECARule, object]] | None" = None
        # Combinator-group dispatch specs: qualified rule name ->
        # (group_path, kind, precedence), compiled from the installed rule
        # sets (see repro.core.rulesets.compile_group_specs); the shard
        # router overrides this with the node-wide table after sync_rules.
        self._groups: dict[str, tuple[str, str, float]] = {}
        # Wake-up group deferral: _on_time (and the shard router, across
        # shards) plants a list here so grouped answers produced by
        # advance_evaluator are resolved once per instant instead of
        # firing as they appear.  None = resolve/fire immediately.
        self._group_buffer: "list | None" = None
        self._procedures: dict[str, Procedure] = {}
        # Evaluators whose deadlines may have moved since the last wake-up
        # scheduling pass: only these need a next_deadline() probe, keeping
        # per-event scheduling work proportional to the rules dispatched
        # to, not to the total rule count.
        self._touched: set[object] = set()
        # deadline instant -> evaluators owning an absence window that may
        # expire then.  One scheduler callback per distinct instant; at the
        # wake-up only the owners are advanced (coalesced mode), so idle
        # rules pay nothing for other rules' deadlines.
        self._deadline_owners: dict[float, set[object]] = {}
        # evaluator -> (installation sequence tuple, rule name, rule);
        # maintained incrementally (rebuilt in refresh).  Lets _on_time
        # order and advance just the owners without scanning the whole
        # active table, drops stale (uninstalled) owners, and gives the
        # shard router the name it keys global installation order by.
        self._eval_entry: dict[object, tuple[tuple, str, ECARule]] = {}
        self._web_views: dict[str, object] = {}  # uri -> BackwardEvaluator
        # Sharding seams (see the module docstring): the router replaces
        # `wakeup_via` to merge deadlines across shards and `installer` to
        # route INSTALL/UNINSTALL actions through re-partitioning.  Both
        # default to plain single-engine behaviour.
        self.wakeup_via = None  # callable(deadline) | None
        self.installer = self
        # Threaded-executor seam: when a worker thread drives this shard it
        # plants a list here and answers are *collected* as
        # (qualified_name, rule, bindings) instead of fired, and wake-up
        # scheduling is deferred — the router fires the merged answers and
        # schedules wake-ups at the barrier, on the scheduler thread (see
        # repro.runtime).  None = fire inline.
        self.collector = None  # list[(str, ECARule, Bindings)] | None
        if attach:
            node.on_event(self.handle_event)

    # -- rule management ------------------------------------------------------

    def install(self, item: "ECARule | RuleSet") -> None:
        """Install a rule or a whole rule set."""
        self.install_all((item,))

    def install_all(self, items, procedures=()) -> None:
        """Install many rules / rule sets (and procedures) in one batch.

        Atomic: if any item is rejected (bad type, duplicate rule or
        procedure name — even one only detected while rebuilding the
        active table), the rule base is restored to its previous state
        before the error propagates and no procedure is defined.

        A batch of plain rules takes the *incremental* path — each rule is
        admitted with an O(trie depth) dispatch edit and no full rebuild,
        the property that keeps per-install latency flat at 100k installed
        rules (E22).  Batches containing rule sets still rebuild through
        :meth:`refresh` (set membership and combinator-group compilation
        are whole-base properties).  One deliberate scope note: the
        incremental path does not re-plan surviving evaluators' join
        orders from current rates the way a full refresh does — plans
        catch up on the next refresh (the router's re-partitioning still
        refreshes every shard).  *procedures* holds ``(name, params,
        action)`` triples, as produced by
        :func:`repro.lang.parser.parse_program`.
        """
        procedures = tuple(procedures)
        pending: set[str] = set()
        for name, _params, _action in procedures:
            if name in self._procedures or name in pending:
                raise RuleError(f"procedure {name!r} already defined")
            pending.add(name)
        items = tuple(items)
        if all(isinstance(item, ECARule) for item in items):
            self._install_rules_incremental(items)
        else:
            saved_rules = dict(self._single_rules)
            saved_sets = list(self._rulesets)
            try:
                for item in items:
                    self._admit(item)
                self.refresh()
            except Exception:
                self._single_rules = saved_rules
                self._rulesets = saved_sets
                self.refresh()
                raise
        for name, params, action in procedures:
            self.define_procedure(name, tuple(params), action)

    def _install_rules_incremental(self, batch: tuple) -> None:
        """Admit a batch of plain rules without rebuilding the index.

        Order of operations makes atomicity free: all duplicate checks
        and all evaluator construction (the only part that can fail)
        happen before the first mutation.
        """
        seen: set[str] = set()
        for rule in batch:
            if rule.name in self._single_rules or rule.name in seen:
                raise RuleError(f"rule {rule.name!r} already installed")
            if rule.name in self._active:
                # Collides with an active qualified rule-set name — the
                # same rejection a full refresh would raise.
                raise RuleError(f"duplicate rule name {rule.name!r}")
            seen.add(rule.name)
        rates = self.label_rates()
        built = []
        for rule in batch:
            evaluator: object = self._factory.build(rule.event, rates)
            if self.consumption != "unrestricted":
                evaluator = ConsumingEvaluator(evaluator, self.consumption)
            built.append((rule, evaluator))
        for rule, evaluator in built:
            seq = (0, self._next_single)
            self._next_single += 1
            self._single_rules[rule.name] = rule
            self._active[rule.name] = (rule, evaluator)
            self._eval_entry[evaluator] = (seq, rule.name, rule)
            self._insert_dispatch(seq, rule, evaluator)
        self._entry_cache = None

    def _admit(self, item: "ECARule | RuleSet") -> None:
        if isinstance(item, RuleSet):
            self._rulesets.append(item)
        elif isinstance(item, ECARule):
            if item.name in self._single_rules:
                raise RuleError(f"rule {item.name!r} already installed")
            self._single_rules[item.name] = item
        else:
            raise RuleError(f"cannot install {item!r}")

    def uninstall(self, item: "str | ECARule | RuleSet") -> None:
        """Remove an installed rule or rule set, by object or by name.

        A string uninstalls the single rule of that name, or — if no such
        rule exists — the installed rule set of that name.  A plain rule
        is pruned from the dispatch trie *eagerly* (O(trie depth), its
        pending absence deadlines dropped with it — an uninstalled rule
        must neither see another event nor wake the engine); removing a
        rule set rebuilds through :meth:`refresh`.
        """
        if isinstance(item, RuleSet):
            if not any(existing is item for existing in self._rulesets):
                raise RuleError(
                    f"rule set {item.name!r} is not installed ({self._installed()})"
                )
            self._rulesets = [rs for rs in self._rulesets if rs is not item]
        elif isinstance(item, ECARule):
            # Structural equality, not identity: rules round-tripped through
            # the meta wire format or re-parsed from text compare equal.
            if self._single_rules.get(item.name) != item:
                raise RuleError(
                    f"rule {item.name!r} is not installed ({self._installed()})"
                )
            self._uninstall_single(item.name)
            return
        elif isinstance(item, str):
            if item in self._single_rules:
                self._uninstall_single(item)
                return
            named = [rs for rs in self._rulesets if rs.name == item]
            if not named:
                raise RuleError(
                    f"no installed rule or rule set {item!r} ({self._installed()})"
                )
            self._rulesets.remove(named[0])
        else:
            raise RuleError(f"cannot uninstall {item!r}")
        self.refresh()

    def _uninstall_single(self, name: str) -> None:
        """Eagerly prune one plain rule from every dispatch structure."""
        rule = self._single_rules.pop(name)
        _rule, evaluator = self._active.pop(name)
        seq, _name, _r = self._eval_entry.pop(evaluator)
        interest = evaluator.interest()
        if interest.by_label is None:
            self._wildcard_rows = [
                row for row in self._wildcard_rows if row[0] != seq
            ]
            self._wildcard = [
                (r, e) for _s, r, e, _d in self._wildcard_rows
            ]
        else:
            for label, discriminators in interest.by_label:
                root = self._index.get(label)
                if root is None:
                    continue
                root.remove((seq, rule, evaluator, discriminators))
                if root.is_empty():
                    del self._index[label]
        self._touched.discard(evaluator)
        # Deadlines this evaluator owned die with it.  The owner sets are
        # emptied but the instants' entries stay (their clock callbacks
        # are already scheduled; keeping the entry stops a later deadline
        # at the same instant from scheduling a duplicate callback) —
        # _on_time skips an all-pruned instant without counting a wakeup.
        for owners in self._deadline_owners.values():
            owners.discard(evaluator)
        self._entry_cache = None

    def _installed(self) -> str:
        rules = ", ".join(sorted(self._single_rules)) or "none"
        sets = ", ".join(ruleset.name for ruleset in self._rulesets) or "none"
        return f"installed rules: {rules}; installed rule sets: {sets}"

    def refresh(self) -> None:
        """Rebuild the active rule table and the dispatch trie wholesale.

        Evaluators of rules that stay installed keep their partial-match
        state; new rules start fresh.  Sequences are renumbered — singles
        first in admission order, then rule-set rules in set order — and
        the trie is rebuilt through the same insert machinery incremental
        installs use, so a refreshed base and an incrementally grown one
        dispatch identically.  Combinator-group specs are recompiled here
        (groups live in rule sets, which only change through this path).
        """
        wanted: dict[str, ECARule] = {}
        order: dict[str, tuple] = {}
        for i, (name, rule) in enumerate(self._single_rules.items()):
            wanted[name] = rule
            order[name] = (0, i)
        for j, ruleset in enumerate(self._rulesets):
            for k, (qualified_name, rule, _owner) in enumerate(ruleset.qualified()):
                if qualified_name in wanted:
                    raise RuleError(f"duplicate rule name {qualified_name!r}")
                wanted[qualified_name] = rule
                order[qualified_name] = (1, j, k)
        active: dict[str, tuple[ECARule, object]] = {}
        rates = self.label_rates()
        for name, rule in wanted.items():
            current = self._active.get(name)
            if current is not None and current[0] is rule:
                active[name] = current
                # Surviving evaluators keep their state but get a chance to
                # reorder their join plans from the rates seen so far (a
                # no-op for mechanisms without a plan).
                replan = getattr(current[1], "replan", None)
                if replan is not None:
                    replan(rates)
            else:
                evaluator: object = self._factory.build(rule.event, rates)
                if self.consumption != "unrestricted":
                    evaluator = ConsumingEvaluator(evaluator, self.consumption)
                active[name] = (rule, evaluator)
        self._active = active
        self._next_single = len(self._single_rules)
        live = {evaluator for _rule, evaluator in active.values()}
        self._touched.intersection_update(live)
        # Deadlines owned by dropped evaluators die with them (see
        # _uninstall_single for why emptied instants keep their entries).
        for owners in self._deadline_owners.values():
            owners.intersection_update(live)
        self._index = {}
        self._wildcard_rows = []
        self._wildcard = []
        self._eval_entry = {}
        self._entry_cache = None
        for name, (rule, evaluator) in active.items():
            self._eval_entry[evaluator] = (order[name], name, rule)
            self._insert_dispatch(order[name], rule, evaluator)
        self._groups = compile_group_specs(self._rulesets)

    def _insert_dispatch(self, seq: tuple, rule: ECARule, evaluator) -> None:
        """Insert one rule's rows into the dispatch structures, O(depth)."""
        interest = evaluator.interest()
        if interest.by_label is None:
            bisect.insort(self._wildcard_rows,
                          (seq, rule, evaluator, frozenset()), key=_row_seq)
            self._wildcard = [(r, e) for _s, r, e, _d in self._wildcard_rows]
            return
        for label, discriminators in interest.by_label:
            root = self._index.get(label)
            if root is None:
                root = self._index[label] = _TrieNode()
            root.insert((seq, rule, evaluator, discriminators), 0,
                        self._split_depth)

    def _ordered_entries(self) -> list[tuple[ECARule, object]]:
        """The active (rule, evaluator) pairs in installation-seq order."""
        if self._entry_cache is None:
            ordered = sorted(self._eval_entry.items(),
                             key=lambda kv: kv[1][0])
            self._entry_cache = [(entry[2], evaluator)
                                 for evaluator, entry in ordered]
        return self._entry_cache

    def rules(self) -> list[str]:
        """Names of the currently active rules, in installation order."""
        return [entry[1] for entry in
                sorted(self._eval_entry.values(), key=lambda e: e[0])]

    def _observe_label(self, label: str, now: float) -> None:
        """Count one observed event into the per-label rate signal.

        Cumulative (the original behaviour) unless the config sets
        ``rate_halflife``, in which case the stored mass decays by the
        simulated time elapsed since the label's last event.
        """
        rates = self._label_rates
        if self._rate_halflife is None:
            rates[label] = rates.get(label, 0.0) + 1.0
            return
        mass = rates.get(label, 0.0)
        stamp = self._label_stamps.get(label, now)
        if now > stamp:
            mass *= 0.5 ** ((now - stamp) / self._rate_halflife)
            stamp = now
        rates[label] = mass + 1.0
        self._label_stamps[label] = stamp

    def label_rates(self) -> dict[str, float]:
        """The per-label rate signal as evaluators should see it *now*.

        With ``rate_halflife`` unset this is the live cumulative dict
        (identity-preserved: bit-for-bit the pre-decay path); with a
        half-life every mass is decayed to the node's current simulated
        time, so quiet labels fade and recent skew dominates.
        """
        if self._rate_halflife is None:
            return self._label_rates
        now = self.node.now
        out = {}
        for label, mass in self._label_rates.items():
            stamp = self._label_stamps.get(label, now)
            if now > stamp:
                mass *= 0.5 ** ((now - stamp) / self._rate_halflife)
            out[label] = mass
        return out

    def mechanism_report(self) -> dict[str, dict]:
        """Per-rule evaluation-mechanism snapshot, by rule name.

        Each row carries ``mechanism`` (what currently evaluates the
        query), ``switches`` (mechanism switches taken; 0 for fixed
        mechanisms), and ``pinned`` (``True``/``False`` for adaptive
        evaluators, ``None`` otherwise).
        """
        report = {}
        for name, (_rule, evaluator) in self._active.items():
            report[name] = {
                "mechanism": getattr(evaluator, "mechanism",
                                     type(evaluator).__name__),
                "switches": getattr(evaluator, "switches", 0),
                "pinned": getattr(evaluator, "pinned", None),
            }
        return report

    def evaluator_switches(self) -> int:
        """Total mechanism switches across all active evaluators."""
        return sum(getattr(evaluator, "switches", 0)
                   for _rule, evaluator in self._active.values())

    def sync_rules(self, named_rules) -> None:
        """Replace the whole rule base with *named_rules* in one step.

        *named_rules* is an ordered iterable of ``(name, rule)`` pairs —
        the shard router's hook for re-partitioning: it computes each
        shard's slice (qualified rule-set names included) and pushes it
        here wholesale.  Evaluators of rules that stay installed keep
        their partial-match state (:meth:`refresh` matches them by rule
        object identity); the installation order of the pairs becomes the
        shard's firing order, so the router hands every shard its slice in
        *global* installation order.
        """
        self._single_rules = dict(named_rules)
        self._rulesets = []
        self.refresh()

    def define_procedure(self, name: str, params: tuple[str, ...], action) -> None:
        """Register a named action procedure (Thesis 9)."""
        if name in self._procedures:
            raise RuleError(f"procedure {name!r} already defined")
        self._procedures[name] = Procedure(name, tuple(params), action)

    def define_web_views(self, uri: str, program: Program) -> None:
        """Attach deductive views to a local resource (Thesis 9).

        Conditions querying *uri* then see the resource's child terms plus
        every fact the view rules derive from them — like querying a
        database view.  Views may be recursive (they run over persistent
        data, not per event) and are re-materialised lazily after the
        resource changes.
        """
        from repro.deductive.evaluation import BackwardEvaluator

        resource_uri = uri

        class _ViewState:
            def __init__(self, node) -> None:
                self.node = node
                self.evaluator: BackwardEvaluator | None = None

            def refresh(self) -> BackwardEvaluator:
                if self.evaluator is None:
                    root = self.node.resources.get(resource_uri)
                    base = TermBase.from_document(root)
                    self.evaluator = BackwardEvaluator(program, base)
                return self.evaluator

            def invalidate(self, changed_uri, old, new, version) -> None:
                if changed_uri == resource_uri:
                    self.evaluator = None

        state = _ViewState(self.node)
        # immediate=True: the view cache must track *uncommitted* state too
        # (conditions inside an atomic sequence query through it), and must
        # be invalidated again when a rollback restores earlier content —
        # transactional (buffered) delivery would leave it stale both ways.
        self.node.resources.watch(state.invalidate, immediate=True)
        self._web_views[uri] = state

    # -- event handling ----------------------------------------------------------

    def handle_event(self, event: Event, fire: bool = True,
                     exclude: frozenset = frozenset(),
                     fire_for: "frozenset | None" = None) -> None:
        """Node inbox entry point.

        ``fire=False`` is the shard router's replica mode: evaluators
        advance exactly as usual (replica state must track the designated
        shard's state), but answers are suppressed and counted in
        ``stats.firings_deduped`` instead of executing actions — the
        designated shard fires them exactly once.  ``fire_for`` is the
        per-rule refinement for *ambiguous* events the router delivered to
        every shard of a label: only the named rules fire here (the rules
        whose designated shard this is), the rest dedup — so one event
        copy can fire shard-local rules and advance replicas at once.
        ``exclude`` names rules the event must stay invisible to: rules
        installed *while* the event was mid-flight across shards (the
        single engine's dispatch snapshot hides an in-progress event from
        rules it installs; the router reproduces that by tagging the
        event's remaining copies).
        """
        self.stats.events_processed += 1
        self._dispatch(event, fire, exclude, fire_for)
        for derived in self._derive_events(event):
            self.stats.derived_events += 1
            self._dispatch(derived, fire, exclude, fire_for)
        if self.collector is None:
            self._schedule_wakeups()
        # Collect mode: _touched accumulates; the router runs
        # _schedule_wakeups at the barrier, on the scheduler thread.

    def _derive_events(self, event: Event) -> list[Event]:
        return derive_events(self._event_views, event, self.node.uri)

    def _dispatch(self, event: Event, fire: bool = True,
                  exclude: frozenset = frozenset(),
                  fire_for: "frozenset | None" = None) -> None:
        stats = self.stats
        label = event.term.label
        self._observe_label(label, event.time)
        entries = self._interested(event)
        if exclude:
            entries = [(rule, evaluator) for rule, evaluator in entries
                       if self._eval_entry[evaluator][1] not in exclude]
        stats.candidates_considered += len(entries)
        groups = self._groups
        deferred: "list | None" = None
        for rule, evaluator in entries:
            self._touched.add(evaluator)
            before = matcher_call_count()
            answers = evaluator.on_event(event)
            stats.matcher_calls += matcher_call_count() - before
            if rule.firing == "first" and len(answers) > 1:
                answers = answers[:1]
            if not answers:
                continue
            name = self._eval_entry[evaluator][1]
            if not (fire if fire_for is None else name in fire_for):
                # Replica mode dedups *before* group resolution: the
                # rule's designated shard is the one that arbitrates.
                stats.firings_deduped += len(answers)
                continue
            spec = groups.get(name) if groups else None
            if spec is not None:
                # Grouped answers are set aside and resolved once the
                # whole instant is seen; ungrouped rules below fire
                # exactly as they always did.
                if deferred is None:
                    deferred = []
                deferred.append((name, rule, answers, spec))
                continue
            for answer in answers:
                if self.collector is not None:
                    self.collector.append((name, rule, answer.bindings))
                else:
                    self._fire(rule, answer.bindings)
        if deferred:
            self._resolve_group_answers(deferred)

    def _resolve_group_answers(self, deferred: list) -> None:
        """Fire each combinator group's winning answers, suppress losers.

        *deferred* rows are ``(name, rule, answers, (gid, kind, prec))``
        in installation order.  Per group, exactly the answering members
        at the highest precedence fire (ties all fire; first-match groups
        have unique precedences, so one winner); losers' answers are
        counted in ``stats.firings_suppressed``.
        """
        best: dict[str, float] = {}
        for _name, _rule, _answers, (gid, _kind, prec) in deferred:
            if gid not in best or prec > best[gid]:
                best[gid] = prec
        for name, rule, answers, (gid, _kind, prec) in deferred:
            if prec != best[gid]:
                self.stats.firings_suppressed += len(answers)
                continue
            for answer in answers:
                if self.collector is not None:
                    self.collector.append((name, rule, answer.bindings))
                else:
                    self._fire(rule, answer.bindings)

    def _interested(self, event: Event) -> list[tuple[ECARule, object]]:
        """Snapshot of the rules whose queries can be affected by *event*.

        Probes the event label's trie root, descends by the constants the
        event exhibits on each visited axis, and merges the reached leaf
        lists with the wildcard rules by installation sequence.
        Root-label-only mode (``discriminating_index=False``) never split
        the trie, so the root is one flat leaf; the broadcast ablation
        returns every active rule.  Always a *fresh* list: firing a rule
        may install/uninstall rules, which edits the trie in place
        mid-dispatch — the snapshot the loop iterates must not alias live
        node state.
        """
        if not self._indexed:
            return list(self._ordered_entries())
        self.stats.index_probes += 1
        root = self._index.get(event.term.label)
        if root is None:
            return list(self._wildcard)
        lists: list = []
        root.collect(event.term, self.stats, lists)
        if self._wildcard_rows:
            lists.append(self._wildcard_rows)
        if not lists:
            return []
        if len(lists) == 1:
            return [(rule, evaluator) for _s, rule, evaluator, _d in lists[0]]
        merged = heapq.merge(*lists, key=_row_seq)
        return [(rule, evaluator) for _s, rule, evaluator, _d in merged]

    def _on_time(self, when: float) -> None:
        owners = self._deadline_owners.pop(when, set())
        if self._coalesced and not owners:
            # Every owner was eagerly pruned (uninstalled) after this
            # wake-up was scheduled: nothing can expire, so the instant is
            # not a wake-up at all — don't count or advance anything.
            return
        self.stats.wakeups += 1
        # Installation order, not owner-set order: firing order at a shared
        # deadline stays deterministic and identical between coalesced and
        # broadcast wake-ups.  Coalesced wake-ups sort just the owners by
        # their installation sequence (stale owners drop out of
        # _eval_entry), so per-wakeup work scales with the expiring rules,
        # never the whole rule base.
        if self._coalesced:
            batch = sorted(
                (self._eval_entry[ev] + (ev,) for ev in owners
                 if ev in self._eval_entry),
                key=lambda entry: entry[0],
            )
            items = [(rule, ev) for _seq, _name, rule, ev in batch]
        else:
            items = list(self._ordered_entries())
        if self._groups:
            # Same deferral as _dispatch, across the whole instant:
            # grouped answers compete per instant, not per evaluator.
            buffer: list = []
            self._group_buffer = buffer
            try:
                for rule, evaluator in items:
                    self.advance_evaluator(when, rule, evaluator)
            finally:
                self._group_buffer = None
            if buffer:
                self._resolve_group_answers(buffer)
        else:
            for rule, evaluator in items:
                self.advance_evaluator(when, rule, evaluator)
        self._schedule_wakeups()

    def advance_evaluator(self, when: float, rule: ECARule, evaluator,
                          fire: bool = True) -> None:
        """Advance one evaluator to *when*, firing (or deduping) answers.

        The wake-up work unit: `_on_time` applies it to every expiring
        local rule; the shard router applies it across shards in global
        installation order, with ``fire=False`` on all but the rule's
        designated shard so absence answers act exactly once.  The caller
        is responsible for the follow-up :meth:`_schedule_wakeups` — and,
        when combinator groups are active, for planting ``_group_buffer``
        around the instant and resolving it after (grouped answers with no
        buffer planted fire immediately, ungrouped semantics).
        """
        self._touched.add(evaluator)
        self.stats.evaluator_advances += 1
        before = matcher_call_count()
        answers = evaluator.advance_time(when)
        self.stats.matcher_calls += matcher_call_count() - before
        if rule.firing == "first" and len(answers) > 1:
            answers = answers[:1]
        if not fire:
            self.stats.firings_deduped += len(answers)
            return
        if not answers:
            return
        name = self._eval_entry[evaluator][1]
        if self._group_buffer is not None:
            spec = self._groups.get(name) if self._groups else None
            if spec is not None:
                self._group_buffer.append((name, rule, answers, spec))
                return
        for answer in answers:
            if self.collector is not None:
                self.collector.append((name, rule, answer.bindings))
            else:
                self._fire(rule, answer.bindings)

    def _schedule_wakeups(self) -> None:
        for evaluator in self._touched:
            deadline = evaluator.next_deadline()
            if deadline is None:
                continue
            owners = self._deadline_owners.get(deadline)
            if owners is None:
                owners = self._deadline_owners[deadline] = set()
                if self.wakeup_via is not None:
                    self.wakeup_via(deadline)
                else:
                    self.node.clock.at(deadline,
                                       lambda d=deadline: self._on_time(d))
            owners.add(evaluator)
        self._touched.clear()

    # -- rule firing ------------------------------------------------------------------

    def _fire(self, rule: ECARule, bindings: Bindings) -> None:
        self.stats.rule_firings += 1
        for branch_condition, action in rule.branches:
            if branch_condition is None or isinstance(branch_condition, cond.TrueCond):
                extensions = [bindings]
            else:
                extensions = cond.evaluate(branch_condition, self.node, bindings,
                                           self.stats, self._web_views)
            if extensions:
                if rule.firing == "first":
                    extensions = extensions[:1]
                for extension in extensions:
                    self.execute(action, extension)
                return
        if rule.otherwise is not None:
            self.execute(rule.otherwise, bindings)

    # -- action execution -----------------------------------------------------------------

    def execute(self, action, bindings: Bindings) -> None:
        """Execute one action under the given bindings."""
        self.stats.actions_executed += 1
        if isinstance(action, act.Raise):
            to = act.resolve_uri(action.to, bindings)
            term = act.build_term(action.term, bindings)
            self.stats.events_raised += 1
            self.node.raise_event(to, term)
            return
        if isinstance(action, act.Update):
            self._apply_update(action, bindings)
            return
        if isinstance(action, act.PutResource):
            uri = self._local_uri(act.resolve_uri(action.uri, bindings))
            self.node.resources.put(uri, act.build_term(action.content, bindings))
            self.stats.updates_applied += 1
            return
        if isinstance(action, act.DeleteResource):
            uri = self._local_uri(act.resolve_uri(action.uri, bindings))
            self.node.resources.delete(uri)
            self.stats.updates_applied += 1
            return
        if isinstance(action, act.Persist):
            self._persist(action, bindings)
            return
        if isinstance(action, act.Sequence):
            self._run_sequence(action, bindings)
            return
        if isinstance(action, act.Alternative):
            self._run_alternative(action, bindings)
            return
        if isinstance(action, act.Conditional):
            extensions = cond.evaluate(action.condition, self.node, bindings,
                                       self.stats, self._web_views)
            if extensions:
                self.execute(action.then, extensions[0])
            elif action.otherwise is not None:
                self.execute(action.otherwise, bindings)
            return
        if isinstance(action, act.CallProcedure):
            self._call_procedure(action, bindings)
            return
        if isinstance(action, act.InstallRule):
            from repro.core.meta import term_to_rule

            rule = term_to_rule(act.build_term(action.rule_term, bindings))
            # Through the installer seam: on a sharded node the router
            # re-partitions instead of installing into this shard only.
            self.installer.install(rule)
            return
        if isinstance(action, act.UninstallRule):
            name = action.name
            if not isinstance(name, str):
                value = bindings.get(name.name)
                if not isinstance(value, str):
                    raise ActionError(f"rule-name variable {name.name!r} unbound")
                name = value
            self.installer.uninstall(name)
            return
        if isinstance(action, act.PyAction):
            try:
                action.fn(self.node, bindings)
            except ActionError:
                raise
            except Exception as exc:  # noqa: BLE001 - deliberate wrap
                raise ActionError(f"python action {action.label!r} failed: {exc}") from exc
            return
        raise ActionError(f"not an action: {action!r}")

    # -- helpers ---------------------------------------------------------------------------

    def _local_uri(self, uri: str) -> str:
        if authority(uri) != self.node.uri:
            raise ActionError(
                f"{self.node.uri} cannot update remote resource {uri}; "
                "request the update by raising an event (Thesis 2)"
            )
        return uri

    def _apply_update(self, action: act.Update, bindings: Bindings) -> None:
        uri = self._local_uri(act.resolve_uri(action.uri, bindings))
        root = self.node.resources.get(uri)
        if action.kind == "insert":
            new_root, count = insert_child(root, action.target, action.payload,
                                           bindings, action.position)
        elif action.kind == "delete":
            new_root, count = delete_terms(root, action.target, bindings)
        else:
            new_root, count = replace_terms(root, action.target, action.payload, bindings)
        if count == 0 and action.require_effect:
            raise ActionError(f"update on {uri} matched nothing")
        if count:
            self.node.resources.put(uri, new_root)
            self.stats.updates_applied += 1

    def _persist(self, action: act.Persist, bindings: Bindings) -> None:
        uri = self._local_uri(act.resolve_uri(action.uri, bindings))
        content = act.build_term(action.content, bindings)
        if uri in self.node.resources:
            root = self.node.resources.get(uri)
        else:
            root = Data(action.root_label, (), False)
        self.node.resources.put(uri, root.append(content))
        self.stats.updates_applied += 1

    def _run_sequence(self, action: act.Sequence, bindings: Bindings) -> None:
        if not action.atomic:
            for step in action.actions:
                self.execute(step, bindings)
            return
        transaction = Transaction(self.node.resources)
        try:
            for step in action.actions:
                self.execute(step, bindings)
        except Exception:
            transaction.rollback()
            self.stats.rollbacks += 1
            raise
        transaction.commit()

    def _run_alternative(self, action: act.Alternative, bindings: Bindings) -> None:
        failures = []
        for option in action.actions:
            try:
                self.execute(option, bindings)
                return
            except ActionError as exc:
                failures.append(str(exc))
        raise ActionError(
            f"all {len(action.actions)} alternatives failed: {failures}"
        )

    def _call_procedure(self, action: act.CallProcedure, bindings: Bindings) -> None:
        procedure = self._procedures.get(action.name)
        if procedure is None:
            raise ActionError(f"no procedure {action.name!r}")
        from repro.terms.construct import instantiate

        supplied = dict(action.args)
        items = []
        for param in procedure.params:
            if param not in supplied:
                raise ActionError(
                    f"procedure {action.name!r} missing argument {param!r}"
                )
            items.append((param, instantiate(supplied[param], bindings)))
        self.execute(procedure.action, Bindings(tuple(items)))

"""Rule sets: named, nestable groups of rules (Thesis 9).

    "Grouping rules into separate, named rule sets and possibly also
    building hierarchies of rule sets exposes the structure of a rule
    program [...] rule sets could introduce scopes for identifiers."

A :class:`RuleSet` holds rules and child rule sets.  Rule names are scoped:
the fully qualified name of a rule is ``set/subset/rule``, so two subsets
can both define a rule called ``notify`` without clashing — the name-clash
protection the thesis asks for.  Sets can be enabled and disabled as a
unit, which is how applications switch whole behaviours on and off.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.rules import ECARule
from repro.errors import RuleError


class RuleSet:
    """A named group of rules and nested rule sets."""

    def __init__(self, name: str) -> None:
        if not name or "/" in name:
            raise RuleError(f"invalid rule set name {name!r}")
        self.name = name
        self.enabled = True
        self._rules: dict[str, ECARule] = {}
        self._children: dict[str, "RuleSet"] = {}

    # -- construction -------------------------------------------------------------

    def add(self, rule: ECARule) -> "RuleSet":
        """Add a rule; its scoped name must be unique within this set."""
        if rule.name in self._rules:
            raise RuleError(f"duplicate rule {rule.name!r} in set {self.name!r}")
        self._rules[rule.name] = rule
        return self

    def subset(self, name: str) -> "RuleSet":
        """Get or create a nested rule set."""
        child = self._children.get(name)
        if child is None:
            if name in self._rules:
                raise RuleError(f"{name!r} already names a rule in {self.name!r}")
            child = RuleSet(name)
            self._children[name] = child
        return child

    # -- lookup ---------------------------------------------------------------------

    def qualified(self) -> Iterator[tuple[str, ECARule, "RuleSet"]]:
        """Yield (qualified_name, rule, owning_set) for every rule, depth
        first; disabled subtrees are skipped."""
        if not self.enabled:
            return
        for name, rule in self._rules.items():
            yield (f"{self.name}/{name}", rule, self)
        for child in self._children.values():
            for qualified_name, rule, owner in child.qualified():
                yield (f"{self.name}/{qualified_name}", rule, owner)

    def find(self, path: str) -> ECARule:
        """Look up a rule by scoped path relative to this set."""
        head, _, rest = path.partition("/")
        if rest:
            child = self._children.get(head)
            if child is None:
                raise RuleError(f"no rule set {head!r} in {self.name!r}")
            return child.find(rest)
        rule = self._rules.get(head)
        if rule is None:
            raise RuleError(f"no rule {head!r} in set {self.name!r}")
        return rule

    def remove(self, path: str) -> None:
        """Remove a rule by scoped path."""
        head, _, rest = path.partition("/")
        if rest:
            child = self._children.get(head)
            if child is None:
                raise RuleError(f"no rule set {head!r} in {self.name!r}")
            child.remove(rest)
            return
        if head not in self._rules:
            raise RuleError(f"no rule {head!r} in set {self.name!r}")
        del self._rules[head]

    def __len__(self) -> int:
        return len(self._rules) + sum(len(c) for c in self._children.values())

    def __contains__(self, path: str) -> bool:
        try:
            self.find(path)
            return True
        except RuleError:
            return False

"""Rule sets: named, nestable groups of rules (Thesis 9).

    "Grouping rules into separate, named rule sets and possibly also
    building hierarchies of rule sets exposes the structure of a rule
    program [...] rule sets could introduce scopes for identifiers."

A :class:`RuleSet` holds rules and child rule sets.  Rule names are scoped:
the fully qualified name of a rule is ``set/subset/rule``, so two subsets
can both define a rule called ``notify`` without clashing — the name-clash
protection the thesis asks for.  Sets can be enabled and disabled as a
unit, which is how applications switch whole behaviours on and off.

Overlapping-rule combinators
----------------------------

Large rule bases overlap: several rules answer the same event, and the
intended behaviour is often "the most important one wins", not "all of
them fire".  Following Pucella's treatment of overlapping rules, three
:class:`CombinatorGroup` kinds make that a property of the rule *base*
rather than N hand-deduplicated rule conditions:

- :class:`PriorityGroup` — members carry an explicit priority; among the
  members answering one event, only those at the highest answering
  priority fire (ties all fire).
- :class:`FirstMatchGroup` — insertion order is the priority; the first
  member (in installation order) that answers fires, the rest are
  suppressed.
- :class:`SpecificityGroup` — the most *specific* answering member wins:
  specificity is the number of constants the member's event query
  requires (its interest discriminators), so ``stock[sym: "ACME"]``
  overrides plain ``stock[...]`` exactly when both answer.

Groups are rule sets, so they install, disable, and qualify names like
any subset.  The engine compiles them (:func:`compile_group_specs`) into
per-rule ``(group, kind, precedence)`` specs resolved at dispatch time:
losers' answers are counted in ``EngineStats.firings_suppressed`` and
never fire.  Combinator groups hold direct rules only — nesting subsets
under a group would make "first match" ambiguous, so it is rejected.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.rules import ECARule
from repro.errors import RuleError
from repro.events.queries import query_interest


class RuleSet:
    """A named group of rules and nested rule sets."""

    def __init__(self, name: str) -> None:
        if not name or "/" in name:
            raise RuleError(f"invalid rule set name {name!r}")
        self.name = name
        self.enabled = True
        self._rules: dict[str, ECARule] = {}
        self._children: dict[str, "RuleSet"] = {}

    # -- construction -------------------------------------------------------------

    def add(self, rule: ECARule) -> "RuleSet":
        """Add a rule; its scoped name must be unique within this set."""
        if rule.name in self._rules:
            raise RuleError(f"duplicate rule {rule.name!r} in set {self.name!r}")
        self._rules[rule.name] = rule
        return self

    def subset(self, name: str) -> "RuleSet":
        """Get or create a nested rule set."""
        child = self._children.get(name)
        if child is None:
            if name in self._rules:
                raise RuleError(f"{name!r} already names a rule in {self.name!r}")
            child = RuleSet(name)
            self._children[name] = child
        elif isinstance(child, CombinatorGroup):
            raise RuleError(
                f"{name!r} is a {child.kind} group in {self.name!r}; "
                f"use {child.kind}_group-style accessors, not subset()"
            )
        return child

    def priority_group(self, name: str) -> "PriorityGroup":
        """Get or create a nested :class:`PriorityGroup`."""
        return self._combinator_child(PriorityGroup, name)

    def first_match(self, name: str) -> "FirstMatchGroup":
        """Get or create a nested :class:`FirstMatchGroup`."""
        return self._combinator_child(FirstMatchGroup, name)

    def specificity_override(self, name: str) -> "SpecificityGroup":
        """Get or create a nested :class:`SpecificityGroup`."""
        return self._combinator_child(SpecificityGroup, name)

    def _combinator_child(self, cls: type, name: str):
        if isinstance(self, CombinatorGroup):
            raise RuleError(
                f"combinator groups hold rules only: {self.name!r} cannot "
                f"contain nested group {name!r}"
            )
        child = self._children.get(name)
        if child is None:
            if name in self._rules:
                raise RuleError(f"{name!r} already names a rule in {self.name!r}")
            child = cls(name)
            self._children[name] = child
        elif type(child) is not cls:
            raise RuleError(
                f"{name!r} already names a different kind of subset in {self.name!r}"
            )
        return child

    # -- lookup ---------------------------------------------------------------------

    def qualified(self) -> Iterator[tuple[str, ECARule, "RuleSet"]]:
        """Yield (qualified_name, rule, owning_set) for every rule, depth
        first; disabled subtrees are skipped."""
        if not self.enabled:
            return
        for name, rule in self._rules.items():
            yield (f"{self.name}/{name}", rule, self)
        for child in self._children.values():
            for qualified_name, rule, owner in child.qualified():
                yield (f"{self.name}/{qualified_name}", rule, owner)

    def find(self, path: str) -> ECARule:
        """Look up a rule by scoped path relative to this set."""
        head, _, rest = path.partition("/")
        if rest:
            child = self._children.get(head)
            if child is None:
                raise RuleError(f"no rule set {head!r} in {self.name!r}")
            return child.find(rest)
        rule = self._rules.get(head)
        if rule is None:
            raise RuleError(f"no rule {head!r} in set {self.name!r}")
        return rule

    def remove(self, path: str) -> None:
        """Remove a rule by scoped path."""
        head, _, rest = path.partition("/")
        if rest:
            child = self._children.get(head)
            if child is None:
                raise RuleError(f"no rule set {head!r} in {self.name!r}")
            child.remove(rest)
            return
        if head not in self._rules:
            raise RuleError(f"no rule {head!r} in set {self.name!r}")
        del self._rules[head]

    def __len__(self) -> int:
        return len(self._rules) + sum(len(c) for c in self._children.values())

    def __contains__(self, path: str) -> bool:
        try:
            self.find(path)
            return True
        except RuleError:
            return False


def _as_rule(rule) -> ECARule:
    """Accept fluent builders (anything with ``.build()``) alongside rules."""
    if not isinstance(rule, ECARule) and hasattr(rule, "build"):
        return rule.build()
    return rule


class CombinatorGroup(RuleSet):
    """A rule set whose members *overlap*: one event, one winner (or tier).

    Subclasses define ``kind`` and a per-member ``precedence``; among the
    members that answer one event instant, exactly those with the highest
    precedence fire — the rest are suppressed
    (``EngineStats.firings_suppressed``).  Members that do not answer never
    compete: a high-priority member with no answer suppresses nothing.
    """

    kind = "combinator"

    def subset(self, name: str) -> "RuleSet":
        raise RuleError(
            f"combinator groups hold rules only: {self.name!r} cannot "
            f"contain nested subset {name!r}"
        )

    def precedence(self, name: str) -> float:
        """The member's precedence (higher wins); *name* is unqualified."""
        raise NotImplementedError


class PriorityGroup(CombinatorGroup):
    """Members carry explicit priorities; ties at the top all fire."""

    kind = "priority"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._priorities: dict[str, float] = {}

    def add(self, rule, priority: float = 0.0) -> "PriorityGroup":
        rule = _as_rule(rule)
        super().add(rule)
        self._priorities[rule.name] = float(priority)
        return self

    def precedence(self, name: str) -> float:
        return self._priorities[name]


class FirstMatchGroup(CombinatorGroup):
    """Installation order is the priority: the first answering member wins.

    Precedences are unique (one per insertion slot), so exactly one member
    fires per answered event — the textbook "first match wins" semantics.
    """

    kind = "first_match"

    def add(self, rule) -> "FirstMatchGroup":
        super().add(_as_rule(rule))
        return self

    def precedence(self, name: str) -> float:
        return -float(list(self._rules).index(name))


class SpecificityGroup(CombinatorGroup):
    """The most specific answering member wins.

    Specificity is the number of constants the member's event query
    requires — the discriminators of its :func:`query_interest`, summed
    across labels.  A wildcard query (no static interest) scores 0, so
    ``stock[sym: "ACME"]`` (score 1) overrides plain ``stock[...]``
    (score 0) whenever both answer, and equally specific members tie and
    all fire.  Scores are computed once, at ``add`` time.
    """

    kind = "specificity"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._specificity: dict[str, float] = {}

    def add(self, rule) -> "SpecificityGroup":
        rule = _as_rule(rule)
        super().add(rule)
        interest = query_interest(rule.event)
        if interest.by_label is None:
            score = 0
        else:
            score = sum(len(discs) for _label, discs in interest.by_label)
        self._specificity[rule.name] = float(score)
        return self

    def precedence(self, name: str) -> float:
        return self._specificity[name]


def priority_group(name: str) -> PriorityGroup:
    """A standalone :class:`PriorityGroup`, installable like any rule set."""
    return PriorityGroup(name)


def first_match(name: str) -> FirstMatchGroup:
    """A standalone :class:`FirstMatchGroup`, installable like any rule set."""
    return FirstMatchGroup(name)


def specificity_override(name: str) -> SpecificityGroup:
    """A standalone :class:`SpecificityGroup`, installable like any rule set."""
    return SpecificityGroup(name)


def compile_group_specs(rulesets) -> dict[str, tuple[str, str, float]]:
    """Compile installed rule sets' combinator groups into dispatch specs.

    Returns ``qualified_rule_name -> (group_path, kind, precedence)`` for
    every active rule owned by a :class:`CombinatorGroup`.  Shared by the
    engine (which resolves winners at dispatch) and the shard router
    (which co-locates a group's members on one shard so resolution stays
    engine-local).  Groups hold direct rules only, so a member's group
    path is its qualified name minus the last segment.
    """
    specs: dict[str, tuple[str, str, float]] = {}
    for ruleset in rulesets:
        for qualified_name, _rule, owner in ruleset.qualified():
            if isinstance(owner, CombinatorGroup):
                gid, _, member = qualified_name.rpartition("/")
                specs[qualified_name] = (gid, owner.kind, owner.precedence(member))
    return specs

"""The reactive rule core: ECA rules and their engine (Theses 1-2, 8-12).

- :mod:`repro.core.rules` — ECA / ECAA / ECnAn rule forms (Thesis 9
  branching) with per-rule firing modes;
- :mod:`repro.core.conditions` — the condition part: Web queries over
  (local and remote) resources, parameterised by event bindings (Thesis 7);
- :mod:`repro.core.actions` — the action part: updates, event raising,
  persistence, compounds (sequence / alternative / conditional), procedure
  calls, and rule installation (Theses 8, 9, 11);
- :mod:`repro.core.engine` — the local engine: one per node (Thesis 2),
  incremental event evaluation, deadline wake-ups, deductive event views;
- :mod:`repro.core.production` — the production-rule (CA) baseline and the
  CA-to-ECA derivation of Thesis 1;
- :mod:`repro.core.rulesets` — named, nestable rule sets (Thesis 9);
- :mod:`repro.core.identity` — extensional vs surrogate identity monitoring
  (Thesis 10);
- :mod:`repro.core.meta` — rules as data terms, meta-circular exchange
  (Thesis 11);
- :mod:`repro.core.aaa` — authentication, authorization, accounting
  (Thesis 12).
"""

from repro.core.actions import (
    Alternative,
    CallProcedure,
    Conditional,
    DeleteResource,
    InstallRule,
    Persist,
    PutResource,
    PyAction,
    Raise,
    Sequence,
    Update,
)
from repro.core.conditions import (
    AndCond,
    CompareCond,
    NotCond,
    OrCond,
    QueryCond,
    TrueCond,
)
from repro.core.engine import EngineConfig, EngineStats, ReactiveEngine
from repro.core.production import ProductionEngine, ProductionRule, derive_eca
from repro.core.rules import ECARule, eca, ecaa, ecna
from repro.core.rulesets import (
    CombinatorGroup,
    FirstMatchGroup,
    PriorityGroup,
    RuleSet,
    SpecificityGroup,
    first_match,
    priority_group,
    specificity_override,
)

__all__ = [
    "Alternative",
    "AndCond",
    "CallProcedure",
    "CombinatorGroup",
    "CompareCond",
    "Conditional",
    "DeleteResource",
    "ECARule",
    "EngineConfig",
    "EngineStats",
    "FirstMatchGroup",
    "InstallRule",
    "NotCond",
    "OrCond",
    "Persist",
    "PriorityGroup",
    "ProductionEngine",
    "ProductionRule",
    "PutResource",
    "PyAction",
    "QueryCond",
    "Raise",
    "ReactiveEngine",
    "RuleSet",
    "Sequence",
    "SpecificityGroup",
    "TrueCond",
    "Update",
    "derive_eca",
    "eca",
    "ecaa",
    "ecna",
    "first_match",
    "priority_group",
    "specificity_override",
]

"""Identity of monitored data items (Thesis 10).

To react to *changes of a particular item* inside a resource, the item must
be identified across versions.  The thesis contrasts:

- **extensional identity** — an item *is* its value; when the value
  changes, identity is lost, and a change can only be reported as a
  deletion plus an insertion;
- **surrogate identity** — items carry an identity independent of their
  value (here: a registry-assigned object id, ``oid``); value changes keep
  the identity, and can be reported as genuine modifications.

A :class:`ChangeMonitor` watches one resource, diffs consecutive versions
at the granularity of an item query, and raises local events:
``item-inserted{oid, item}``, ``item-deleted{oid, item}``, and — surrogate
mode only — ``item-changed{oid, old, new}``.  Surrogate matching uses, in
order: unchanged value, an explicit key child (e.g. ``id``), and positional
pairing of the remaining items.  Counters report how many identities each
mode preserved (experiment E10).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import RuleError
from repro.terms.ast import Data, Query, canonical_str
from repro.terms.simulation import matches
from repro.web.node import WebNode

_oids = itertools.count(1)


@dataclass
class MonitorStats:
    inserted: int = 0
    deleted: int = 0
    changed: int = 0

    @property
    def identities_preserved(self) -> int:
        return self.changed

    @property
    def identities_lost(self) -> int:
        """Value changes reported as delete+insert pairs."""
        return min(self.inserted, self.deleted)


class ChangeMonitor:
    """Watches items matching a query inside one resource."""

    def __init__(self, node: WebNode, uri: str, item_query: Query,
                 mode: str = "surrogate", key_label: "str | None" = "id") -> None:
        if mode not in ("surrogate", "extensional"):
            raise RuleError(f"unknown identity mode {mode!r}")
        self.node = node
        self.uri = uri
        self.item_query = item_query
        self.mode = mode
        self.key_label = key_label
        self.stats = MonitorStats()
        self._oids: dict[str, int] = {}  # canonical form -> oid (live items)
        if uri in node.resources:
            for item in self._items(node.resources.get(uri)):
                self._oids[canonical_str(item)] = next(_oids)
        node.resources.watch(self._on_change)

    def _items(self, root: "Data | None") -> list[Data]:
        if root is None:
            return []
        return [
            sub for sub in root.subterms()
            if sub is not root and matches(self.item_query, sub)
        ]

    # -- diffing -----------------------------------------------------------------

    def _on_change(self, uri: str, old: "Data | None", new: "Data | None",
                   version: int) -> None:
        if uri != self.uri:
            return
        old_items = self._items(old)
        new_items = self._items(new)
        old_by_form = {canonical_str(item): item for item in old_items}
        new_by_form = {canonical_str(item): item for item in new_items}
        vanished = [item for form, item in old_by_form.items() if form not in new_by_form]
        appeared = [item for form, item in new_by_form.items() if form not in old_by_form]
        if self.mode == "surrogate":
            pairs = self._pair(vanished, appeared)
            paired_old = {id(o) for o, _ in pairs}
            paired_new = {id(n) for _, n in pairs}
            for old_item, new_item in pairs:
                oid = self._oids.pop(canonical_str(old_item), None) or next(_oids)
                self._oids[canonical_str(new_item)] = oid
                self.stats.changed += 1
                self._raise("item-changed", oid, old_item, new_item)
            vanished = [item for item in vanished if id(item) not in paired_old]
            appeared = [item for item in appeared if id(item) not in paired_new]
        for item in vanished:
            oid = self._oids.pop(canonical_str(item), 0)
            self.stats.deleted += 1
            self._raise("item-deleted", oid, item, None)
        for item in appeared:
            oid = next(_oids)
            self._oids[canonical_str(item)] = oid
            self.stats.inserted += 1
            self._raise("item-inserted", oid, None, item)

    def _pair(self, vanished: list[Data], appeared: list[Data]
              ) -> list[tuple[Data, Data]]:
        """Surrogate matching of old items to their new versions."""
        pairs: list[tuple[Data, Data]] = []
        remaining_new = list(appeared)
        unmatched_old = []
        # 1. explicit key child (e.g. id[...]), the xml:id analogue.
        for old_item in vanished:
            key = self._key_of(old_item)
            partner = None
            if key is not None:
                for new_item in remaining_new:
                    if self._key_of(new_item) == key and new_item.label == old_item.label:
                        partner = new_item
                        break
            if partner is not None:
                pairs.append((old_item, partner))
                remaining_new.remove(partner)
            else:
                unmatched_old.append(old_item)
        # 2. positional fallback: pair leftovers with the same label in order.
        for old_item in list(unmatched_old):
            for new_item in remaining_new:
                if new_item.label == old_item.label:
                    pairs.append((old_item, new_item))
                    remaining_new.remove(new_item)
                    unmatched_old.remove(old_item)
                    break
        return pairs

    def _key_of(self, item: Data) -> "str | None":
        if self.key_label is None:
            return None
        key_child = item.first(self.key_label)
        if key_child is not None and key_child.value is not None:
            return str(key_child.value)
        attr = item.attr(self.key_label)
        return attr

    def _raise(self, label: str, oid: int, old: "Data | None",
               new: "Data | None") -> None:
        children: list = [Data("oid", (oid,)), Data("uri", (self.uri,))]
        if old is not None:
            children.append(Data("old", (old,)))
        if new is not None:
            children.append(Data("new", (new,)))
        self.node.raise_local(Data(label, tuple(children), False))

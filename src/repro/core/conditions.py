"""The condition part of ECA rules: Web queries over persistent data.

Thesis 7: the condition part embeds the Web query language, and variables
bound by the event query *parameterise* the condition ("the value delivered
by the event query can be accessed and used in the condition query").  A
condition evaluates to a list of binding extensions — existential semantics
with data flow to the action part.

Conditions can consult any resource on the Web by URI (local reads are
free; remote reads go over the network and are accounted, Thesis 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RuleError
from repro.terms.ast import Bindings, Construct, Query, Var, is_scalar
from repro.terms.construct import instantiate
from repro.terms.simulation import _compare_holds, match
from repro.terms.ast import Compare


@dataclass(frozen=True)
class TrueCond:
    """The trivially true condition (plain ``on E do A`` rules)."""


@dataclass(frozen=True)
class QueryCond:
    """Match a query term against the resource at *uri*.

    ``uri`` may be a string or a variable bound by the event part — the
    event data decides *which* resource the condition consults.
    """

    uri: "str | Var"
    query: Query


@dataclass(frozen=True)
class NotCond:
    """Negation as failure: holds iff the inner condition has no answer."""

    inner: "Condition"


@dataclass(frozen=True)
class AndCond:
    """All conditions hold; bindings flow left to right."""

    members: tuple["Condition", ...]

    def __init__(self, *members: "Condition") -> None:
        object.__setattr__(self, "members", tuple(members))


@dataclass(frozen=True)
class OrCond:
    """At least one condition holds; answers are the union."""

    members: tuple["Condition", ...]

    def __init__(self, *members: "Condition") -> None:
        object.__setattr__(self, "members", tuple(members))


@dataclass(frozen=True)
class CompareCond:
    """Scalar comparison between two construct expressions."""

    lhs: Construct
    op: str
    rhs: Construct


#: Any rule condition.
Condition = "TrueCond | QueryCond | NotCond | AndCond | OrCond | CompareCond"


def evaluate(condition, node, bindings: Bindings, stats=None,
             views: "dict | None" = None) -> list[Bindings]:
    """Evaluate a condition at *node* under *bindings*.

    Returns all binding extensions under which it holds (empty list: the
    condition fails).  ``stats`` (an engine stats object) counts condition
    evaluations for experiment E9.  ``views`` maps resource URIs to
    deductive view states (see ``ReactiveEngine.define_web_views``): a
    query against a view URI solves over the resource's facts *plus* the
    derived facts, instead of matching the document root.
    """
    if stats is not None:
        stats.condition_evaluations += 1
    return _evaluate(condition, node, bindings, views)


def _evaluate(condition, node, bindings: Bindings,
              views: "dict | None" = None) -> list[Bindings]:
    if isinstance(condition, TrueCond) or condition is None:
        return [bindings]
    if isinstance(condition, QueryCond):
        uri = condition.uri
        if isinstance(uri, Var):
            value = bindings.get(uri.name)
            if not isinstance(value, str):
                raise RuleError(
                    f"condition URI variable {uri.name!r} is not bound to a string"
                )
            uri = value
        if views is not None and uri in views:
            return views[uri].refresh().solve(condition.query, bindings)
        document = node.get(uri)
        return match(condition.query, document, bindings)
    if isinstance(condition, NotCond):
        return [] if _evaluate(condition.inner, node, bindings, views) else [bindings]
    if isinstance(condition, AndCond):
        frontier = [bindings]
        for member in condition.members:
            frontier = [
                b2 for b in frontier for b2 in _evaluate(member, node, b, views)
            ]
            if not frontier:
                return []
        return _dedup(frontier)
    if isinstance(condition, OrCond):
        out = []
        for member in condition.members:
            out.extend(_evaluate(member, node, bindings, views))
        return _dedup(out)
    if isinstance(condition, CompareCond):
        lhs = instantiate(condition.lhs, bindings)
        rhs = instantiate(condition.rhs, bindings)
        if not is_scalar(lhs) or not is_scalar(rhs):
            return []
        holds = _compare_holds(Compare(condition.op, rhs), lhs, bindings)
        return [bindings] if holds else []
    raise RuleError(f"not a condition: {condition!r}")


def _dedup(items: list[Bindings]) -> list[Bindings]:
    seen: set[Bindings] = set()
    out = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out

"""Reactive rule forms: ECA, ECAA, and ECnAn (Theses 1 and 9).

One class covers all three shapes from the paper:

- plain ECA — one branch ``(condition, action)``;
- ECAA ("on E if C do A1 else A2") — one branch plus ``otherwise``;
- ECnAn — several ``(condition, action)`` branches tried in order, with an
  optional final ``otherwise``.

Branch semantics: for each answer of the event query, conditions are
evaluated top to bottom and the *first* holding branch fires — so the
shared condition of an ECAA rule is tested exactly once, which is the
efficiency point Thesis 9 makes (experiment E9 measures it against the
two-rule encoding with C and ¬C).

``firing`` selects how many condition answers trigger the action:
``"all"`` (one firing per distinct binding extension) or ``"first"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RuleError
from repro.events.queries import validate_query


@dataclass(frozen=True)
class ECARule:
    """An Event-Condition-Action rule (with ECAA/ECnAn generalisations)."""

    name: str
    event: object  # EventQuery
    branches: tuple[tuple[object, object], ...]  # (Condition | None, Action)
    otherwise: object = None  # Action | None
    firing: str = "all"

    def __post_init__(self) -> None:
        if not self.name:
            raise RuleError("rules need a name")
        validate_query(self.event)
        if not self.branches and self.otherwise is None:
            raise RuleError(f"rule {self.name!r} has no action")
        if self.firing not in ("all", "first"):
            raise RuleError(f"unknown firing mode {self.firing!r}")
        # Normalise missing conditions to TrueCond so that structurally
        # round-tripped rules (meta encoding, surface language) compare equal.
        from repro.core.conditions import TrueCond

        normalised = tuple(
            (TrueCond() if condition is None else condition, action)
            for condition, action in self.branches
        )
        object.__setattr__(self, "branches", normalised)

    @property
    def is_ecaa(self) -> bool:
        return self.otherwise is not None and len(self.branches) == 1

    @property
    def condition(self):
        """The condition of a plain ECA rule (first branch)."""
        return self.branches[0][0] if self.branches else None

    @property
    def action(self):
        """The action of a plain ECA rule (first branch)."""
        return self.branches[0][1] if self.branches else self.otherwise


def eca(name: str, on, do, if_=None, firing: str = "all") -> ECARule:
    """A plain ECA rule: ``on E if C do A``."""
    return ECARule(name, on, ((if_, do),), None, firing)


def ecaa(name: str, on, if_, do, else_do, firing: str = "all") -> ECARule:
    """An ECAA rule: ``on E if C do A1 else A2`` — C is tested once."""
    return ECARule(name, on, ((if_, do),), else_do, firing)


def ecna(name: str, on, branches, else_do=None, firing: str = "all") -> ECARule:
    """An ECnAn rule: ordered (condition, action) branches, first match fires."""
    return ECARule(name, on, tuple(branches), else_do, firing)

"""The action part of ECA rules (Thesis 8) and its structuring (Thesis 9).

Primitive actions:

- :class:`Raise` — push an event to another node (or locally): the
  communication action that produces global behaviour from local rules;
- :class:`Update` — insert/delete/replace inside a *local* persistent
  resource (remote updates must be requested via events — Thesis 2);
- :class:`PutResource` / :class:`DeleteResource` — whole-resource writes;
- :class:`Persist` — explicitly persist (volatile) event data into a
  resource (the only sanctioned way event data outlives its windows,
  Thesis 4);
- :class:`InstallRule` / :class:`UninstallRule` — meta-programming: treat a
  received rule term as a rule (Thesis 11);
- :class:`PyAction` — an escape hatch for tests and examples (not
  serialisable; flagged accordingly).

Compound actions: :class:`Sequence` (atomic by default, rolled back on
failure), :class:`Alternative` (try each until one succeeds — the paper's
"specification of alternative actions"), :class:`Conditional`, and
:class:`CallProcedure` (named, parameterised action procedures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ActionError, RuleError
from repro.terms.ast import Bindings, Construct, Data, Query, Var
from repro.terms.construct import instantiate


@dataclass(frozen=True)
class Raise:
    """Send a constructed event term to *to* (URI string or variable)."""

    to: "str | Var"
    term: Construct


@dataclass(frozen=True)
class Update:
    """An in-place update of a local resource.

    ``kind`` is ``insert`` (payload added under matching parents),
    ``delete`` (matching subterms removed; payload unused), or ``replace``
    (matching subterms replaced by the payload construct).
    """

    uri: "str | Var"
    kind: str
    target: Query
    payload: "Construct | None" = None
    position: str = "end"
    require_effect: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("insert", "delete", "replace"):
            raise RuleError(f"unknown update kind {self.kind!r}")
        if self.kind != "delete" and self.payload is None:
            raise RuleError(f"update kind {self.kind!r} needs a payload construct")


@dataclass(frozen=True)
class PutResource:
    """Create or overwrite a local resource with constructed content."""

    uri: "str | Var"
    content: Construct


@dataclass(frozen=True)
class DeleteResource:
    """Remove a local resource."""

    uri: "str | Var"


@dataclass(frozen=True)
class Persist:
    """Append constructed (event) data to a local resource, creating it
    with the given root label if missing — Thesis 4's explicit
    persistence."""

    uri: "str | Var"
    content: Construct
    root_label: str = "log"


@dataclass(frozen=True)
class Sequence:
    """Run member actions in order; atomic by default (all or nothing)."""

    actions: tuple["Action", ...]
    atomic: bool = True

    def __init__(self, *actions: "Action", atomic: bool = True) -> None:
        object.__setattr__(self, "actions", tuple(actions))
        object.__setattr__(self, "atomic", atomic)


@dataclass(frozen=True)
class Alternative:
    """Try member actions in order until one succeeds."""

    actions: tuple["Action", ...]

    def __init__(self, *actions: "Action") -> None:
        object.__setattr__(self, "actions", tuple(actions))


@dataclass(frozen=True)
class Conditional:
    """``if condition then A1 else A2`` *inside* the action part."""

    condition: object  # a Condition
    then: "Action"
    otherwise: "Action | None" = None


@dataclass(frozen=True)
class CallProcedure:
    """Invoke a named action procedure with constructed arguments."""

    name: str
    args: tuple[tuple[str, Construct], ...] = ()


@dataclass(frozen=True)
class InstallRule:
    """Meta-programming: install the rule encoded by a term (Thesis 11).

    The construct must build a rule term as produced by
    :func:`repro.core.meta.rule_to_term` — typically a variable bound to a
    rule term received in an event payload.
    """

    rule_term: Construct


@dataclass(frozen=True)
class UninstallRule:
    """Remove an installed rule by name."""

    name: "str | Var"


@dataclass(frozen=True)
class PyAction:
    """Escape hatch: run a Python callable ``fn(node, bindings)``.

    Not serialisable — rules containing it cannot be exchanged (Thesis 11
    tooling refuses them).
    """

    fn: Callable
    label: str = "py"


#: Any action.
Action = (
    "Raise | Update | PutResource | DeleteResource | Persist | Sequence | "
    "Alternative | Conditional | CallProcedure | InstallRule | UninstallRule | PyAction"
)


def resolve_uri(uri: "str | Var", bindings: Bindings) -> str:
    """Resolve a URI that may be a variable bound by the event/condition."""
    if isinstance(uri, Var):
        value = bindings.get(uri.name)
        if not isinstance(value, str):
            raise ActionError(f"URI variable {uri.name!r} not bound to a string")
        return value
    return uri


def build_term(construct: Construct, bindings: Bindings) -> Data:
    """Instantiate a construct that must yield a data term."""
    built = instantiate(construct, bindings)
    if not isinstance(built, Data):
        raise ActionError(f"expected a data term, constructed {built!r}")
    return built

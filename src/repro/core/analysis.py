"""Static analysis of reactive rule programs (Thesis 1).

    "Rules are well-suited for processing and analyzing by machines.
    Methods for automatic optimization, verification, and transformation
    into other types of rules [...] have been well-studied."

This module implements the machine-analysability the thesis advertises:

- :func:`trigger_graph` — which rule can trigger which: an edge from rule
  R to rule S when R's action can raise an event whose label S's event
  query consumes (conservative label-level approximation, via networkx);
- :func:`find_trigger_cycles` — potential infinite event loops, the classic
  hazard of reactive rule bases;
- :func:`dead_rules` — rules whose trigger labels no analysed rule (or
  listed external source) produces;
- :func:`raised_labels` / :func:`consumed_labels` — the per-rule label
  interfaces the above build on.

The analysis is *conservative*: label wildcards and label variables consume
everything, and dynamically constructed labels produce the unknown label
``"*"`` which matches everything.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.core import actions as act
from repro.core.rules import ECARule
from repro.events.queries import (
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EWithin,
)
from repro.terms.ast import CTerm, LabelVar, QTerm, Var


def consumed_labels(rule: ECARule) -> frozenset[str]:
    """Root labels of events the rule's event query can react to.

    ``"*"`` means the rule reacts to any label (wildcard or label
    variable in trigger position).
    """
    out: set[str] = set()
    _collect_consumed(rule.event, out)
    return frozenset(out)


def _collect_consumed(query, out: set[str]) -> None:
    if isinstance(query, EAtom):
        out.add(_pattern_label(query.pattern))
    elif isinstance(query, (EAnd, EOr, ESeq)):
        for member in query.members:
            if not isinstance(member, ENot):
                _collect_consumed(member, out)
    elif isinstance(query, EWithin):
        _collect_consumed(query.query, out)
    elif isinstance(query, (ECount, EAggregate)):
        out.add(_pattern_label(query.pattern))


def _pattern_label(pattern) -> str:
    if isinstance(pattern, QTerm):
        if isinstance(pattern.label, LabelVar):
            return "*"
        return pattern.label
    return "*"


def raised_labels(rule: ECARule) -> frozenset[str]:
    """Root labels of events the rule's actions can raise.

    ``"*"`` stands for a dynamically constructed label (label variable).
    """
    out: set[str] = set()
    for _condition, action in rule.branches:
        _collect_raised(action, out)
    if rule.otherwise is not None:
        _collect_raised(rule.otherwise, out)
    return frozenset(out)


def _collect_raised(action, out: set[str]) -> None:
    if isinstance(action, act.Raise):
        term = action.term
        if isinstance(term, CTerm):
            out.add(term.label if isinstance(term.label, str) else "*")
        elif isinstance(term, Var):
            out.add("*")
        else:
            from repro.terms.ast import Data

            out.add(term.label if isinstance(term, Data) else "*")
    elif isinstance(action, act.Sequence):
        for step in action.actions:
            _collect_raised(step, out)
    elif isinstance(action, act.Alternative):
        for option in action.actions:
            _collect_raised(option, out)
    elif isinstance(action, act.Conditional):
        _collect_raised(action.then, out)
        if action.otherwise is not None:
            _collect_raised(action.otherwise, out)
    elif isinstance(action, act.InstallRule):
        out.add("*")  # an installed rule may raise anything
    elif isinstance(action, act.PyAction):
        out.add("*")  # opaque code may raise anything
    # CallProcedure: resolved against the registry by analyse_engine;
    # standalone analysis treats it as opaque.
    elif isinstance(action, act.CallProcedure):
        out.add("*")


def _matches(produced: str, consumed: str) -> bool:
    return produced == "*" or consumed == "*" or produced == consumed


def trigger_graph(rules: Iterable[ECARule]) -> "nx.DiGraph":
    """Rule-level triggering graph: edge R -> S iff R can trigger S."""
    rules = list(rules)
    graph = nx.DiGraph()
    interfaces = {}
    for rule in rules:
        graph.add_node(rule.name)
        interfaces[rule.name] = (raised_labels(rule), consumed_labels(rule))
    for source in rules:
        produced, _ = interfaces[source.name]
        for target in rules:
            _, consumed = interfaces[target.name]
            if any(_matches(p, c) for p in produced for c in consumed):
                graph.add_edge(source.name, target.name)
    return graph


def find_trigger_cycles(rules: Iterable[ECARule]) -> list[list[str]]:
    """Potential infinite event loops (conservative).

    Returns the rule-name cycles of the trigger graph; an empty list means
    the rule base provably terminates at the label level.  A reported
    cycle is a *potential* loop — data-dependent conditions may break it
    at run time, which is exactly why the analysis flags it for review.
    """
    graph = trigger_graph(rules)
    return [sorted(component) for component in nx.strongly_connected_components(graph)
            if len(component) > 1 or graph.has_edge(*(list(component) * 2)[:2])]


def dead_rules(rules: Iterable[ECARule],
               external_labels: Iterable[str] = ()) -> list[str]:
    """Rules that nothing can trigger.

    ``external_labels`` lists event labels arriving from outside the
    analysed rule base (remote nodes, monitors); ``"*"`` disables the
    check for externally exposed systems.
    """
    rules = list(rules)
    external = set(external_labels)
    produced_anywhere: set[str] = set(external)
    for rule in rules:
        produced_anywhere |= raised_labels(rule)
    dead = []
    for rule in rules:
        consumed = consumed_labels(rule)
        if not any(_matches(p, c) for p in produced_anywhere for c in consumed):
            dead.append(rule.name)
    return dead


def analysis_report(rules: Iterable[ECARule],
                    external_labels: Iterable[str] = ()) -> dict:
    """A summary dict suitable for printing or asserting in CI."""
    rules = list(rules)
    cycles = find_trigger_cycles(rules)
    dead = dead_rules(rules, external_labels)
    return {
        "rules": len(rules),
        "trigger_edges": trigger_graph(rules).number_of_edges(),
        "potential_loops": cycles,
        "dead_rules": dead,
        "clean": not cycles and not dead,
    }

"""Production rules (CA rules): the Thesis 1 comparison baseline.

    "Production rules have the form 'if condition do action' and specify to
    execute the action automatically when the condition becomes true."

A :class:`ProductionEngine` holds CA rules over a node's resources and
re-evaluates them in cycles (on demand or scheduled).  Footnote 4 of the
paper explains why ``if C do A`` is *not* the ECA rule ``on true if C do
A``: a production rule fires when the condition **becomes** true (and, in a
naive engine, keeps firing while it stays true), whereas an ECA rule fires
once per event.  The engine exposes both naive re-firing and a
refractory-set mode, and :func:`derive_eca` implements the paper's
suggestion of deriving ECA rules from production rules automatically (fire
on the update events of the resources the condition reads).

Experiment E1 uses this module to measure both the duplicate/missed-firing
mismatch and the evaluation-count gap against genuine ECA rules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import conditions as cond
from repro.core.rules import ECARule, eca
from repro.errors import RuleError
from repro.events.queries import EAtom
from repro.terms.ast import Bindings, QTerm
from repro.web.node import WebNode


@dataclass(frozen=True)
class ProductionRule:
    """``if condition do action`` — no event part."""

    name: str
    condition: object
    action: object

    def __post_init__(self) -> None:
        if not self.name:
            raise RuleError("production rules need a name")


class ProductionEngine:
    """Cycle-based evaluation of CA rules.

    ``refractory=True`` remembers which (rule, bindings) pairs already
    fired and suppresses them while the condition stays true — the extra
    machinery a production system needs to approximate fire-once
    semantics.  ``refractory=False`` is the naive semantics: a rule fires
    on *every* cycle in which its condition holds.
    """

    def __init__(self, node: WebNode, executor, refractory: bool = True) -> None:
        self.node = node
        self.refractory = refractory
        self._executor = executor  # callable(action, bindings)
        self._rules: dict[str, ProductionRule] = {}
        self._fired: set[tuple[str, Bindings]] = set()
        self.cycles = 0
        self.condition_evaluations = 0
        self.firings = 0

    def install(self, rule: ProductionRule) -> None:
        if rule.name in self._rules:
            raise RuleError(f"production rule {rule.name!r} already installed")
        self._rules[rule.name] = rule

    def run_cycle(self) -> int:
        """Evaluate every rule's condition once; fire matches; return count."""
        self.cycles += 1
        fired = 0
        for rule in self._rules.values():
            self.condition_evaluations += 1
            extensions = cond.evaluate(rule.condition, self.node, Bindings())
            still_true = set()
            for extension in extensions:
                key = (rule.name, extension)
                still_true.add(key)
                if self.refractory and key in self._fired:
                    continue
                self._fired.add(key)
                self.firings += 1
                fired += 1
                self._executor(rule.action, extension)
            if self.refractory:
                # Once the condition stops holding for a binding, it may
                # fire again when it becomes true anew.
                self._fired = {
                    key for key in self._fired
                    if key[0] != rule.name or key in still_true
                }
        return fired

    def run_every(self, interval: float, until: float | None = None) -> None:
        """Schedule periodic cycles on the node's clock."""
        self.node.clock.every(interval, self.run_cycle, until=until)


def derive_eca(rule: ProductionRule, watched_labels: "list[str] | None" = None) -> ECARule:
    """Derive an ECA rule from a production rule (Thesis 1).

    The derived rule fires on ``resource-changed`` events (as raised by the
    identity monitor or polling watcher) — i.e., the condition is
    re-checked exactly when the data it reads may have changed, instead of
    on a polling cycle.  ``watched_labels`` optionally narrows the trigger
    to specific change-event labels.
    """
    labels = watched_labels or ["resource-changed", "item-inserted",
                                "item-changed", "item-deleted"]
    if len(labels) == 1:
        trigger = EAtom(QTerm(labels[0], (), False, False))
    else:
        from repro.events.queries import EOr

        trigger = EOr(*(EAtom(QTerm(label, (), False, False)) for label in labels))
    return eca(f"eca-from-{rule.name}", trigger, rule.action, if_=rule.condition)

"""Authentication, authorization, and accounting (Thesis 12).

The "three As" are non-functional requirements a reactive language should
support out of the box:

- :class:`Authenticator` — principals register credentials (shared-secret
  tokens or certificates issued by authorities); messages carry a
  credential term, verified before rules see the event.
- :class:`Authorizer` — rule-based access control: ``allow``/``deny`` facts
  and deductive rules over a policy base decide whether a principal may
  read a resource or invoke a service; wired into a node's GET guard.
- :class:`Accountant` — the dynamic one: accounting *reacts to* service
  requests ("double reactivity").  It installs an ordinary ECA rule that
  matches ``service-request`` events and persists a log entry; billing
  summaries aggregate the log with the ordinary construct language.  The
  accounting rules are orthogonal to the service rules — no
  meta-programming involved, exactly as the thesis observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.actions import Persist
from repro.core.engine import ReactiveEngine
from repro.core.rules import eca
from repro.deductive.base import TermBase
from repro.deductive.evaluation import BackwardEvaluator
from repro.deductive.rules import Program
from repro.errors import AuthenticationError, AuthorizationError
from repro.events.queries import EAtom
from repro.terms.ast import Bindings, Data, QTerm, Var
from repro.terms.parser import parse_construct, parse_query


# ---------------------------------------------------------------------------
# Authentication
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Certificate:
    """A certificate: an authority vouches for a subject."""

    subject: str
    authority: str
    claim: str = "member"

    def to_term(self) -> Data:
        return Data(
            "certificate",
            (Data("subject", (self.subject,)), Data("authority", (self.authority,)),
             Data("claim", (self.claim,))),
            False,
        )

    @staticmethod
    def from_term(term: Data) -> "Certificate":
        subject = term.first("subject")
        authority = term.first("authority")
        claim = term.first("claim")
        if term.label != "certificate" or subject is None or authority is None:
            raise AuthenticationError(f"malformed certificate term: {term!r}")
        return Certificate(
            str(subject.value),
            str(authority.value),
            str(claim.value) if claim is not None else "member",
        )


class Authenticator:
    """Verifies that principals are who they claim to be."""

    def __init__(self) -> None:
        self._secrets: dict[str, str] = {}
        self._trusted_authorities: set[str] = set()
        self.checks = 0

    def register(self, principal: str, secret: str) -> None:
        """Enrol a principal with a shared-secret token."""
        self._secrets[principal] = secret

    def trust_authority(self, authority: str) -> None:
        """Accept certificates issued by *authority*."""
        self._trusted_authorities.add(authority)

    def authenticate_token(self, principal: str, secret: str) -> str:
        """Check a token credential; returns the principal."""
        self.checks += 1
        if self._secrets.get(principal) != secret:
            raise AuthenticationError(f"bad credentials for {principal!r}")
        return principal

    def authenticate_certificate(self, certificate: Certificate) -> str:
        """Check a certificate credential; returns the subject."""
        self.checks += 1
        if certificate.authority not in self._trusted_authorities:
            raise AuthenticationError(
                f"authority {certificate.authority!r} is not trusted"
            )
        return certificate.subject

    def authenticate_term(self, credential: Data) -> str:
        """Authenticate a credential term carried in a message."""
        if credential.label == "token":
            principal = credential.first("principal")
            secret = credential.first("secret")
            if principal is None or secret is None:
                raise AuthenticationError("malformed token credential")
            return self.authenticate_token(str(principal.value), str(secret.value))
        if credential.label == "certificate":
            return self.authenticate_certificate(Certificate.from_term(credential))
        raise AuthenticationError(f"unknown credential kind {credential.label!r}")


# ---------------------------------------------------------------------------
# Authorization
# ---------------------------------------------------------------------------


class Authorizer:
    """Rule-based access control over a policy fact base.

    Facts: ``grant{principal[...], operation[...], resource[...]}`` and
    ``deny{...}`` with the same shape; either may use ``"*"`` wildcards.
    Deductive rules can derive grants (e.g. group membership); denies win.
    """

    def __init__(self, policy: "TermBase | None" = None,
                 rules: "Program | None" = None) -> None:
        self.policy = policy if policy is not None else TermBase()
        self._evaluator = BackwardEvaluator(rules, self.policy) if rules is not None else None
        self.decisions = 0
        self.denials = 0

    def grant(self, principal: str, operation: str, resource: str) -> None:
        self.policy.add(_access_fact("grant", principal, operation, resource))
        if self._evaluator is not None:
            self._evaluator.invalidate()

    def deny(self, principal: str, operation: str, resource: str) -> None:
        self.policy.add(_access_fact("deny", principal, operation, resource))
        if self._evaluator is not None:
            self._evaluator.invalidate()

    def _lookup(self, label: str, principal: str, operation: str, resource: str) -> bool:
        facts = (
            self._evaluator.facts(label)
            if self._evaluator is not None
            else self.policy.with_label(label)
        )
        for fact in facts:
            if (
                _field_matches(fact, "principal", principal)
                and _field_matches(fact, "operation", operation)
                and _field_matches(fact, "resource", resource)
            ):
                return True
        return False

    def allowed(self, principal: str, operation: str, resource: str) -> bool:
        """Deny-overrides decision for one access."""
        self.decisions += 1
        if self._lookup("deny", principal, operation, resource):
            self.denials += 1
            return False
        if self._lookup("grant", principal, operation, resource):
            return True
        self.denials += 1
        return False

    def check(self, principal: str, operation: str, resource: str) -> None:
        """Raise :class:`AuthorizationError` unless allowed."""
        if not self.allowed(principal, operation, resource):
            raise AuthorizationError(
                f"{principal!r} may not {operation} {resource}"
            )

    def guard_node_gets(self, node) -> None:
        """Install this authorizer as the node's GET guard."""
        node.guard_gets(lambda uri, requester: self.check(requester, "read", uri))


def _access_fact(label: str, principal: str, operation: str, resource: str) -> Data:
    return Data(
        label,
        (Data("principal", (principal,)), Data("operation", (operation,)),
         Data("resource", (resource,))),
        False,
    )


def _field_matches(fact: Data, label: str, value: str) -> bool:
    child = fact.first(label)
    if child is None or child.value is None:
        return False
    want = str(child.value)
    return want == "*" or want == value


# ---------------------------------------------------------------------------
# Accounting
# ---------------------------------------------------------------------------


class Accountant:
    """Accounting as reactive rules over service-request events.

    ``attach`` installs an ECA rule on the node's engine that reacts to
    ``service-request{principal[...], service[...], units[...]}`` events by
    persisting a log entry — the "double reactivity" of Thesis 12.  The
    service's own rules raise those events locally via :meth:`meter` (or
    any rule action), and stay entirely ignorant of the accounting rules.
    """

    LOG_URI_SUFFIX = "/accounting-log"

    def __init__(self, engine: ReactiveEngine) -> None:
        self.engine = engine
        self.log_uri = engine.node.uri + self.LOG_URI_SUFFIX
        self._attached = False

    def attach(self) -> None:
        """Install the accounting rule (idempotent)."""
        if self._attached:
            return
        self._attached = True
        rule = eca(
            "accounting/record",
            EAtom(parse_query(
                "service-request{{ principal[var P], service[var S], units[var U] }}"
            )),
            Persist(
                self.log_uri,
                parse_construct("entry{ principal[var P], service[var S], units[var U] }"),
                root_label="accounting",
            ),
        )
        self.engine.install(rule)

    def meter(self, principal: str, service: str, units: float = 1.0) -> None:
        """Raise a local service-request event (what service rules do)."""
        self.engine.node.raise_local(
            Data(
                "service-request",
                (Data("principal", (principal,)), Data("service", (service,)),
                 Data("units", (units,))),
                False,
            )
        )

    def bill(self) -> dict[str, float]:
        """Total units per principal, aggregated from the persisted log."""
        if self.log_uri not in self.engine.node.resources:
            return {}
        log = self.engine.node.resources.get(self.log_uri)
        totals: dict[str, float] = {}
        for entry in log.all("entry"):
            principal = entry.first("principal")
            units = entry.first("units")
            if principal is None or units is None:
                continue
            key = str(principal.value)
            totals[key] = totals.get(key, 0.0) + float(units.value)
        return totals

    def entries(self) -> int:
        """Number of log entries recorded so far."""
        if self.log_uri not in self.engine.node.resources:
            return 0
        return len(self.engine.node.resources.get(self.log_uri).all("entry"))

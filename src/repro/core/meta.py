"""Meta-programming: rules as data terms (Thesis 11).

Rules serialise to ordinary data terms and back — the same language
describes rules and data (meta-circularity), so rules can be carried in
event payloads, stored in resources, queried with the ordinary query
language, and installed on arrival with the ``InstallRule`` action.  This
is the mechanism behind reactive policy exchange (the paper's trust
negotiation scenario, reproduced in ``examples/trust_negotiation.py`` and
experiment E11).

Embedded query/construct terms are encoded in their textual syntax (the
parser round-trips, so this is loss-free); rule structure (event algebra,
conditions, actions) is encoded structurally so receivers can *query*
policies — e.g. "does this policy ever ask for my credit card number?".

Rules containing :class:`~repro.core.actions.PyAction` are not
serialisable and are refused with :class:`~repro.errors.MetaError`.
"""

from __future__ import annotations

from repro.core import actions as act
from repro.core import conditions as cond
from repro.core.rules import ECARule
from repro.errors import MetaError
from repro.events.queries import (
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EWithin,
)
from repro.terms.ast import Data, Var
from repro.terms.parser import parse_construct, parse_query, to_text


def _d(label: str, *children, **attrs) -> Data:
    return Data(label, tuple(children), True, tuple(sorted(attrs.items())))


def _uri_term(uri: "str | Var") -> Data:
    if isinstance(uri, Var):
        return _d("uri-var", uri.name)
    return _d("uri", uri)


def _uri_from(term: Data) -> "str | Var":
    if term.label == "uri-var":
        return Var(str(term.value))
    if term.label == "uri":
        return str(term.value)
    raise MetaError(f"expected uri/uri-var, got {term.label!r}")


# ---------------------------------------------------------------------------
# Event queries
# ---------------------------------------------------------------------------


def event_to_term(query) -> Data:
    if isinstance(query, EAtom):
        attrs = {"alias": query.alias} if query.alias else {}
        return _d("e-atom", to_text(query.pattern), **attrs)
    if isinstance(query, EAnd):
        return _d("e-and", *(event_to_term(m) for m in query.members))
    if isinstance(query, EOr):
        return _d("e-or", *(event_to_term(m) for m in query.members))
    if isinstance(query, ESeq):
        members = []
        for member in query.members:
            if isinstance(member, ENot):
                members.append(_d("e-not", to_text(member.pattern)))
            else:
                members.append(event_to_term(member))
        return _d("e-seq", *members)
    if isinstance(query, EWithin):
        return _d("e-within", event_to_term(query.query), float(query.window))
    if isinstance(query, ECount):
        return _d(
            "e-count",
            to_text(query.pattern),
            query.n,
            float(query.window),
            _d("group", *query.group_by),
        )
    if isinstance(query, EAggregate):
        children = [
            to_text(query.pattern),
            _d("on", query.on),
            _d("fn", query.fn),
            _d("into", query.into),
            _d("group", *query.group_by),
        ]
        if query.size is not None:
            children.append(_d("size", query.size))
        if query.window is not None:
            children.append(_d("window", float(query.window)))
        if query.predicate is not None:
            children.append(_d("predicate", query.predicate[0], float(query.predicate[1])))
        return _d("e-agg", *children)
    raise MetaError(f"cannot encode event query {query!r}")


def term_to_event(term: Data):
    if not isinstance(term, Data):
        raise MetaError(f"expected an event-query term, got {term!r}")
    if term.label == "e-atom":
        pattern = parse_query(str(term.children[0]))
        return EAtom(pattern, alias=term.attr("alias"))
    if term.label == "e-and":
        return EAnd(*(term_to_event(c) for c in term.children))
    if term.label == "e-or":
        return EOr(*(term_to_event(c) for c in term.children))
    if term.label == "e-seq":
        members = []
        for child in term.children:
            if isinstance(child, Data) and child.label == "e-not":
                members.append(ENot(parse_query(str(child.children[0]))))
            else:
                members.append(term_to_event(child))
        return ESeq(*members)
    if term.label == "e-within":
        return EWithin(term_to_event(term.children[0]), float(term.children[1]))
    if term.label == "e-count":
        pattern, n, window, group = term.children
        return ECount(parse_query(str(pattern)), int(n), float(window),
                      tuple(str(g) for g in group.children))
    if term.label == "e-agg":
        pattern = parse_query(str(term.children[0]))
        fields = {c.label: c for c in term.children[1:] if isinstance(c, Data)}
        predicate = None
        if "predicate" in fields:
            op, value = fields["predicate"].children
            predicate = (str(op), float(value))
        return EAggregate(
            pattern,
            str(fields["on"].value),
            str(fields["fn"].value),
            str(fields["into"].value),
            size=int(fields["size"].value) if "size" in fields else None,
            window=float(fields["window"].value) if "window" in fields else None,
            group_by=tuple(str(g) for g in fields["group"].children),
            predicate=predicate,
        )
    raise MetaError(f"unknown event-query encoding {term.label!r}")


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


def condition_to_term(condition) -> Data:
    if condition is None or isinstance(condition, cond.TrueCond):
        return _d("c-true")
    if isinstance(condition, cond.QueryCond):
        return _d("c-query", _uri_term(condition.uri), to_text(condition.query))
    if isinstance(condition, cond.NotCond):
        return _d("c-not", condition_to_term(condition.inner))
    if isinstance(condition, cond.AndCond):
        return _d("c-and", *(condition_to_term(m) for m in condition.members))
    if isinstance(condition, cond.OrCond):
        return _d("c-or", *(condition_to_term(m) for m in condition.members))
    if isinstance(condition, cond.CompareCond):
        return _d("c-cmp", to_text(condition.lhs), condition.op, to_text(condition.rhs))
    raise MetaError(f"cannot encode condition {condition!r}")


def term_to_condition(term: Data):
    if term.label == "c-true":
        return cond.TrueCond()
    if term.label == "c-query":
        uri, query = term.children
        return cond.QueryCond(_uri_from(uri), parse_query(str(query)))
    if term.label == "c-not":
        return cond.NotCond(term_to_condition(term.children[0]))
    if term.label == "c-and":
        return cond.AndCond(*(term_to_condition(c) for c in term.children))
    if term.label == "c-or":
        return cond.OrCond(*(term_to_condition(c) for c in term.children))
    if term.label == "c-cmp":
        lhs, op, rhs = term.children
        return cond.CompareCond(parse_construct(str(lhs)), str(op),
                                parse_construct(str(rhs)))
    raise MetaError(f"unknown condition encoding {term.label!r}")


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------


def action_to_term(action) -> Data:
    if isinstance(action, act.Raise):
        return _d("a-raise", _uri_term(action.to), to_text(action.term))
    if isinstance(action, act.Update):
        children = [_uri_term(action.uri), _d("target", to_text(action.target))]
        if action.payload is not None:
            children.append(_d("payload", to_text(action.payload)))
        return _d("a-update", *children, kind=action.kind, position=action.position,
                  require=str(action.require_effect).lower())
    if isinstance(action, act.PutResource):
        return _d("a-put", _uri_term(action.uri), to_text(action.content))
    if isinstance(action, act.DeleteResource):
        return _d("a-delete-resource", _uri_term(action.uri))
    if isinstance(action, act.Persist):
        return _d("a-persist", _uri_term(action.uri), to_text(action.content),
                  root=action.root_label)
    if isinstance(action, act.Sequence):
        return _d("a-seq", *(action_to_term(a) for a in action.actions),
                  atomic=str(action.atomic).lower())
    if isinstance(action, act.Alternative):
        return _d("a-alt", *(action_to_term(a) for a in action.actions))
    if isinstance(action, act.Conditional):
        children = [condition_to_term(action.condition), action_to_term(action.then)]
        if action.otherwise is not None:
            children.append(action_to_term(action.otherwise))
        return _d("a-cond", *children)
    if isinstance(action, act.CallProcedure):
        args = [_d("arg", name, to_text(value)) for name, value in action.args]
        return _d("a-call", action.name, *args)
    if isinstance(action, act.InstallRule):
        return _d("a-install", to_text(action.rule_term))
    if isinstance(action, act.UninstallRule):
        name = action.name if isinstance(action.name, str) else None
        if name is None:
            return _d("a-uninstall", _d("uri-var", action.name.name))
        return _d("a-uninstall", name)
    if isinstance(action, act.PyAction):
        raise MetaError(
            f"PyAction {action.label!r} is not serialisable; rules containing "
            "it cannot be exchanged"
        )
    raise MetaError(f"cannot encode action {action!r}")


def term_to_action(term: Data):
    if term.label == "a-raise":
        to, construct = term.children
        return act.Raise(_uri_from(to), parse_construct(str(construct)))
    if term.label == "a-update":
        uri = _uri_from(term.children[0])
        fields = {c.label: c for c in term.children[1:] if isinstance(c, Data)}
        payload = None
        if "payload" in fields:
            payload = parse_construct(str(fields["payload"].value))
        return act.Update(
            uri,
            term.attr("kind") or "insert",
            parse_query(str(fields["target"].value)),
            payload,
            term.attr("position") or "end",
            term.attr("require") == "true",
        )
    if term.label == "a-put":
        uri, construct = term.children
        return act.PutResource(_uri_from(uri), parse_construct(str(construct)))
    if term.label == "a-delete-resource":
        return act.DeleteResource(_uri_from(term.children[0]))
    if term.label == "a-persist":
        uri, construct = term.children
        return act.Persist(_uri_from(uri), parse_construct(str(construct)),
                           term.attr("root") or "log")
    if term.label == "a-seq":
        return act.Sequence(*(term_to_action(c) for c in term.children),
                            atomic=term.attr("atomic") != "false")
    if term.label == "a-alt":
        return act.Alternative(*(term_to_action(c) for c in term.children))
    if term.label == "a-cond":
        condition = term_to_condition(term.children[0])
        then = term_to_action(term.children[1])
        otherwise = term_to_action(term.children[2]) if len(term.children) > 2 else None
        return act.Conditional(condition, then, otherwise)
    if term.label == "a-call":
        name = str(term.children[0])
        args = tuple(
            (str(c.children[0]), parse_construct(str(c.children[1])))
            for c in term.children[1:]
            if isinstance(c, Data)
        )
        return act.CallProcedure(name, args)
    if term.label == "a-install":
        return act.InstallRule(parse_construct(str(term.children[0])))
    if term.label == "a-uninstall":
        child = term.children[0]
        if isinstance(child, Data):
            return act.UninstallRule(Var(str(child.value)))
        return act.UninstallRule(str(child))
    raise MetaError(f"unknown action encoding {term.label!r}")


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def rule_to_term(rule: ECARule) -> Data:
    """Encode a whole rule as a data term (the Thesis 11 exchange format)."""
    branches = []
    for branch_condition, branch_action in rule.branches:
        branches.append(
            _d("branch", condition_to_term(branch_condition), action_to_term(branch_action))
        )
    children = [_d("on", event_to_term(rule.event)), _d("branches", *branches)]
    if rule.otherwise is not None:
        children.append(_d("else", action_to_term(rule.otherwise)))
    return _d("eca-rule", *children, name=rule.name, firing=rule.firing)


def term_to_rule(term: Data) -> ECARule:
    """Decode a rule term; raises :class:`MetaError` on malformed input."""
    if not isinstance(term, Data) or term.label != "eca-rule":
        raise MetaError(f"not a rule term: {term!r}")
    name = term.attr("name")
    if not name:
        raise MetaError("rule term lacks a name attribute")
    on = term.first("on")
    branches_term = term.first("branches")
    if on is None or branches_term is None or not on.children:
        raise MetaError(f"rule {name!r} lacks on/branches")
    event = term_to_event(on.children[0])
    branches = []
    for branch in branches_term.children:
        if not isinstance(branch, Data) or len(branch.children) != 2:
            raise MetaError(f"malformed branch in rule {name!r}")
        branches.append(
            (term_to_condition(branch.children[0]), term_to_action(branch.children[1]))
        )
    otherwise_term = term.first("else")
    otherwise = (
        term_to_action(otherwise_term.children[0])
        if otherwise_term is not None and otherwise_term.children
        else None
    )
    return ECARule(name, event, tuple(branches), otherwise,
                   term.attr("firing") or "all")

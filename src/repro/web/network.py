"""Point-to-point message delivery with traffic accounting (Thesis 3).

Events are exchanged *directly* between Web sites in a push manner — no
central servers or super-peers.  The optional ``broker`` parameter models
the centralised architecture the paper argues against (every message is
relayed through one node), used by experiment E2 to measure the difference.

All traffic is accounted: message counts and payload bytes, per sender and
per receiver, so benchmarks can report exactly what the theses predict.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from urllib.parse import urlparse

from repro.errors import NodeNotFound, WebError
from repro.terms.ast import Data
from repro.terms.parser import to_text
from repro.web.scheduler import Scheduler


def authority(uri: str) -> str:
    """The scheme+authority part of a URI, identifying the owning node."""
    parsed = urlparse(uri)
    if not parsed.scheme or not parsed.netloc:
        raise WebError(f"not an absolute URI: {uri!r}")
    return f"{parsed.scheme}://{parsed.netloc}"


@dataclass(frozen=True)
class Message:
    """One network message: a term payload between two nodes."""

    src: str
    dst: str
    payload: Data
    kind: str = "event"  # event | request | response
    size: int = 0

    @staticmethod
    def of(src: str, dst: str, payload: Data, kind: str = "event") -> "Message":
        return Message(src, dst, payload, kind, len(to_text(payload)))


@dataclass
class TrafficStats:
    """Counters the push-vs-poll and choreography experiments report.

    ``rtt_charged`` accounts the simulated request/response latency of
    synchronous GETs (two latencies per fetch) — surfaced here (and thus
    via ``Simulation.stats``) instead of living as an ad-hoc attribute on
    the network.  Mutation is serialised by an internal lock so the
    counters stay coherent alongside the threaded shard executor's other
    shared-state locking (actions normally run on the scheduler thread,
    but the traffic ledger is shared by every node and layer).
    """

    messages: int = 0
    bytes: int = 0
    rtt_charged: float = 0.0
    sent_by: dict = field(default_factory=dict)
    received_by: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, message: Message) -> None:
        with self._lock:
            self.messages += 1
            self.bytes += message.size
            self.sent_by[message.src] = self.sent_by.get(message.src, 0) + 1
            self.received_by[message.dst] = \
                self.received_by.get(message.dst, 0) + 1

    def charge_rtt(self, latency: float) -> None:
        """Account one request/response round trip of simulated latency."""
        with self._lock:
            self.rtt_charged += 2 * latency

    def hotspot(self) -> tuple[str, int]:
        """The busiest node (by messages handled) — the E2 bottleneck metric."""
        load: dict[str, int] = {}
        for uri, count in self.sent_by.items():
            load[uri] = load.get(uri, 0) + count
        for uri, count in self.received_by.items():
            load[uri] = load.get(uri, 0) + count
        if not load:
            return ("", 0)
        uri = max(load, key=lambda u: (load[u], u))
        return (uri, load[uri])


class Network:
    """Delivers messages between registered nodes on the scheduler.

    Parameters
    ----------
    scheduler:
        The simulation clock.
    latency:
        One-way delivery latency in simulated seconds.
    broker:
        If set (a node URI), *all* event messages between distinct other
        nodes are relayed through this node: two hops, double latency, and
        the broker appears in the traffic stats of every exchange.
    """

    def __init__(self, scheduler: Scheduler, latency: float = 0.05,
                 broker: str | None = None) -> None:
        self.scheduler = scheduler
        self.latency = latency
        self.broker = broker
        self.stats = TrafficStats()
        self._nodes: dict[str, "object"] = {}
        # Per-simulation SOAP message ids: every envelope a node of this
        # network sends draws from here, so ids are dense and start at 1
        # for each fresh Simulation instead of leaking a process-global
        # count across instances (see repro.web.soap).
        self._message_ids = itertools.count(1)

    def next_message_id(self) -> int:
        """Allocate the next envelope message id of this simulation."""
        return next(self._message_ids)

    def register(self, node) -> None:
        """Attach a node; it becomes addressable by its URI authority."""
        key = authority(node.uri)
        if key in self._nodes:
            raise WebError(f"a node is already registered for {key}")
        self._nodes[key] = node

    def node_for(self, uri: str):
        """The node owning *uri* (by authority)."""
        node = self._nodes.get(authority(uri))
        if node is None:
            raise NodeNotFound(uri)
        return node

    def nodes(self) -> list:
        return list(self._nodes.values())

    def inbox_backlog(self) -> int:
        """Events queued across all registered nodes' inboxes but not yet
        dispatched — the network-wide backpressure signal (0 when every
        drain has caught up, always 0 under sync delivery)."""
        return sum(node.inbox_depth for node in self._nodes.values())

    # -- delivery ---------------------------------------------------------------

    def send(self, src: str, dst: str, payload: Data, kind: str = "event") -> None:
        """Send a message; delivery is scheduled after the latency."""
        if (
            self.broker is not None
            and kind == "event"
            and authority(src) != authority(self.broker)
            and authority(dst) != authority(self.broker)
        ):
            self._hop(src, self.broker, payload, kind,
                      lambda: self._hop(self.broker, dst, payload, kind, None))
            return
        self._hop(src, dst, payload, kind, None)

    def _hop(self, src: str, dst: str, payload: Data, kind: str,
             then) -> None:
        message = Message.of(src, dst, payload, kind)
        self.stats.record(message)
        target = self.node_for(dst)

        def deliver() -> None:
            target.receive(message)
            if then is not None:
                then()

        self.scheduler.after(self.latency, deliver)

    # -- synchronous request/response (documented simplification) ---------------

    def fetch(self, src: str, uri: str) -> Data:
        """Synchronous GET of a remote resource.

        Executes immediately in Python but is *accounted* as a request and a
        response message, and charges two latencies of simulated time to the
        pending reaction (see DESIGN.md).  Raises ``ResourceNotFound``
        through the remote node.
        """
        target = self.node_for(uri)
        content = target.serve_get(uri, requester=src)
        request = Message.of(src, uri, Data("get", (uri,)), "request")
        response = Message.of(uri, src, content, "response")
        self.stats.record(request)
        self.stats.record(response)
        self.charge_rtt()
        return content

    def charge_rtt(self) -> None:
        """Account one request/response round trip of simulated latency."""
        self.stats.charge_rtt(self.latency)

    @property
    def rtt_charged(self) -> float:
        """Total simulated round-trip latency charged (mirrors
        ``stats.rtt_charged``; kept for callers of the old attribute)."""
        return self.stats.rtt_charged

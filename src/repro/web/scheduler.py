"""Discrete-event simulation scheduler.

Every clock in the library reads from a :class:`Scheduler`: event
timestamps, message latencies, polling intervals, and absence deadlines.
Callbacks scheduled for the same instant run in scheduling order, which
makes whole-system runs fully deterministic and reproducible — a
prerequisite for the benchmark harness.

Two layers lean on the same-instant FIFO guarantee of :meth:`Scheduler.soon`:
node inbox drains (queued delivery processes a backlog at the enqueue
instant, so timestamps never shift) and the shard router's merge drains
(:mod:`repro.sharding`), whose re-yields between fairness batches must
land *after* everything already queued for the instant — that ordering is
what keeps batched sharded runs identical to unbatched ones.

The scheduler itself is **single-threaded by contract**: with the
threaded shard executor (``EngineConfig(executor="threads")``) worker
threads advance evaluators in parallel, but everything that touches the
clock — firing, wake-up registration, message delivery — happens on the
owning thread at the epoch barrier.  :meth:`Scheduler.at` enforces the
contract (it raises when called from a foreign thread) so a coordination
bug surfaces as a loud error instead of a heap race.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Callable

from repro.errors import WebError


class Scheduler:
    """A priority-queue event loop over simulated time."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self.executed = 0
        # The thread that owns this clock: bound lazily at the first
        # schedule and re-bound to whichever thread drives
        # run()/run_until() — so serial construct-here-drive-there use
        # stays legal.  Shard worker threads must never schedule directly
        # (the router defers their wake-ups to the barrier), and they are
        # exactly what this guard catches: workers only ever exist while
        # the owning thread is blocked inside a run loop it just bound.
        self._owner: "int | None" = None

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* at absolute simulated time *time*."""
        ident = threading.get_ident()
        if self._owner is None:
            self._owner = ident
        elif ident != self._owner:
            raise WebError(
                "scheduler is single-threaded: schedule from the owning "
                "(simulation) thread; shard workers must defer effects to "
                "the epoch barrier (repro.runtime)"
            )
        if time < self.now:
            raise WebError(f"cannot schedule in the past: {time} < {self.now}")
        heapq.heappush(self._queue, (time, next(self._sequence), callback))

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* after *delay* simulated seconds."""
        if delay < 0:
            raise WebError(f"negative delay: {delay}")
        self.at(self.now + delay, callback)

    def soon(self, callback: Callable[[], None]) -> None:
        """Schedule *callback* at the current instant, after everything
        already queued for this instant (used for inbox drains: time never
        advances, but control returns to the scheduler first)."""
        self.at(self.now, callback)

    def every(self, interval: float, callback: Callable[[], None],
              until: float | None = None) -> None:
        """Schedule *callback* periodically (first call after one interval)."""
        if interval <= 0:
            raise WebError(f"interval must be positive: {interval}")

        def tick() -> None:
            if until is not None and self.now > until:
                return
            callback()
            self.after(interval, tick)

        self.after(interval, tick)

    def recur(self, interval: float, callback: Callable[[], bool]) -> None:
        """Schedule *callback* periodically while it returns truthy.

        Unlike :meth:`every` (which reschedules unconditionally until an
        absolute ``until`` instant), a recurring task stops itself: the
        first tick whose callback returns falsy is the last, so a
        housekeeping timer — the ingestion tier's token-bucket expiry
        sweep is the canonical user — cannot keep :meth:`run` alive
        forever once the state it maintains is gone.  Re-arm by calling
        :meth:`recur` again when there is new state to maintain.
        """
        if interval <= 0:
            raise WebError(f"interval must be positive: {interval}")

        def tick() -> None:
            if callback():
                self.after(interval, tick)

        self.after(interval, tick)

    def pending(self) -> int:
        """Number of callbacks still queued."""
        return len(self._queue)

    def run_until(self, end: float) -> None:
        """Run all callbacks scheduled up to and including time *end*."""
        self._owner = threading.get_ident()  # the driving thread owns the clock
        while self._queue and self._queue[0][0] <= end:
            time, _, callback = heapq.heappop(self._queue)
            self.now = time
            self.executed += 1
            callback()
        self.now = max(self.now, end)

    def run(self, max_callbacks: int = 1_000_000) -> None:
        """Run until the queue drains (bounded against runaway loops)."""
        self._owner = threading.get_ident()  # the driving thread owns the clock
        remaining = max_callbacks
        while self._queue:
            if remaining <= 0:
                raise WebError(f"simulation exceeded {max_callbacks} callbacks")
            time, _, callback = heapq.heappop(self._queue)
            self.now = time
            self.executed += 1
            remaining -= 1
            callback()

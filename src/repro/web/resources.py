"""Versioned, URI-addressed persistent resources (Thesis 4's other half).

Persistent Web data is "like written text": retrievable on request,
modifiable in place, permanent until changed.  A :class:`ResourceStore`
holds a node's documents; every update bumps the document version and
notifies registered watchers — the hook both the polling baseline (version
comparison) and the identity monitor (Thesis 10 change events) build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import ResourceNotFound, WebError
from repro.terms.ast import Data

#: Watcher signature: (uri, old_root_or_None, new_root_or_None, version).
Watcher = Callable[[str, "Data | None", "Data | None", int], None]


@dataclass(frozen=True)
class Document:
    """One version of one resource."""

    uri: str
    root: Data
    version: int


class ResourceStore:
    """The persistent documents of one Web node."""

    def __init__(self) -> None:
        self._documents: dict[str, Document] = {}
        self._watchers: list[Watcher] = []
        self.reads = 0
        self.writes = 0

    def __contains__(self, uri: str) -> bool:
        return uri in self._documents

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def uris(self) -> list[str]:
        return list(self._documents)

    def watch(self, watcher: Watcher) -> None:
        """Register a change callback (fired on put/update/delete)."""
        self._watchers.append(watcher)

    def _notify(self, uri: str, old: "Data | None", new: "Data | None", version: int) -> None:
        for watcher in self._watchers:
            watcher(uri, old, new, version)

    # -- access -----------------------------------------------------------------

    def get(self, uri: str) -> Data:
        """The current root of the resource; raises if absent."""
        document = self._documents.get(uri)
        if document is None:
            raise ResourceNotFound(uri)
        self.reads += 1
        return document.root

    def version(self, uri: str) -> int:
        """Current version number (0 = never written)."""
        document = self._documents.get(uri)
        return document.version if document is not None else 0

    def document(self, uri: str) -> Document:
        document = self._documents.get(uri)
        if document is None:
            raise ResourceNotFound(uri)
        return document

    # -- modification --------------------------------------------------------------

    def put(self, uri: str, root: Data) -> Document:
        """Create or replace the resource content."""
        if not isinstance(root, Data):
            raise WebError(f"resource content must be a data term: {root!r}")
        old = self._documents.get(uri)
        version = (old.version if old else 0) + 1
        document = Document(uri, root, version)
        self._documents[uri] = document
        self.writes += 1
        self._notify(uri, old.root if old else None, root, version)
        return document

    def update(self, uri: str, transform: Callable[[Data], Data]) -> Document:
        """Apply a pure transformation to the resource root."""
        current = self.get(uri)
        self.reads -= 1  # internal read, not client traffic
        return self.put(uri, transform(current))

    def delete(self, uri: str) -> None:
        """Remove the resource; raises if absent."""
        old = self._documents.pop(uri, None)
        if old is None:
            raise ResourceNotFound(uri)
        self.writes += 1
        self._notify(uri, old.root, None, old.version + 1)

    # -- snapshots (transactions) ---------------------------------------------------

    def snapshot(self) -> dict[str, Document]:
        """A cheap copy of the current state (documents are immutable)."""
        return dict(self._documents)

    def restore(self, snapshot: dict[str, Document]) -> None:
        """Roll back to a snapshot (no watcher notifications: the
        transaction never happened)."""
        self._documents = dict(snapshot)

"""Versioned, URI-addressed persistent resources (Thesis 4's other half).

Persistent Web data is "like written text": retrievable on request,
modifiable in place, permanent until changed.  A :class:`ResourceStore`
holds a node's documents; every update bumps the document version and
notifies registered watchers — the hook both the polling baseline (version
comparison) and the identity monitor (Thesis 10 change events) build on.

Transactional visibility (Thesis 8)
-----------------------------------

Watcher notifications respect atomicity: while a
:class:`~repro.updates.transactions.Transaction` is open on the store,
notifications for its puts/deletes are *buffered* and only flushed — in
update order — when the outermost transaction commits.  A rollback
discards them, so observers (polling watchers, Thesis-10 identity
monitors) never see phantom ``resource-changed`` events for intermediate
states of an update that officially never happened.  Internal cache
invalidators that must track even uncommitted state (the engine's
deductive web views re-materialise lazily from whatever ``get`` returns)
register with ``watch(fn, immediate=True)``: they are called synchronously
on every mutation *and* on rollback, so a cache can never outlive the
state it was built from.

Versions are **monotonic per URI** across the resource's whole lifetime:
``delete`` announces ``old.version + 1`` and a later ``put`` of the same
URI continues counting from there instead of restarting at 1, so
version-based change detection never sees time run backwards.

Thread-safety: all mutation and snapshot/restore paths are serialised by
an internal re-entrant lock.  With the threaded shard executor
(``EngineConfig(executor="threads")``) actions only ever run on the
scheduler thread at the epoch barrier, but the store is the one structure
shared by every layer (engine actions, polling, identity monitors,
application callbacks), so it guards itself rather than trusting every
caller.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import ResourceNotFound, WebError
from repro.terms.ast import Data

#: Watcher signature: (uri, old_root_or_None, new_root_or_None, version).
Watcher = Callable[[str, "Data | None", "Data | None", int], None]


@dataclass(frozen=True)
class Document:
    """One version of one resource."""

    uri: str
    root: Data
    version: int


class ResourceStore:
    """The persistent documents of one Web node."""

    def __init__(self) -> None:
        self._documents: dict[str, Document] = {}
        self._watchers: list[Watcher] = []
        self._immediate_watchers: list[Watcher] = []
        self._lock = threading.RLock()
        # Monotonic version floor per URI: survives delete (and delete→put
        # re-creation), so announced versions never regress.  Floors are
        # never lowered — not even by a rollback: skipping numbers is
        # harmless, reusing them would break change detection.
        self._version_floor: dict[str, int] = {}
        # Transaction nesting depth and the notifications buffered while
        # one is open (flushed on outermost commit, discarded on rollback).
        self._tx_depth = 0
        self._tx_buffer: list[tuple] = []
        self.reads = 0
        self.writes = 0

    def __contains__(self, uri: str) -> bool:
        return uri in self._documents

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def uris(self) -> list[str]:
        return list(self._documents)

    def watch(self, watcher: Watcher, *, immediate: bool = False) -> None:
        """Register a change callback (fired on put/update/delete).

        Default watchers are *transactional*: inside a transaction their
        notifications are buffered and delivered only on commit (none on
        rollback).  ``immediate=True`` registers a cache-invalidation
        hook instead: called synchronously on every mutation — committed
        or not — and again when a rollback restores earlier state, so
        derived caches always track what ``get`` currently returns.
        """
        if immediate:
            self._immediate_watchers.append(watcher)
        else:
            self._watchers.append(watcher)

    def in_transaction(self) -> bool:
        """True while a transaction is open (notifications are buffered)."""
        return self._tx_depth > 0

    def _notify(self, uri: str, old: "Data | None", new: "Data | None",
                version: int) -> None:
        for watcher in self._immediate_watchers:
            watcher(uri, old, new, version)
        if self._tx_depth > 0:
            self._tx_buffer.append((uri, old, new, version))
            return
        # A mutation outside any transaction is its own (single-op) commit:
        # it hits the persistence seam first, then the watchers, exactly
        # like an outermost transactional flush.
        self._persist(((uri, old, new, version),))
        for watcher in self._watchers:
            watcher(uri, old, new, version)

    # -- transactions (driven by repro.updates.transactions) --------------------

    def _begin_buffering(self) -> int:
        """Open a (possibly nested) transaction scope; returns the buffer
        mark the matching :meth:`_end_buffering` truncates to on rollback."""
        with self._lock:
            self._tx_depth += 1
            return len(self._tx_buffer)

    def _end_buffering(self, mark: int, commit: bool) -> None:
        """Close one transaction scope.

        A rollback discards the scope's buffered notifications (the
        changes officially never happened); the *outermost* commit
        flushes whatever survived, in update order, to the transactional
        watchers.
        """
        with self._lock:
            if not commit:
                del self._tx_buffer[mark:]
            self._tx_depth -= 1
            if self._tx_depth > 0:
                return
            pending, self._tx_buffer = self._tx_buffer, []
            if pending:
                # Durability before visibility: the whole outermost
                # transaction is persisted as ONE commit (a durable backend
                # covers it with one fsync — group commit) while the lock
                # still serialises commit order; only then do transactional
                # watchers hear about it.
                self._persist(tuple(pending))
        for uri, old, new, version in pending:
            for watcher in self._watchers:
                watcher(uri, old, new, version)

    def _persist(self, ops) -> None:
        """Persistence seam: called with the committed operations of one
        outermost commit — ``(uri, old_root, new_root, version)`` tuples in
        update order, ``new_root is None`` for a delete — before any
        transactional watcher hears about them.  The in-memory store keeps
        nothing beyond the live documents, so this is a no-op; durable
        backends (:mod:`repro.store`) override it to append a
        write-ahead-log record.  Raising here propagates to the mutator —
        a commit that cannot be made durable is a failed commit."""

    def deliver_replayed(self) -> int:
        """Deliver recovery-replayed commit notifications; the number of
        commits delivered.  A purely in-memory store never has anything to
        replay, so this is a constant 0; a
        :class:`~repro.store.backend.DurableResourceStore` reopened over an
        existing log delivers each replayed commit to the currently
        registered transactional watchers *exactly once* (idempotent:
        later calls deliver nothing)."""
        return 0

    # -- access -----------------------------------------------------------------

    def get(self, uri: str) -> Data:
        """The current root of the resource; raises if absent."""
        document = self._documents.get(uri)
        if document is None:
            raise ResourceNotFound(uri)
        self.reads += 1
        return document.root

    def version(self, uri: str) -> int:
        """Current version number (0 = never written)."""
        document = self._documents.get(uri)
        return document.version if document is not None else 0

    def document(self, uri: str) -> Document:
        document = self._documents.get(uri)
        if document is None:
            raise ResourceNotFound(uri)
        return document

    # -- modification --------------------------------------------------------------

    def put(self, uri: str, root: Data) -> Document:
        """Create or replace the resource content."""
        if not isinstance(root, Data):
            raise WebError(f"resource content must be a data term: {root!r}")
        with self._lock:
            old = self._documents.get(uri)
            # The floor keeps versions monotonic across delete→put: a
            # re-created resource continues counting after the version the
            # delete announced instead of restarting at 1.
            version = max(old.version if old else 0,
                          self._version_floor.get(uri, 0)) + 1
            self._version_floor[uri] = version
            document = Document(uri, root, version)
            self._documents[uri] = document
            self.writes += 1
            self._notify(uri, old.root if old else None, root, version)
        return document

    def update(self, uri: str, transform: Callable[[Data], Data]) -> Document:
        """Apply a pure transformation to the resource root."""
        with self._lock:
            current = self.get(uri)
            self.reads -= 1  # internal read, not client traffic
            return self.put(uri, transform(current))

    def delete(self, uri: str) -> None:
        """Remove the resource; raises if absent."""
        with self._lock:
            old = self._documents.pop(uri, None)
            if old is None:
                raise ResourceNotFound(uri)
            version = max(old.version,
                          self._version_floor.get(uri, 0)) + 1
            self._version_floor[uri] = version
            self.writes += 1
            self._notify(uri, old.root, None, version)

    # -- snapshots (transactions) ---------------------------------------------------

    def snapshot(self) -> dict[str, Document]:
        """A cheap copy of the current state (documents are immutable)."""
        with self._lock:
            return dict(self._documents)

    def restore(self, snapshot: dict[str, Document]) -> None:
        """Roll back to a snapshot.

        Transactional watchers hear nothing (the rolled-back changes
        never happened; their buffered notifications are discarded by the
        transaction), but *immediate* watchers are re-notified for every
        URI whose content the restore changes back, so caches built from
        uncommitted intermediate state are invalidated rather than left
        describing documents that no longer exist.

        The version announced for a reverted URI is ``max(snapshot
        version, version floor)``: the rolled-back mutations burned
        version numbers an immediate watcher already heard (a delete
        announces ``old + 1`` the instant it happens), so re-announcing
        the snapshot document at its *recorded* version would make time
        run backwards for version-based change detection.  Floors are
        never lowered, so the announced version can only stay or rise.
        """
        with self._lock:
            before = self._documents
            self._documents = dict(snapshot)
            if not self._immediate_watchers:
                return
            reverted = []
            for uri in before.keys() | snapshot.keys():
                cur, snap = before.get(uri), snapshot.get(uri)
                if cur is not snap:
                    recorded = (snap.version if snap
                                else (cur.version if cur else 0))
                    reverted.append((
                        uri,
                        cur.root if cur else None,
                        snap.root if snap else None,
                        max(recorded, self._version_floor.get(uri, 0)),
                    ))
            for uri, old, new, version in reverted:
                for watcher in self._immediate_watchers:
                    watcher(uri, old, new, version)

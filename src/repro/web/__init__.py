"""Simulated Web substrate (Theses 2-3).

The paper's claims about reactivity *on the Web* — push vs. poll, local
rule processing vs. central coordination, event messages between sites —
are claims about message counts, bytes, and latency.  This package provides
a deterministic discrete-event simulation of the Web that makes those
quantities measurable:

- :class:`~repro.web.scheduler.Scheduler` — the simulation clock and event
  loop (all time in the library flows from here);
- :class:`~repro.web.network.Network` — point-to-point message delivery
  with a latency model and full traffic accounting; an optional broker
  topology models the centralised alternative Thesis 2 argues against;
- :mod:`repro.web.http` / :mod:`repro.web.soap` — the transport the paper
  builds on: GET/POST request-response and SOAP-style envelopes;
- :class:`~repro.web.node.WebNode` — a web site: persistent resources plus
  a locally processed rule base;
- :class:`~repro.web.resources.ResourceStore` — versioned, URI-addressed
  persistent documents with change notification;
- :class:`~repro.web.polling.PollingWatcher` — the pull-based baseline for
  experiment E3.
"""

from repro.web.http import Request, Response
from repro.web.network import Message, Network
from repro.web.node import Simulation, WebNode
from repro.web.polling import PollingWatcher
from repro.web.resources import Document, ResourceStore
from repro.web.scheduler import Scheduler
from repro.web.soap import Envelope

__all__ = [
    "Document",
    "Envelope",
    "Message",
    "Network",
    "PollingWatcher",
    "Request",
    "Response",
    "ResourceStore",
    "Scheduler",
    "Simulation",
    "WebNode",
]

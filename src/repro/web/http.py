"""Simulated HTTP: the request-response layer (GET/POST/PUT/DELETE).

The paper's infrastructure section singles out two HTTP methods: GET
(retrieve the resource identified by a URI) and POST (send data to a
resource); PUT and DELETE complete the uniform interface for resource
creation and removal.  All four are modelled as term-typed
request/response values over the simulated network.  Higher layers never
craft messages manually — they go through :meth:`WebNode.get` /
:meth:`WebNode.post` / :meth:`WebNode.put` / :meth:`WebNode.delete`, or
hand a whole :class:`Request` to :meth:`WebNode.handle_request` (the
ingestion tier's request entry point) — which is the point of Thesis 1:
HTTP is the substrate, not the programming model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WebError
from repro.terms.ast import Data


@dataclass(frozen=True)
class Request:
    """An HTTP request: method, target URI, optional term body."""

    method: str
    uri: str
    body: Data | None = None

    def __post_init__(self) -> None:
        if self.method not in ("GET", "POST", "PUT", "DELETE"):
            raise WebError(f"unsupported HTTP method {self.method!r}")
        if self.method == "GET" and self.body is not None:
            # Footnote 1 of the paper: sending data with GET is "against the
            # original philosophy of HTTP" — we enforce the philosophy.
            raise WebError("GET requests must not carry a body")

    def to_term(self) -> Data:
        children: tuple = (Data("uri", (self.uri,)),)
        if self.body is not None:
            children += (Data("body", (self.body,)),)
        return Data("http-request", children, True, (("method", self.method),))


@dataclass(frozen=True)
class Response:
    """An HTTP response: status code plus optional term body."""

    status: int
    body: Data | None = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def to_term(self) -> Data:
        children: tuple = (self.body,) if self.body is not None else ()
        return Data("http-response", children, True, (("status", str(self.status)),))


OK = 200
CREATED = 201
NO_CONTENT = 204
BAD_REQUEST = 400
UNAUTHORIZED = 401
FORBIDDEN = 403
NOT_FOUND = 404

"""Web nodes: sites that hold resources and process rules locally.

Thesis 2: reactive rules are processed *locally* at each Web site — each
node owns its rule base and decides which rules fire; global behaviour
emerges from event messages between nodes (choreography), never from a
central coordinator.  A :class:`WebNode` therefore bundles:

- a :class:`~repro.web.resources.ResourceStore` of persistent documents,
- an inbox for event messages (SOAP envelopes), dispatched to locally
  registered handlers (the rule engine attaches here),
- helpers to query local and remote resources (GET) and to push events to
  other nodes (the reactive counterpart of POST).

The ECA rule engine lives in :mod:`repro.core.engine` and attaches to a
node via :meth:`WebNode.on_event`; this module has no dependency on it.

Delivery model
--------------

Events are delivered through a per-node FIFO inbox, *not* on the sender's
stack.  :meth:`WebNode.receive` and :meth:`WebNode.raise_local` stamp the
event at the arrival instant, append it to the inbox, and schedule a
single *drain* callback at the current simulated instant; the drain pops
queued events in arrival order and runs every registered handler on each.
Consequences:

- a slow rule on one node can no longer stall the sender (or the whole
  network) mid-``raise``: the sender's action completes, and the
  receiver's handlers run when the scheduler reaches the drain;
- same-instant events on one node are processed strictly in arrival
  order, and simulated timestamps are identical to inline dispatch (the
  drain runs at the enqueue instant), so runs remain deterministic;
- events raised from inside a handler are processed *after* the current
  event's handlers finish (breadth-first), not recursively inside them;
- work outside the scheduler (installing rules, reading stats) observes
  events only after the next :meth:`Simulation.run` / ``run_until``.

``inbox_batch`` bounds how many events one drain processes (the remainder
is re-scheduled at the same instant — fairness between same-instant
callbacks, never a delay), and ``inbox_depth`` / ``inbox_peak`` expose
queue depth for backpressure accounting.  ``sync_delivery=True`` restores
the old inline dispatch; the engine keeps it available as the
:class:`~repro.core.engine.EngineConfig` ablation for experiment E14.

On a *sharded* node (``EngineConfig(shards=N)``) this inbox is the first
of two queue layers: the node's registered handler is a
:class:`~repro.sharding.ShardRouter`, which fans each drained event out
to per-shard FIFO inboxes and merge-drains those in global arrival order.
The node-level contract above is unchanged — arrival stamping, FIFO
order, and backpressure accounting happen here; the router only adds the
partitioning.  (``sync_delivery=True`` stays inline end-to-end: the
router drains the shard inboxes immediately inside the hand-off, so a
sync-raised event is processed nested inside the raising action exactly
as a single engine would.)

With ``executor="threads"`` the router's drain additionally becomes an
epoch: per-shard worker threads advance the shard engines in parallel
while the scheduler thread blocks at a barrier, then fire the collected
answers serially (see :mod:`repro.runtime`).  Nothing changes at this
layer — the node inbox, timestamps, and handler contract are identical,
and all node/resource/network mutation still happens on the scheduler
thread.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import ResourceNotFound, WebError
from repro.events.model import Event, make_event
from repro.terms.ast import Data
from repro.web import http
from repro.web.http import Request, Response
from repro.web.network import Message, Network, authority
from repro.web.resources import ResourceStore
from repro.web.scheduler import Scheduler
from repro.web.soap import Envelope

_UNSET = object()  # configure_delivery: "parameter omitted" (None is a value)


class WebNode:
    """One Web site in the simulation."""

    def __init__(self, uri: str, network: Network, *,
                 sync_delivery: bool = False,
                 inbox_batch: int | None = None) -> None:
        self.uri = authority(uri)
        self.network = network
        self.resources = ResourceStore()
        self._event_handlers: list[Callable[[Event], None]] = []
        self._get_guard: Callable[[str, str], None] | None = None
        self.events_received = 0
        self.events_sent = 0
        self._inbox: deque[Event] = deque()
        self._drain_scheduled = False
        self.inbox_peak = 0
        self.inbox_drains = 0
        self.configure_delivery(sync_delivery=sync_delivery,
                                inbox_batch=inbox_batch)
        network.register(self)

    @property
    def clock(self) -> Scheduler:
        return self.network.scheduler

    @property
    def now(self) -> float:
        return self.network.scheduler.now

    # -- handlers ---------------------------------------------------------------

    def on_event(self, handler: Callable[[Event], None]) -> None:
        """Register an inbox handler (the rule engine's entry point)."""
        self._event_handlers.append(handler)

    def guard_gets(self, guard: Callable[[str, str], None]) -> None:
        """Install an access guard for GETs: ``guard(uri, requester)``
        raises to deny (used by the AAA layer, Thesis 12)."""
        self._get_guard = guard

    # -- messaging ----------------------------------------------------------------

    def configure_delivery(self, *, sync_delivery: bool | None = None,
                           inbox_batch: "int | None | object" = _UNSET) -> None:
        """Tune event delivery: inline dispatch and/or per-drain batch size.

        Omitted parameters are left unchanged.  ``sync_delivery=True``
        dispatches events on the sender's stack (the pre-inbox behaviour,
        kept as an ablation); ``inbox_batch`` caps how many queued events
        one drain processes before yielding back to the scheduler
        (``None`` = drain the whole backlog)."""
        if sync_delivery is not None:
            self.sync_delivery = sync_delivery
        if inbox_batch is not _UNSET:
            if inbox_batch is not None and inbox_batch < 1:
                raise WebError(f"inbox_batch must be >= 1, got {inbox_batch}")
            self.inbox_batch = inbox_batch

    @property
    def inbox_depth(self) -> int:
        """Events queued but not yet dispatched (backpressure signal)."""
        return len(self._inbox)

    def receive(self, message: Message) -> None:
        """Network delivery callback: unwrap the envelope, enqueue the event."""
        if message.kind != "event":
            raise WebError(f"unexpected message kind {message.kind!r} in inbox")
        envelope = Envelope.from_term(message.payload)
        self.deliver(self.stamp_event(
            envelope.body,
            source=envelope.sender or message.src,
            sent_at=envelope.sent_at,
        ))

    def stamp_event(self, term: Data, *, source: str = "",
                    sent_at: "float | None" = None) -> Event:
        """Stamp *term* as an event arriving at this node *now*.

        The first half of the delivery seam the ingestion tier's admission
        controller builds on (:mod:`repro.ingest`): stamping and enqueueing
        are separate steps so a gateway can note the event's identity (for
        enqueue-to-fire latency accounting) before :meth:`deliver` hands it
        to the inbox.  ``sent_at`` is the sender's clock reading;
        `is not None`, not truthiness: an event sent at t=0.0 still
        occurred when it was sent, not when it arrived.
        """
        return make_event(
            term,
            self.now,
            source=source or self.uri,
            occurrence=(min(sent_at, self.now)
                        if sent_at is not None else self.now),
        )

    def deliver(self, event: Event) -> None:
        """Enqueue an already-stamped event (second half of the seam)."""
        self._deliver(event)

    def raise_event(self, to: str, term: Data) -> None:
        """Push an event message to another node (or to this node itself)."""
        envelope = Envelope(term, sender=self.uri, sent_at=self.now,
                            message_id=self.network.next_message_id())
        self.events_sent += 1
        self.network.send(self.uri, to, envelope.to_term(), "event")

    def raise_local(self, term: Data) -> None:
        """Enqueue an event for local handlers without network traffic.

        Used for events that originate at this node (resource changes,
        internal service-request events for accounting)."""
        self._deliver(make_event(term, self.now, source=self.uri))

    def _deliver(self, event: Event) -> None:
        self.events_received += 1
        # Inline dispatch never jumps a backlog: if queued events are still
        # waiting (delivery was switched to sync mid-run), this event lines
        # up behind them so arrival order survives the mode switch.
        if self.sync_delivery and not self._inbox:
            self._handle(event)
            return
        self._inbox.append(event)
        if len(self._inbox) > self.inbox_peak:
            self.inbox_peak = len(self._inbox)
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self.clock.soon(self._drain)

    def _drain(self) -> None:
        # Clear the flag first: handlers may enqueue further events, which
        # then schedule their own same-instant drain rather than being lost.
        self._drain_scheduled = False
        self.inbox_drains += 1
        budget = self.inbox_batch if self.inbox_batch is not None else len(self._inbox)
        try:
            while budget > 0 and self._inbox:
                budget -= 1
                self._handle(self._inbox.popleft())
        finally:
            # Re-schedule on the batch limit AND on a handler exception:
            # a failing rule must not strand the rest of the backlog.
            if self._inbox and not self._drain_scheduled:
                self._drain_scheduled = True
                self.clock.soon(self._drain)

    def _handle(self, event: Event) -> None:
        for handler in list(self._event_handlers):
            handler(event)

    # -- resource access ---------------------------------------------------------

    def serve_get(self, uri: str, requester: str) -> Data:
        """Serve a GET from another node (access-guarded)."""
        if self._get_guard is not None:
            self._get_guard(uri, requester)
        return self.resources.get(uri)

    def get(self, uri: str) -> Data:
        """Read a resource: local directly, remote over the network."""
        if authority(uri) == self.uri:
            return self.resources.get(uri)
        return self.network.fetch(self.uri, uri)

    def put(self, uri: str, root: Data) -> None:
        """Write a local resource (remote writes go through events)."""
        if authority(uri) != self.uri:
            raise WebError(
                f"{self.uri} cannot write {uri} directly; "
                "remote updates are requested via events (Thesis 2)"
            )
        self.resources.put(uri, root)

    def delete(self, uri: str) -> None:
        """Delete a local resource (remote deletes go through events)."""
        if authority(uri) != self.uri:
            raise WebError(
                f"{self.uri} cannot delete {uri} directly; "
                "remote updates are requested via events (Thesis 2)"
            )
        self.resources.delete(uri)

    def post(self, uri: str, body: Data) -> None:
        """POST *body* to the resource's owning node, as an event message.

        Thesis 1's reading of POST — "send data to a resource" — is
        exactly the reactive push: the body travels as an event envelope
        to the node owning *uri* and lands in its inbox like any other
        event (rules there decide what the data means for the resource).
        """
        self.raise_event(authority(uri), body)

    def handle_request(self, request: Request) -> Response:
        """Serve one simulated HTTP request against this node.

        The full method set of :class:`repro.web.http.Request`, mapped
        onto the node's primitives — the entry point the ingestion tier
        and examples use to exercise GET/POST/PUT/DELETE end to end:

        - ``GET`` reads the resource (access-guarded like
          :meth:`serve_get`); 404 when absent;
        - ``PUT`` creates (201) or replaces (204) the resource;
        - ``DELETE`` removes it (204); 404 when absent;
        - ``POST`` enqueues the body as a local event (204; 400 without a
          body — there is nothing to deliver).

        PUT/DELETE against a URI this node does not own are refused with
        403: remote updates travel as events (Thesis 2), never as direct
        writes.
        """
        if request.method == "GET":
            try:
                return Response(http.OK, self.serve_get(request.uri, self.uri))
            except ResourceNotFound:
                return Response(http.NOT_FOUND)
        if request.method == "POST":
            if request.body is None:
                return Response(http.BAD_REQUEST)
            self.deliver(self.stamp_event(request.body))
            return Response(http.NO_CONTENT)
        if authority(request.uri) != self.uri:
            return Response(http.FORBIDDEN)
        if request.method == "PUT":
            if request.body is None:
                return Response(http.BAD_REQUEST)
            created = request.uri not in self.resources
            self.resources.put(request.uri, request.body)
            return Response(http.CREATED if created else http.NO_CONTENT)
        # DELETE (Request.__post_init__ admits no other method)
        try:
            self.resources.delete(request.uri)
        except ResourceNotFound:
            return Response(http.NOT_FOUND)
        return Response(http.NO_CONTENT)


class Simulation:
    """Facade bundling a scheduler and a network; entry point of the library.

    >>> sim = Simulation()
    >>> shop = sim.node("http://shop.example")
    >>> customer = sim.node("http://customer.example")
    >>> customer_uri = customer.uri
    """

    def __init__(self, latency: float = 0.05, broker: str | None = None) -> None:
        self.scheduler = Scheduler()
        self.network = Network(self.scheduler, latency=latency, broker=broker)

    @property
    def now(self) -> float:
        return self.scheduler.now

    def node(self, uri: str) -> WebNode:
        """Create and register a node for the given URI authority."""
        return WebNode(uri, self.network)

    def reactive_node(self, uri: str, config=None):
        """Create a node with an attached rule engine, behind one facade.

        *config* is an optional :class:`~repro.core.engine.EngineConfig`.
        Returns a :class:`~repro.api.ReactiveNode`; the bare parts remain
        available as its ``node`` and ``engine`` attributes.
        """
        from repro.api import ReactiveNode  # deferred: keeps this module engine-free

        return ReactiveNode(self.node(uri), config)

    def run_until(self, end: float) -> None:
        self.scheduler.run_until(end)

    def run(self, max_callbacks: int = 1_000_000) -> None:
        self.scheduler.run(max_callbacks)

    @property
    def stats(self):
        return self.network.stats

"""Web nodes: sites that hold resources and process rules locally.

Thesis 2: reactive rules are processed *locally* at each Web site — each
node owns its rule base and decides which rules fire; global behaviour
emerges from event messages between nodes (choreography), never from a
central coordinator.  A :class:`WebNode` therefore bundles:

- a :class:`~repro.web.resources.ResourceStore` of persistent documents,
- an inbox for event messages (SOAP envelopes), dispatched to locally
  registered handlers (the rule engine attaches here),
- helpers to query local and remote resources (GET) and to push events to
  other nodes (the reactive counterpart of POST).

The ECA rule engine lives in :mod:`repro.core.engine` and attaches to a
node via :meth:`WebNode.on_event`; this module has no dependency on it.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import WebError
from repro.events.model import Event, make_event
from repro.terms.ast import Data
from repro.web.network import Message, Network, authority
from repro.web.resources import ResourceStore
from repro.web.scheduler import Scheduler
from repro.web.soap import Envelope


class WebNode:
    """One Web site in the simulation."""

    def __init__(self, uri: str, network: Network) -> None:
        self.uri = authority(uri)
        self.network = network
        self.resources = ResourceStore()
        self._event_handlers: list[Callable[[Event], None]] = []
        self._get_guard: Callable[[str, str], None] | None = None
        self.events_received = 0
        self.events_sent = 0
        network.register(self)

    @property
    def clock(self) -> Scheduler:
        return self.network.scheduler

    @property
    def now(self) -> float:
        return self.network.scheduler.now

    # -- handlers ---------------------------------------------------------------

    def on_event(self, handler: Callable[[Event], None]) -> None:
        """Register an inbox handler (the rule engine's entry point)."""
        self._event_handlers.append(handler)

    def guard_gets(self, guard: Callable[[str, str], None]) -> None:
        """Install an access guard for GETs: ``guard(uri, requester)``
        raises to deny (used by the AAA layer, Thesis 12)."""
        self._get_guard = guard

    # -- messaging ----------------------------------------------------------------

    def receive(self, message: Message) -> None:
        """Network delivery callback: unwrap the envelope, build the event."""
        if message.kind != "event":
            raise WebError(f"unexpected message kind {message.kind!r} in inbox")
        envelope = Envelope.from_term(message.payload)
        self.events_received += 1
        event = make_event(
            envelope.body,
            self.now,
            source=envelope.sender or message.src,
            occurrence=min(envelope.sent_at, self.now) if envelope.sent_at else self.now,
        )
        for handler in list(self._event_handlers):
            handler(event)

    def raise_event(self, to: str, term: Data) -> None:
        """Push an event message to another node (or to this node itself)."""
        envelope = Envelope(term, sender=self.uri, sent_at=self.now)
        self.events_sent += 1
        self.network.send(self.uri, to, envelope.to_term(), "event")

    def raise_local(self, term: Data) -> None:
        """Dispatch an event to local handlers without network traffic.

        Used for events that originate at this node (resource changes,
        internal service-request events for accounting)."""
        event = make_event(term, self.now, source=self.uri)
        self.events_received += 1
        for handler in list(self._event_handlers):
            handler(event)

    # -- resource access ---------------------------------------------------------

    def serve_get(self, uri: str, requester: str) -> Data:
        """Serve a GET from another node (access-guarded)."""
        if self._get_guard is not None:
            self._get_guard(uri, requester)
        return self.resources.get(uri)

    def get(self, uri: str) -> Data:
        """Read a resource: local directly, remote over the network."""
        if authority(uri) == self.uri:
            return self.resources.get(uri)
        return self.network.fetch(self.uri, uri)

    def put(self, uri: str, root: Data) -> None:
        """Write a local resource (remote writes go through events)."""
        if authority(uri) != self.uri:
            raise WebError(
                f"{self.uri} cannot write {uri} directly; "
                "remote updates are requested via events (Thesis 2)"
            )
        self.resources.put(uri, root)


class Simulation:
    """Facade bundling a scheduler and a network; entry point of the library.

    >>> sim = Simulation()
    >>> shop = sim.node("http://shop.example")
    >>> customer = sim.node("http://customer.example")
    >>> customer_uri = customer.uri
    """

    def __init__(self, latency: float = 0.05, broker: str | None = None) -> None:
        self.scheduler = Scheduler()
        self.network = Network(self.scheduler, latency=latency, broker=broker)

    @property
    def now(self) -> float:
        return self.scheduler.now

    def node(self, uri: str) -> WebNode:
        """Create and register a node for the given URI authority."""
        return WebNode(uri, self.network)

    def reactive_node(self, uri: str, config=None):
        """Create a node with an attached rule engine, behind one facade.

        *config* is an optional :class:`~repro.core.engine.EngineConfig`.
        Returns a :class:`~repro.api.ReactiveNode`; the bare parts remain
        available as its ``node`` and ``engine`` attributes.
        """
        from repro.api import ReactiveNode  # deferred: keeps this module engine-free

        return ReactiveNode(self.node(uri), config)

    def run_until(self, end: float) -> None:
        self.scheduler.run_until(end)

    def run(self, max_callbacks: int = 1_000_000) -> None:
        self.scheduler.run(max_callbacks)

    @property
    def stats(self):
        return self.network.stats

"""Polling: the pull-based change-detection baseline (Thesis 3).

    "Periodical polling, where interested Web sites retrieve remote Web
    resources periodically to check if an event has happened, is less
    favorable, since it causes more network traffic, increases reaction
    time, and requires more local resources."

A :class:`PollingWatcher` periodically GETs a remote resource, compares its
content with the last seen version, and synthesises a change event locally
when they differ.  Experiment E3 sweeps event rates against poll intervals
and reports exactly the three costs the thesis names: traffic (messages and
bytes, accounted by the network), reaction time (change-to-detection
delay), and local resource use (poll invocations).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ResourceNotFound
from repro.terms.ast import Data, canonical_str
from repro.web.node import WebNode


class PollingWatcher:
    """Detects remote resource changes by periodic comparison."""

    def __init__(
        self,
        node: WebNode,
        target_uri: str,
        interval: float,
        on_change: "Callable[[str, Data, float], None] | None" = None,
        until: float | None = None,
    ) -> None:
        self.node = node
        self.target_uri = target_uri
        self.interval = interval
        self.on_change = on_change
        self.polls = 0
        self.changes_detected = 0
        #: Ground-truth changes polling provably never saw: recorded via
        #: :meth:`record_change` but still undetected one full poll
        #: interval later (an A→B→A flip between polls, or a change
        #: folded into the first poll's baseline).  The E3 "polling
        #: misses changes" cost, now measured instead of silently
        #: corrupting the delay metric below.
        self.changes_missed = 0
        self.detection_delays: list[float] = []
        self._last_seen: str | None = None
        self._change_times: list[float] = []
        node.clock.every(interval, self.poll, until=until)

    def record_change(self, time: float) -> None:
        """Tell the watcher when a real change happened (ground truth for
        the reaction-time metric; the workload driver calls this)."""
        self._change_times.append(time)

    def poll(self) -> None:
        """One poll: GET, compare, synthesise a change event if different."""
        self.polls += 1
        try:
            current = self.node.get(self.target_uri)
        except ResourceNotFound:
            return
        fingerprint = canonical_str(current)
        changed = self._last_seen is not None and fingerprint != self._last_seen
        self._last_seen = fingerprint
        if not changed:
            return
        self.changes_detected += 1
        now = self.node.now
        # A recorded change older than one full interval was already
        # visible to the *previous* poll; if it went undetected there, the
        # poll saw no fingerprint difference (an A→B→A flip between
        # polls, or a pre-baseline change) and this detection cannot be
        # attributed to it.  Without the expiry those stale entries
        # inflate the next unrelated detection's delay; with it they are
        # counted as what they are — changes polling missed.
        stale_before = now - self.interval
        while self._change_times and self._change_times[0] < stale_before:
            self._change_times.pop(0)
            self.changes_missed += 1
        while self._change_times and self._change_times[0] <= now:
            self.detection_delays.append(now - self._change_times.pop(0))
        if self.on_change is not None:
            self.on_change(self.target_uri, current, now)
        else:
            self.node.raise_local(
                Data(
                    "resource-changed",
                    (Data("uri", (self.target_uri,)), Data("at", (now,))),
                    False,
                )
            )

    @property
    def mean_detection_delay(self) -> float:
        """Average change-to-detection delay observed so far."""
        if not self.detection_delays:
            return 0.0
        return sum(self.detection_delays) / len(self.detection_delays)

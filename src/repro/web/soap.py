"""SOAP-style envelopes: the message format for event exchange.

Following the paper's description of SOAP, an envelope has a *header*
(metadata about the message: when it was sent, by whom, a message id) and a
*body* (the application payload).  Envelopes are themselves data terms, so
they can be queried with the ordinary query language — which is how event
queries extract both payload data and message metadata.

Message-id scoping: an :class:`Envelope` constructed standalone draws its
id from a process-global counter (convenient for ad-hoc envelopes and
doctests), but envelopes created *by a node* (``WebNode.raise_event``,
the ingestion transport) draw from their simulation's own counter
(:meth:`repro.web.network.Network.next_message_id`), so ids are dense and
deterministic per :class:`~repro.web.node.Simulation` — envelope-level
assertions in one test can never depend on how many messages an earlier
test happened to send.  :func:`reset_message_ids` re-seeds the global
default for code that needs determinism without a simulation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import WebError
from repro.terms.ast import Data

_message_ids = itertools.count(1)


def reset_message_ids(start: int = 1) -> None:
    """Re-seed the process-global id counter standalone envelopes use.

    Simulation-owned envelopes are unaffected (each
    :class:`~repro.web.network.Network` allocates its own dense sequence);
    this seam exists for tests and scripts that build bare envelopes and
    want reproducible ids.
    """
    global _message_ids
    _message_ids = itertools.count(start)


@dataclass(frozen=True)
class Envelope:
    """A SOAP-style message envelope around a term payload."""

    body: Data
    sender: str = ""
    sent_at: float = 0.0
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def to_term(self) -> Data:
        """Encode as ``envelope{header{...}, body{...}}``."""
        header = Data(
            "header",
            (
                Data("sender", (self.sender,)),
                Data("sent-at", (self.sent_at,)),
                Data("message-id", (self.message_id,)),
            ),
            False,
        )
        return Data("envelope", (header, Data("body", (self.body,), True)), True)

    @staticmethod
    def from_term(term: Data) -> "Envelope":
        """Decode an envelope term; raises :class:`WebError` if malformed."""
        if term.label != "envelope":
            raise WebError(f"not an envelope: {term.label!r}")
        header = term.first("header")
        body = term.first("body")
        if header is None or body is None or not body.children:
            raise WebError("envelope must contain header and non-empty body")
        payload = body.children[0]
        if not isinstance(payload, Data):
            raise WebError("envelope body must be a data term")
        sender = header.first("sender")
        sent_at = header.first("sent-at")
        message_id = header.first("message-id")
        return Envelope(
            payload,
            str(sender.value) if sender is not None and sender.value is not None else "",
            float(sent_at.value) if sent_at is not None and sent_at.value is not None else 0.0,
            int(message_id.value) if message_id is not None and message_id.value is not None else 0,
        )

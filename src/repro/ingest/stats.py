"""Ingestion-tier accounting: admission counters and latency tracking.

The front door's contract is *measured*, not assumed: every event offered
to the gateway ends up in exactly one of the admission counters below, and
every event that reaches rule processing contributes one enqueue-to-fire
latency sample.  ``IngestStats`` is the one object benchmarks and the
:attr:`repro.api.ReactiveNode.stats` facade read.

Latency is measured in *simulated* seconds — from the instant admission
accepted the event (``admitted_at``) to the instant the node's handlers
(the rule engine among them) processed it.  Immediate rule firings happen
inside that handler call at the same simulated instant, so for answers
that do not involve absence deadlines this is exactly the enqueue-to-fire
latency; deadline-delayed absence answers fire later *by the semantics of
the query*, which is a property of the rule, not of the front door, and
is deliberately not charged to ingestion.  Using the simulated clock
keeps the numbers deterministic and machine-independent, like every other
latency the benchmarks report (e.g. E3's push-vs-poll delay).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields


class LatencyRecorder:
    """Streaming latency samples with deterministic percentile snapshots.

    Keeps every sample by default (exact percentiles; a million floats is
    ~8 MB).  With ``max_samples`` set it degrades to reservoir sampling —
    seeded, so two identical runs keep identical reservoirs — while count,
    mean, and max stay exact.
    """

    def __init__(self, max_samples: "int | None" = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._samples: list[float] = []
        self._rng = random.Random(0x1A7E)  # deterministic reservoir

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        if self.max_samples is None or len(self._samples) < self.max_samples:
            self._samples.append(seconds)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.max_samples:
            self._samples[slot] = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0-100) of the recorded samples.

        Nearest-rank on the sorted samples: deterministic, and exact when
        no reservoir cap is set.  0.0 with no samples.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def snapshot(self) -> dict:
        """p50/p99/max/mean/count in one dict (the benchmark row shape)."""
        return {
            "count": self.count,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
            "max": self.max,
            "mean": self.mean,
        }


@dataclass
class IngestStats:
    """Counters of one :class:`~repro.ingest.admission.IngestGateway`.

    Admission outcomes (every offered event lands in exactly one):

    - ``admitted`` — accepted into the in-memory admission queues
      (events that overflowed to disk land in ``spilled`` instead);
    - ``rejected`` — refused because the backlog stood at the high-water
      mark under the ``reject`` policy (the sender hears about it: the
      loopback client returns ``False``, the socket server acks ``-``);
    - ``dropped`` — admitted earlier but evicted as the *oldest* queued
      event to make room under the ``drop-oldest`` policy;
    - ``rate_limited`` — refused because the sender's token bucket was
      empty (counted separately from ``rejected``: it is the sender's
      rate, not the node's backlog, that said no);
    - ``malformed`` — wire-level rejects: frames that failed to decode
      into an event envelope (truncated/oversized frames, undecodable
      text, non-envelope payloads).  Counted here and raised as
      :class:`~repro.errors.FrameError`; the transport answers the client
      and keeps serving.

    Overflow-to-disk bookkeeping:

    - ``spilled`` — events written to the spill file at admission because
      the in-memory backlog stood at the high-water mark (``spill``
      policy);
    - ``spill_replayed`` — spilled events read back and queued once the
      backlog drained (equals ``spilled`` after a run completes);
    - ``spill_recovered`` — spilled events found on disk at gateway
      *construction* and queued for replay: with a configured
      ``spill_dir`` the spill file is named and fsync'd per record, so a
      backlog that was on disk when the process died survives into the
      next gateway on the same directory (at-least-once: records already
      replayed but not yet truncated may be recovered again).

    Service accounting:

    - ``delivered`` — events the pump moved into the node inbox;
    - ``fired`` — events whose enqueue-to-fire latency was recorded (the
      node's handlers ran; equals ``delivered`` once the scheduler has
      drained);
    - ``pump_rounds`` — weighted-fair dequeue rounds taken;
    - ``senders_tracked`` / ``senders_expired`` — live per-sender state
      (queues, token buckets) and how many idle senders the expiry timer
      reclaimed (:meth:`repro.web.scheduler.Scheduler.recur`);
    - ``backlog`` / ``backlog_peak`` — gauge: events queued at the front
      door (excluding spilled-to-disk) now, and the high-water reading.

    ``latency`` is the enqueue-to-fire :class:`LatencyRecorder`; read
    percentiles via ``stats.latency.percentile(99)`` or the
    ``latency.snapshot()`` dict.  Dict-style access works for the counter
    fields (``stats["admitted"]``), mirroring ``EngineStats``.
    """

    admitted: int = 0
    rejected: int = 0
    dropped: int = 0
    rate_limited: int = 0
    malformed: int = 0
    spilled: int = 0
    spill_replayed: int = 0
    spill_recovered: int = 0
    delivered: int = 0
    fired: int = 0
    pump_rounds: int = 0
    senders_tracked: int = 0
    senders_expired: int = 0
    backlog: int = 0
    backlog_peak: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)

    def __getitem__(self, key: str):
        if key not in _INGEST_STATS_FIELDS:
            raise KeyError(key)
        return getattr(self, key)

    @property
    def shed(self) -> int:
        """Everything load management turned away: rejected + dropped +
        rate-limited (spilled events are deferred, not shed)."""
        return self.rejected + self.dropped + self.rate_limited


_INGEST_STATS_FIELDS = frozenset(field_.name for field_ in fields(IngestStats))

"""The ingestion tier: a measured front door for event streams.

The paper's nodes consume events "pushed" to them, but the seed repo's
only push path was hand delivery straight into the node inbox — no wire
format, no backpressure, no answer to "how long did an accepted event
wait before its rules ran?".  This package adds the tier between the
outside world and :class:`~repro.web.node.WebNode`:

- :mod:`repro.ingest.wire` — the framed wire protocol (length-prefixed
  textual envelope terms) with a hard robustness contract;
- :mod:`repro.ingest.admission` — the admission controller: high-water
  backpressure with pluggable overflow policies (``reject`` /
  ``drop-oldest`` / ``spill`` to disk), per-sender token-bucket rate
  limiting, and a weighted-fair (deficit-round-robin) pump into the node
  inbox;
- :mod:`repro.ingest.stats` — admission counters plus deterministic
  enqueue-to-fire latency percentiles, in simulated seconds;
- :mod:`repro.ingest.transport` — an in-process loopback client and an
  asyncio socket server speaking the wire protocol.

Layering: this package sits *beside* the web layer (it imports
``repro.web``, ``repro.terms``, ``repro.errors``) and knows nothing about
the rule engine; the engine facade (:class:`repro.api.ReactiveNode`)
wires a gateway onto a node when ``EngineConfig(ingest=...)`` asks for
one.  With no gateway configured, nothing here runs — the hand-delivery
path is untouched.
"""

from repro.ingest.admission import IngestConfig, IngestGateway
from repro.ingest.stats import IngestStats, LatencyRecorder
from repro.ingest.transport import AsyncIngestServer, LoopbackClient
from repro.ingest.wire import (
    MAX_FRAME,
    FrameDecoder,
    decode_payload,
    encode_event,
    frame,
    unframe,
)

__all__ = [
    "IngestConfig",
    "IngestGateway",
    "IngestStats",
    "LatencyRecorder",
    "AsyncIngestServer",
    "LoopbackClient",
    "MAX_FRAME",
    "FrameDecoder",
    "decode_payload",
    "encode_event",
    "frame",
    "unframe",
]

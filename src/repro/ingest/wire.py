"""The framed wire protocol of the ingestion tier.

One event on the wire is one *frame*: a 4-byte big-endian length prefix
followed by that many bytes of UTF-8 text — the textual serialisation
(:func:`repro.terms.parser.to_text`, the same round-trip-safe surface the
rule-language serialiser in :mod:`repro.lang.serializer` builds on) of a
SOAP-style :class:`~repro.web.soap.Envelope` term::

    envelope{ header{ sender[...], sent-at[...], message-id[...] },
              body{ <event term> } }

Reusing the textual term surface means the wire format gets the parser's
round-trip guarantee for free (property-tested in
``tests/ingest/test_wire.py``), stays human-readable in a packet dump,
and can carry *any* serialisable event term — including, one day, rule
terms for Thesis-11 rule shipping.

Robustness contract: every malformed input — a truncated length prefix,
a frame longer than ``max_frame``, bytes that are not UTF-8, text that is
not a term, a term that is not an envelope — raises
:class:`~repro.errors.FrameError` (a :class:`~repro.errors.WebError`).
The transport catches it, counts it in
:class:`~repro.ingest.stats.IngestStats.malformed`, and keeps serving;
nothing on the wire can crash the server.
"""

from __future__ import annotations

import struct

from repro.errors import FrameError
from repro.terms.ast import Data
from repro.terms.parser import parse_data, to_text
from repro.web.soap import Envelope

#: Default ceiling on one frame's payload size (1 MiB).  A length prefix
#: above the ceiling is rejected *before* buffering, so a hostile or
#: corrupt prefix cannot make the server allocate unbounded memory.
MAX_FRAME = 1 << 20

_PREFIX = struct.Struct(">I")


def frame(payload: bytes, max_frame: int = MAX_FRAME) -> bytes:
    """Wrap *payload* in a length-prefixed frame."""
    if len(payload) > max_frame:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame ceiling"
        )
    return _PREFIX.pack(len(payload)) + payload


def encode_event(term: Data, *, sender: str = "", sent_at: float = 0.0,
                 message_id: "int | None" = None,
                 max_frame: int = MAX_FRAME) -> bytes:
    """Encode one event term as a framed envelope (what clients send).

    ``message_id=None`` lets :class:`~repro.web.soap.Envelope` allocate
    from its standalone counter; pass an id (e.g. from
    :meth:`repro.web.network.Network.next_message_id`) for per-simulation
    dense numbering.
    """
    if message_id is None:
        envelope = Envelope(term, sender=sender, sent_at=sent_at)
    else:
        envelope = Envelope(term, sender=sender, sent_at=sent_at,
                            message_id=message_id)
    return frame(to_text(envelope.to_term()).encode("utf-8"), max_frame)


def decode_payload(payload: bytes) -> Envelope:
    """Decode one frame's payload back into an :class:`Envelope`.

    Raises :class:`FrameError` for anything that is not the UTF-8 text of
    an envelope term wrapping a data-term body.
    """
    try:
        text = payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FrameError(f"frame payload is not UTF-8: {exc}") from exc
    try:
        term = parse_data(text)
    except Exception as exc:  # ParseError and friends — all malformed wire
        raise FrameError(f"frame payload is not a term: {exc}") from exc
    if not isinstance(term, Data):
        raise FrameError(f"frame payload is a bare scalar, not an envelope")
    try:
        return Envelope.from_term(term)
    except Exception as exc:  # WebError("not an envelope: ...") et al.
        raise FrameError(f"frame payload is not an event envelope: {exc}") from exc


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    Feed it whatever chunks the transport produces; it returns the
    complete frame payloads found so far and buffers the rest.  A length
    prefix above ``max_frame`` is a fatal framing error — the stream
    cannot be resynchronised, so the connection should be closed — but
    frames completed *before* the bad prefix in the same chunk are not
    lost: they are returned, and the :class:`FrameError` is raised on the
    next :meth:`feed` or :meth:`finish` call (immediately, when nothing
    preceded it).  :meth:`finish` also raises if the stream ended
    mid-frame (a truncated length prefix or payload).
    """

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._error: "FrameError | None" = None

    def feed(self, data: bytes) -> list[bytes]:
        """Buffer *data*; return every frame payload completed by it."""
        if self._error is not None:
            raise self._error
        self._buffer.extend(data)
        payloads: list[bytes] = []
        while len(self._buffer) >= _PREFIX.size:
            (length,) = _PREFIX.unpack_from(self._buffer)
            if length > self.max_frame:
                self._error = FrameError(
                    f"declared frame length {length} exceeds the "
                    f"{self.max_frame}-byte frame ceiling"
                )
                if payloads:
                    return payloads  # deferred: raised on the next call
                raise self._error
            if len(self._buffer) < _PREFIX.size + length:
                break
            payloads.append(bytes(self._buffer[_PREFIX.size:_PREFIX.size + length]))
            del self._buffer[:_PREFIX.size + length]
        return payloads

    @property
    def pending(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._error is not None:
            raise self._error
        if self._buffer:
            raise FrameError(
                f"stream ended mid-frame with {len(self._buffer)} buffered "
                "byte(s) (truncated length prefix or payload)"
            )


def unframe(data: bytes, max_frame: int = MAX_FRAME) -> list[bytes]:
    """Split a complete byte string into its frame payloads.

    Convenience for tests and file-based replay: a one-shot
    :class:`FrameDecoder` run that also checks the final boundary.
    """
    decoder = FrameDecoder(max_frame)
    payloads = decoder.feed(data)
    decoder.finish()
    return payloads

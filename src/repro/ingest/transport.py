"""Transports: how event frames reach the admission controller.

Two front doors share one :class:`~repro.ingest.admission.IngestGateway`:

- :class:`LoopbackClient` — an in-process client for benchmarks, tests,
  and docs.  With the default ``codec="wire"`` every event is *actually*
  encoded to framed bytes and decoded back (the full serialise → frame →
  unframe → parse path a socket client would exercise), so loopback
  numbers include wire-format cost; ``codec="object"`` skips the bytes
  and offers the term directly — the ablation that isolates codec
  overhead in ``benchmarks/bench_e18_ingestion.py``.
- :class:`AsyncIngestServer` — a real asyncio socket server speaking the
  framed protocol of :mod:`repro.ingest.wire`.  Each accepted frame is
  offered to the gateway and (optionally) acknowledged with one byte:
  ``+`` admitted, ``-`` refused by load management (rejected or
  rate-limited), ``!`` malformed.  Malformed *payloads* (undecodable
  text, non-envelope terms) are counted and answered without dropping
  the connection; malformed *framing* (an oversized length prefix, a
  stream truncated mid-frame) is unrecoverable — the counter is bumped
  and the connection closed — but the server itself keeps serving.

Clock note: the server accepts bytes in real time, but admission stamps
and pump scheduling use the node's *simulated* clock.  Events offered
while the scheduler is parked simply queue at the instant ``node.now``;
the next :meth:`~repro.web.node.Simulation.run` pumps them through the
inbox and fires rules.  Tests drive this as: serve traffic with asyncio,
then ``sim.run()`` to observe the firings.
"""

from __future__ import annotations

import asyncio

from repro.errors import FrameError
from repro.ingest import wire
from repro.ingest.admission import IngestGateway
from repro.terms.ast import Data
from repro.terms.parser import parse_data


class LoopbackClient:
    """An in-process sender bound to one gateway (see module docstring)."""

    def __init__(self, gateway: IngestGateway, sender: str = "",
                 codec: str = "wire") -> None:
        if codec not in ("wire", "object"):
            raise FrameError(f"unknown loopback codec {codec!r} "
                             "(expected 'wire' or 'object')")
        self.gateway = gateway
        self.sender = sender
        self.codec = codec

    def send(self, term: "Data | str", *, sent_at: "float | None" = None) -> bool:
        """Offer one event term; True iff admission accepted it.

        Surface-syntax strings are parsed, like everywhere on the facade.
        """
        if isinstance(term, str):
            term = parse_data(term)
        gateway = self.gateway
        if self.codec == "object":
            return gateway.offer(term, sender=self.sender, sent_at=sent_at)
        node = gateway.node
        data = wire.encode_event(
            term,
            sender=self.sender,
            sent_at=sent_at if sent_at is not None else node.now,
            message_id=node.network.next_message_id(),
            max_frame=gateway.config.max_frame,
        )
        admitted = True
        for payload in wire.unframe(data, gateway.config.max_frame):
            admitted = gateway.offer_payload(payload) and admitted
        return admitted


class AsyncIngestServer:
    """A framed-protocol asyncio server in front of one gateway.

    >>> server = AsyncIngestServer(gateway)          # doctest: +SKIP
    >>> host, port = await server.start()            # doctest: +SKIP
    ... # clients connect and stream frames; acks flow back
    >>> await server.stop()                          # doctest: +SKIP
    """

    def __init__(self, gateway: IngestGateway, host: str = "127.0.0.1",
                 port: int = 0, *, ack: bool = True) -> None:
        self.gateway = gateway
        self.host = host
        self.port = port
        self.ack = ack
        self.connections = 0
        self._server: "asyncio.base_events.Server | None" = None

    async def start(self) -> "tuple[str, int]":
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        gateway = self.gateway
        decoder = wire.FrameDecoder(gateway.config.max_frame)
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    try:
                        decoder.finish()  # truncated / broken framing?
                    except FrameError:
                        gateway.count_malformed()
                        await self._answer(writer, b"!")
                    break
                try:
                    payloads = decoder.feed(chunk)
                except FrameError:
                    # Framing is broken; the stream cannot resync.  Count,
                    # answer, close this connection — the server lives on.
                    gateway.count_malformed()
                    await self._answer(writer, b"!")
                    break
                for payload in payloads:
                    try:
                        admitted = gateway.offer_payload(payload)
                    except FrameError:
                        # Payload-level garbage: counted by the gateway;
                        # the framing is intact, so keep the connection.
                        await self._answer(writer, b"!")
                        continue
                    await self._answer(writer, b"+" if admitted else b"-")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # the peer may already be gone

    async def _answer(self, writer: asyncio.StreamWriter, byte: bytes) -> None:
        if not self.ack:
            return
        writer.write(byte)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # ack to a closed peer is best-effort


async def send_frames(host: str, port: int, frames: "list[bytes]",
                      *, expect_acks: bool = True) -> bytes:
    """Test/demo helper: connect, stream raw *frames*, collect acks.

    Returns the raw ack bytes (one per frame when the server acks and the
    framing survived; fewer if the server closed the connection early).
    """
    reader, writer = await asyncio.open_connection(host, port)
    acks = b""
    try:
        for chunk in frames:
            writer.write(chunk)
        await writer.drain()
        writer.write_eof()
        while expect_acks:
            byte = await reader.read(1)
            if not byte:
                break
            acks += byte
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return acks

"""Admission control: the gate between the transport and the node inbox.

The existing delivery path hands events straight to
:meth:`repro.web.node.WebNode.deliver` — fine for hand-built scenarios,
hopeless as a front door: one hot sender can bury the inbox, a burst has
no ceiling, and nobody can say how long an accepted event waited before
its rules ran.  The :class:`IngestGateway` puts a measured queueing stage
in front of the inbox:

1. **Admission** (:meth:`IngestGateway.offer`): the event passes the
   sender's token bucket (per-sender rate limiting), then the backlog
   check against the configured high-water mark.  At the mark, the
   configured overflow policy decides: ``reject`` refuses the new event,
   ``drop-oldest`` evicts the oldest queued event to make room, and
   ``spill`` writes the new event to a disk file to be replayed when the
   backlog drains.  Every outcome is counted in
   :class:`~repro.ingest.stats.IngestStats`.
2. **Service** (the *pump*): a scheduler callback dequeues admitted
   events in weighted-fair order — deficit round robin over the
   per-sender queues, each round moving at most ``pump_batch`` events
   (defaulting to the node's ``inbox_batch`` budget) into the node inbox
   every ``drain_interval`` simulated seconds.  The pair models a bounded
   service rate, which is what makes overflow policies *mean* something:
   arrival above capacity grows the backlog until the high-water mark
   engages the policy.
3. **Accounting**: each event is stamped at admission; when the node's
   handlers (the rule engine) process it, the gateway records the
   enqueue-to-fire latency in simulated seconds (see
   :mod:`repro.ingest.stats` for why immediate firings coincide with the
   handler instant, sharded or not).

Nothing here changes the node's delivery contract — the pump uses the
same :meth:`~repro.web.node.WebNode.stamp_event` /
:meth:`~repro.web.node.WebNode.deliver` seam the network path uses, and a
node without a gateway (``EngineConfig(ingest=None)``, the default) is
bit-for-bit the pre-ingestion code path.

Housekeeping rides the scheduler: token buckets refill lazily from the
simulated clock, and an optional recurring sweep
(:meth:`repro.web.scheduler.Scheduler.recur`) expires per-sender state
idle longer than ``idle_expiry`` — the sweep stops itself when no state
remains, so it never keeps ``Simulation.run`` alive artificially.
"""

from __future__ import annotations

import os
import tempfile
from collections import deque
from dataclasses import dataclass

from repro.errors import IngestError
from repro.ingest import wire
from repro.ingest.stats import IngestStats, LatencyRecorder
from repro.terms.ast import Data
from repro.terms.parser import to_text

_POLICIES = ("drop-oldest", "reject", "spill")


@dataclass(frozen=True)
class IngestConfig:
    """Everything configurable about one node's ingestion gateway.

    Passed as ``EngineConfig(ingest=IngestConfig(...))`` — the facade
    builds the :class:`IngestGateway` and exposes it as
    ``ReactiveNode.ingest``.

    **Backpressure**

    - ``high_water`` — in-memory admission backlog at which the overflow
      policy engages (events queued at the front door, not yet pumped
      into the node inbox).
    - ``policy`` — what happens to an arrival at the mark:
      ``"reject"`` (refuse it; the sender is told), ``"drop-oldest"``
      (evict the oldest queued event, admit the new one), or ``"spill"``
      (append it to a disk file; replayed in arrival order once the
      backlog drains — note that while spilled events are pending, *all*
      new arrivals spill too, so disk never reorders the stream).
    - ``spill_dir`` — directory for the spill file.  ``None`` (default):
      an anonymous file in the platform temp dir that vanishes with the
      gateway — spilled events are *deferred*, not durable.  A directory
      makes the spill **durable**: the file is named
      (``<spill_dir>/ingest-spill.wal``), every record is fsync'd as it
      is written, and a gateway constructed over the same directory
      *recovers* whatever backlog was on disk when the last process
      died — records are counted in ``stats.spill_recovered``, a torn
      trailing record (a crash mid-append) is truncated away, and the
      recovered events replay through the normal pump in arrival order.
      Replay is at-least-once: the file is only truncated once fully
      drained, so a crash mid-replay recovers already-redelivered
      records again.

    **Rate limiting and fairness**

    - ``rate`` — per-sender token refill rate in events per simulated
      second (``None``: unlimited).  Buckets refill lazily from the
      clock; an empty bucket refuses the event (``rate_limited``).
    - ``burst`` — bucket capacity: how many events a quiet sender may
      land at one instant before its rate applies.
    - ``weights`` — per-sender service weights for the fair dequeue
      (missing senders get ``1.0``).  A sender with weight 2 is served
      two events for every one of a weight-1 sender while both are
      backlogged; no sender starves.

    **Service rate**

    - ``pump_batch`` — events one pump round moves into the node inbox
      (``None``: the node's ``inbox_batch``, or the whole backlog if
      that is unset too).
    - ``drain_interval`` — simulated seconds between pump rounds.  ``0.0``
      pumps at the same instant (control still returns to the scheduler
      first, like an inbox drain); together with ``pump_batch`` a
      positive interval models a bounded service rate — the knob
      benchmarks turn to create overload.

    **Housekeeping and wire limits**

    - ``idle_expiry`` — reclaim a sender's state (queue slot, token
      bucket) after this many simulated seconds without traffic
      (``None``: keep state forever).  Runs on a self-stopping
      recurring scheduler sweep.
    - ``max_frame`` — wire-level ceiling on one frame's payload bytes.
    - ``latency_samples`` — cap the latency reservoir (``None``: keep
      every sample; exact percentiles).
    """

    high_water: int = 1024
    policy: str = "reject"
    spill_dir: "str | None" = None
    rate: "float | None" = None
    burst: float = 16.0
    weights: "dict[str, float] | None" = None
    pump_batch: "int | None" = None
    drain_interval: float = 0.0
    idle_expiry: "float | None" = None
    max_frame: int = wire.MAX_FRAME
    latency_samples: "int | None" = None

    def __post_init__(self) -> None:
        if self.high_water < 1:
            raise IngestError(f"high_water must be >= 1, got {self.high_water}")
        if self.policy not in _POLICIES:
            raise IngestError(
                f"unknown overflow policy {self.policy!r} (expected one of "
                f"{', '.join(_POLICIES)})"
            )
        if self.rate is not None and self.rate <= 0:
            raise IngestError(f"rate must be positive, got {self.rate}")
        if self.burst < 1:
            raise IngestError(f"burst must be >= 1, got {self.burst}")
        for sender, weight in (self.weights or {}).items():
            if weight <= 0:
                raise IngestError(
                    f"weight for {sender!r} must be positive, got {weight}"
                )
        if self.pump_batch is not None and self.pump_batch < 1:
            raise IngestError(f"pump_batch must be >= 1, got {self.pump_batch}")
        if self.drain_interval < 0:
            raise IngestError(
                f"drain_interval must be >= 0, got {self.drain_interval}"
            )
        if self.idle_expiry is not None and self.idle_expiry <= 0:
            raise IngestError(
                f"idle_expiry must be positive, got {self.idle_expiry}"
            )
        if self.max_frame < 8:
            raise IngestError(f"max_frame must be >= 8, got {self.max_frame}")
        if self.latency_samples is not None and self.latency_samples < 1:
            raise IngestError(
                f"latency_samples must be >= 1, got {self.latency_samples}"
            )


# Pending lifecycle markers (plain ints: cheap, and tombstones let
# drop-oldest evict via the global arrival deque without O(n) queue scans).
_QUEUED, _DELIVERED, _DROPPED = 0, 1, 2


class _Pending:
    """One admitted event waiting at the front door."""

    __slots__ = ("term", "sender", "sent_at", "admitted_at", "state")

    def __init__(self, term, sender, sent_at, admitted_at) -> None:
        self.term = term
        self.sender = sender
        self.sent_at = sent_at
        self.admitted_at = admitted_at
        self.state = _QUEUED


class _SenderState:
    """Per-sender queue, token bucket, and fairness bookkeeping."""

    __slots__ = ("queue", "tokens", "refilled_at", "last_seen", "credit")

    def __init__(self, now: float, burst: float) -> None:
        self.queue: deque[_Pending] = deque()
        self.tokens = burst
        self.refilled_at = now
        self.last_seen = now
        self.credit = 0.0


class IngestGateway:
    """The admission controller of one node (see the module docstring).

    Construct via ``EngineConfig(ingest=IngestConfig(...))`` — or
    directly, ``IngestGateway(node, config)``, for a bare
    :class:`~repro.web.node.WebNode`.
    """

    def __init__(self, node, config: "IngestConfig | None" = None) -> None:
        self.node = node
        self.config = config if config is not None else IngestConfig()
        self.stats = IngestStats(
            latency=LatencyRecorder(self.config.latency_samples))
        self._senders: dict[str, _SenderState] = {}
        self._active: deque[str] = deque()  # senders with queued events
        self._arrivals: deque[_Pending] = deque()  # global FIFO (drop-oldest)
        self._backlog = 0
        self._pump_scheduled = False
        self._expiry_armed = False
        self._inflight: dict[int, float] = {}  # event id -> admitted_at
        self._spill_file = None
        self._spill_backlog = 0
        self._spill_read = 0
        self._spill_write = 0
        # A configured spill_dir names the spill file and makes it durable
        # (fsync per record) — so a backlog left by a dead process is
        # recoverable.  Recover it before the first offer.
        self._spill_path = (
            os.path.join(self.config.spill_dir, "ingest-spill.wal")
            if self.config.spill_dir is not None else None)
        if self._spill_path is not None:
            self._recover_spill()
        # Registered after the engine (the facade builds the gateway last),
        # so by the time this hook sees an event its immediate answers have
        # fired — the enqueue-to-fire instant.
        node.on_event(self._record_fire)

    # -- admission ------------------------------------------------------------

    def offer(self, term: Data, *, sender: str = "",
              sent_at: "float | None" = None) -> bool:
        """Offer one event to the front door; True iff it was admitted.

        ``False`` means load management turned it away (rate-limited or
        rejected at the high-water mark) — the counters say which.  A
        spilled event returns ``True``: it is deferred to disk, not shed.
        """
        now = self.node.now
        state = self._sender_state(sender, now)
        state.last_seen = now
        if not self._take_token(state, now):
            self.stats.rate_limited += 1
            return False
        config = self.config
        if config.policy == "spill" and (
                self._spill_backlog or self._backlog >= config.high_water):
            self._spill(term, sender, sent_at, now)
            self._schedule_pump()
            return True
        if self._backlog >= config.high_water:
            if config.policy == "reject":
                self.stats.rejected += 1
                return False
            self._drop_oldest()
        pending = _Pending(term, sender, sent_at, now)
        if not state.queue:
            self._active.append(sender)
        state.queue.append(pending)
        self._arrivals.append(pending)
        self._backlog += 1
        self.stats.admitted += 1
        self.stats.backlog = self._backlog
        if self._backlog > self.stats.backlog_peak:
            self.stats.backlog_peak = self._backlog
        self._schedule_pump()
        return True

    def offer_payload(self, payload: bytes) -> bool:
        """Wire-level admission: decode one frame payload, then offer.

        Malformed payloads are counted and re-raised as
        :class:`~repro.errors.FrameError`; the transport answers the
        client and keeps the server alive.
        """
        try:
            envelope = wire.decode_payload(payload)
        except IngestError:
            self.stats.malformed += 1
            raise
        return self.offer(envelope.body, sender=envelope.sender,
                          sent_at=envelope.sent_at)

    def count_malformed(self) -> None:
        """Account one wire-level reject detected by the transport
        (framing errors surface in the reader loop, before a payload
        exists for :meth:`offer_payload` to see)."""
        self.stats.malformed += 1

    @property
    def backlog(self) -> int:
        """Events queued in memory at the front door (spill excluded)."""
        return self._backlog

    @property
    def spill_backlog(self) -> int:
        """Events parked in the spill file, not yet replayed."""
        return self._spill_backlog

    # -- sender state ---------------------------------------------------------

    def _sender_state(self, sender: str, now: float) -> _SenderState:
        state = self._senders.get(sender)
        if state is None:
            state = _SenderState(now, self.config.burst)
            self._senders[sender] = state
            self.stats.senders_tracked = len(self._senders)
            self._arm_expiry()
        return state

    def _take_token(self, state: _SenderState, now: float) -> bool:
        rate = self.config.rate
        if rate is None:
            return True
        elapsed = now - state.refilled_at
        if elapsed > 0:
            state.tokens = min(self.config.burst, state.tokens + elapsed * rate)
            state.refilled_at = now
        if state.tokens >= 1.0:
            state.tokens -= 1.0
            return True
        return False

    def _arm_expiry(self) -> None:
        expiry = self.config.idle_expiry
        if expiry is None or self._expiry_armed:
            return
        self._expiry_armed = True
        self.node.clock.recur(expiry, self._expire_idle)

    def _expire_idle(self) -> bool:
        """The recurring sweep: reclaim idle sender state; keep ticking
        only while any state remains (so an idle gateway goes quiet)."""
        horizon = self.node.now - self.config.idle_expiry
        idle = [sender for sender, state in self._senders.items()
                if not state.queue and state.last_seen <= horizon]
        for sender in idle:
            del self._senders[sender]
        self.stats.senders_expired += len(idle)
        self.stats.senders_tracked = len(self._senders)
        if self._senders:
            return True
        self._expiry_armed = False
        return False

    # -- overflow policies ----------------------------------------------------

    def _drop_oldest(self) -> None:
        arrivals = self._arrivals
        while arrivals and arrivals[0].state != _QUEUED:
            arrivals.popleft()  # tombstones of delivered/dropped events
        if not arrivals:  # backlog accounting says this cannot happen
            raise IngestError("drop-oldest found no queued event to evict")
        oldest = arrivals.popleft()
        oldest.state = _DROPPED
        self._backlog -= 1
        self.stats.dropped += 1
        self.stats.backlog = self._backlog

    def _recover_spill(self) -> None:
        """Adopt the spill file a dead process left in ``spill_dir``.

        Counts the complete framed records on disk (a torn trailing
        record — the append a crash interrupted — is truncated away; it
        was never fsync'd, so its event was never acknowledged) and
        queues them for replay through the normal pump path.
        """
        try:
            size = os.path.getsize(self._spill_path)
        except OSError:
            return  # no file: nothing spilled, or a clean full drain
        if size == 0:
            return
        file = open(self._spill_path, "r+b")
        data = file.read()
        records, valid_end = 0, 0
        while True:
            remaining = len(data) - valid_end
            if remaining < 4:
                break
            length = int.from_bytes(data[valid_end:valid_end + 4], "big")
            if length > self.config.max_frame or remaining < 4 + length:
                break
            valid_end += 4 + length
            records += 1
        if valid_end < len(data):
            file.truncate(valid_end)
            file.flush()
            os.fsync(file.fileno())
        if records == 0:
            file.close()
            return
        self._spill_file = file
        self._spill_backlog = records
        self._spill_read = 0
        self._spill_write = valid_end
        self.stats.spill_recovered = records
        self._schedule_pump()

    def _spill(self, term, sender, sent_at, admitted_at) -> None:
        if self._spill_file is None:
            if self._spill_path is not None:
                self._spill_file = open(self._spill_path, "w+b")
            else:
                self._spill_file = tempfile.TemporaryFile(
                    dir=self.config.spill_dir, prefix="repro-ingest-")
        children = [Data("sender", (sender,)),
                    Data("admitted-at", (admitted_at,))]
        if sent_at is not None:
            children.append(Data("sent-at", (sent_at,)))
        children.append(Data("body", (term,), True))
        record = wire.frame(
            to_text(Data("spill", tuple(children), False)).encode("utf-8"),
            self.config.max_frame,
        )
        self._spill_file.seek(self._spill_write)
        self._spill_file.write(record)
        self._spill_write = self._spill_file.tell()
        if self._spill_path is not None:
            # Durable spill: the event is only "deferred, not shed" if it
            # survives a crash — fsync before the offer() acknowledges.
            self._spill_file.flush()
            os.fsync(self._spill_file.fileno())
        self._spill_backlog += 1
        self.stats.spilled += 1

    def _replay_spill(self, budget: int) -> None:
        """Read up to *budget* spilled records back into the queues."""
        from repro.terms.parser import parse_data

        file = self._spill_file
        replayed = 0
        while replayed < budget and self._spill_backlog:
            file.seek(self._spill_read)
            prefix = file.read(4)
            length = int.from_bytes(prefix, "big")
            record = parse_data(file.read(length).decode("utf-8"))
            self._spill_read = file.tell()
            self._spill_backlog -= 1
            replayed += 1
            sender_term = record.first("sender")
            sent_term = record.first("sent-at")
            sender = str(sender_term.value) if sender_term is not None else ""
            sent_at = float(sent_term.value) if sent_term is not None else None
            admitted_term = record.first("admitted-at")
            pending = _Pending(record.first("body").children[0], sender,
                               sent_at, float(admitted_term.value))
            state = self._sender_state(sender, self.node.now)
            if not state.queue:
                self._active.append(sender)
            state.queue.append(pending)
            self._arrivals.append(pending)
            self._backlog += 1
            self.stats.spill_replayed += 1
        self.stats.backlog = self._backlog
        if self._backlog > self.stats.backlog_peak:
            self.stats.backlog_peak = self._backlog
        if not self._spill_backlog:
            # Fully drained: release the file (a fresh one is created on
            # the next overload episode) so a long run neither grows the
            # file without bound nor leaks the descriptor.  The named
            # (durable) spill is truncated first — every record was
            # redelivered, so leaving them would make the *next* gateway
            # recover a backlog that no longer exists.
            if self._spill_path is not None:
                file.truncate(0)
                file.flush()
                os.fsync(file.fileno())
            file.close()
            self._spill_file = None
            self._spill_read = self._spill_write = 0

    # -- the pump -------------------------------------------------------------

    def _schedule_pump(self) -> None:
        if self._pump_scheduled:
            return
        self._pump_scheduled = True
        if self.config.drain_interval == 0:
            self.node.clock.soon(self._pump)
        else:
            self.node.clock.after(self.config.drain_interval, self._pump)

    def _effective_batch(self) -> int:
        if self.config.pump_batch is not None:
            return self.config.pump_batch
        if self.node.inbox_batch is not None:
            return self.node.inbox_batch
        return max(1, self._backlog + self._spill_backlog)

    def _pump(self) -> None:
        """One weighted-fair service round (deficit round robin).

        Each backlogged sender in rotation earns its weight in credit and
        dequeues one event per credit point, until the round's budget is
        spent.  Heavier senders drain faster; nobody starves — every
        rotation visits every backlogged sender.
        """
        self._pump_scheduled = False
        self.stats.pump_rounds += 1
        budget = self._effective_batch()
        weights = self.config.weights or {}
        active = self._active
        while budget > 0 and active:
            sender = active[0]
            state = self._senders.get(sender)
            if state is None or not state.queue:
                active.popleft()
                continue
            state.credit += weights.get(sender, 1.0)
            while budget > 0 and state.queue and state.credit >= 1.0:
                pending = state.queue.popleft()
                if pending.state != _QUEUED:
                    continue  # tombstone of a drop-oldest eviction
                state.credit -= 1.0
                budget -= 1
                self._backlog -= 1
                self._deliver(pending)
            if state.queue:
                active.rotate(-1)  # next sender's turn
            else:
                state.credit = 0.0  # classic DRR: empty queue resets deficit
                active.popleft()
        # Trim delivered/dropped tombstones so the global FIFO stays O(backlog).
        arrivals = self._arrivals
        while arrivals and arrivals[0].state != _QUEUED:
            arrivals.popleft()
        if not self._backlog and self._spill_backlog:
            self._replay_spill(self._effective_batch())
        self.stats.backlog = self._backlog
        if self._backlog or self._spill_backlog:
            self._schedule_pump()

    def _deliver(self, pending: _Pending) -> None:
        pending.state = _DELIVERED
        event = self.node.stamp_event(pending.term, source=pending.sender,
                                      sent_at=pending.sent_at)
        # Register before deliver: under sync_delivery the handlers (and
        # the latency hook) run inside the deliver call itself.
        self._inflight[event.id] = pending.admitted_at
        self.stats.delivered += 1
        self.node.deliver(event)

    # -- latency accounting ---------------------------------------------------

    def _record_fire(self, event) -> None:
        admitted_at = self._inflight.pop(event.id, None)
        if admitted_at is None:
            return  # an event that did not come through this gateway
        self.stats.fired += 1
        self.stats.latency.record(self.node.now - admitted_at)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the spill file (safe to call twice; GC also gets it)."""
        if self._spill_file is not None:
            self._spill_file.close()
            self._spill_file = None

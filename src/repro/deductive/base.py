"""Term fact bases: the extensional data deductive rules run over.

A :class:`TermBase` stores root-level data terms ("facts") indexed by label.
Facts are deduplicated by canonical form, so unordered terms that differ only
in child order count once — the set semantics deductive evaluation needs.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.terms.ast import Bindings, Data, canonical_str
from repro.terms.simulation import match


class TermBase:
    """An indexed, deduplicated collection of term facts."""

    def __init__(self, facts: Iterable[Data] = ()) -> None:
        self._facts: dict[str, Data] = {}
        self._by_label: dict[str, list[Data]] = {}
        for fact in facts:
            self.add(fact)

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Data]:
        return iter(self._facts.values())

    def __contains__(self, fact: Data) -> bool:
        return canonical_str(fact) in self._facts

    def add(self, fact: Data) -> bool:
        """Insert a fact; returns False if (semantically) already present."""
        key = canonical_str(fact)
        if key in self._facts:
            return False
        self._facts[key] = fact
        self._by_label.setdefault(fact.label, []).append(fact)
        return True

    def remove(self, fact: Data) -> bool:
        """Remove a fact; returns False if it was absent."""
        key = canonical_str(fact)
        stored = self._facts.pop(key, None)
        if stored is None:
            return False
        self._by_label[stored.label].remove(stored)
        return True

    def copy(self) -> "TermBase":
        """Independent copy sharing the (immutable) facts."""
        return TermBase(self)

    def with_label(self, label: str) -> tuple[Data, ...]:
        """All facts whose root label is *label* (or everything for ``*``)."""
        if label == "*":
            return tuple(self)
        return tuple(self._by_label.get(label, ()))

    def candidates(self, root_label: "str | None") -> tuple[Data, ...]:
        """Facts that could match a query with the given root label.

        ``None`` (label variable or non-QTerm query) returns all facts.
        """
        if root_label is None or root_label == "*":
            return tuple(self)
        return self.with_label(root_label)

    def solve(self, query, bindings: Bindings = Bindings()) -> list[Bindings]:
        """Match *query* against every candidate fact, collecting bindings."""
        from repro.terms.ast import QTerm

        label = query.label if isinstance(query, QTerm) and isinstance(query.label, str) else None
        out: list[Bindings] = []
        seen: set[Bindings] = set()
        for fact in self.candidates(label):
            for b in match(query, fact, bindings):
                if b not in seen:
                    seen.add(b)
                    out.append(b)
        return out

    @staticmethod
    def from_document(root: Data) -> "TermBase":
        """Build a base from a document root: each child term is a fact."""
        return TermBase(child for child in root.children if isinstance(child, Data))

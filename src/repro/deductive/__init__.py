"""Deductive rules (views) for Web queries and event queries (Thesis 9).

Deductive rules play the role of database views over term data: they derive
intensional facts from extensional ones, avoid replicating complicated
queries, and mediate between schemas.  The paper proposes the same mechanism
for event queries, but restricted (no recursion) because event queries are
evaluated at high frequency.

- :class:`~repro.deductive.base.TermBase` — a store of term facts.
- :class:`~repro.deductive.rules.DeductiveRule` / ``Program`` — rules with
  dependency analysis (recursion and stratified-negation checks).
- :mod:`repro.deductive.evaluation` — semi-naive forward chaining
  (materialised views) and memoised backward chaining (on-demand views).
"""

from repro.deductive.base import TermBase
from repro.deductive.evaluation import BackwardEvaluator, forward_chain
from repro.deductive.rules import DeductiveRule, Filter, Match, Negation, Program

__all__ = [
    "BackwardEvaluator",
    "DeductiveRule",
    "Filter",
    "Match",
    "Negation",
    "Program",
    "TermBase",
    "forward_chain",
]

"""Evaluation of deductive programs: forward and backward chaining.

Thesis 7 asks which evaluation methods a query language supports; we provide
both classic strategies over the same rule representation:

- :func:`forward_chain` — bottom-up, semi-naive, stratum by stratum; returns
  the materialised base (extensional + derived facts).  Used for persistent
  Web views that many queries read.
- :class:`BackwardEvaluator` — on-demand: a query for a derived label lazily
  materialises only the subprogram reachable from that label and memoises
  the result (a simple form of tabling).  Used when views are consulted
  rarely or the base changes often.

Both agree on stratified programs (tested property).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.deductive.base import TermBase
from repro.deductive.rules import DeductiveRule, Filter, Match, Negation, Program, _root_label
from repro.errors import DeductiveError
from repro.terms.ast import Bindings, Data, Query
from repro.terms.construct import instantiate
from repro.terms.simulation import _compare_holds, match


def _solve_goals(
    goals: tuple["Match | Negation | Filter", ...],
    index: int,
    bindings: Bindings,
    full: TermBase,
    delta: "TermBase | None",
    pivot: int,
) -> Iterator[Bindings]:
    """Join the body goals left to right.

    When *delta* is given, the goal at position *pivot* draws candidates from
    the delta instead of the full base (the semi-naive rewriting: a new
    derivation must use at least one new fact).
    """
    if index == len(goals):
        yield bindings
        return
    goal = goals[index]
    if isinstance(goal, Match):
        source = delta if (delta is not None and index == pivot) else full
        for extended in source.solve(goal.query, bindings):
            yield from _solve_goals(goals, index + 1, extended, full, delta, pivot)
    elif isinstance(goal, Negation):
        if not full.solve(goal.query, bindings):
            yield from _solve_goals(goals, index + 1, bindings, full, delta, pivot)
    else:  # Filter
        value = bindings.get(goal.var)
        if value is not None and _compare_holds(goal.as_compare(), value, bindings):
            yield from _solve_goals(goals, index + 1, bindings, full, delta, pivot)


def _positive_indices(rule: DeductiveRule) -> list[int]:
    return [i for i, goal in enumerate(rule.body) if isinstance(goal, Match)]


def _derive(rule: DeductiveRule, bindings: Bindings) -> Data:
    fact = instantiate(rule.head, bindings)
    if not isinstance(fact, Data):
        raise DeductiveError(f"rule head must construct a data term, got {fact!r}")
    return fact


def forward_chain(program: Program, base: TermBase) -> TermBase:
    """Materialise all derived facts bottom-up (semi-naive, stratified).

    The input base is not modified; the returned base contains both the
    extensional facts and everything derivable.
    """
    derived = base.copy()
    for stratum in program.strata():
        # Initial round: full evaluation of every rule in the stratum.
        delta = TermBase()
        for rule in stratum:
            for bindings in _solve_goals(rule.body, 0, Bindings(), derived, None, -1):
                fact = _derive(rule, bindings)
                if derived.add(fact):
                    delta.add(fact)
        # Semi-naive iteration: new derivations must touch a delta fact.
        while len(delta):
            next_delta = TermBase()
            for rule in stratum:
                for pivot in _positive_indices(rule):
                    for bindings in _solve_goals(
                        rule.body, 0, Bindings(), derived, delta, pivot
                    ):
                        fact = _derive(rule, bindings)
                        if derived.add(fact):
                            next_delta.add(fact)
            delta = next_delta
    return derived


class BackwardEvaluator:
    """On-demand (goal-directed) evaluation with memoisation.

    A query against a derived label materialises only the rules reachable
    from that label in the dependency graph, then answers from the combined
    facts.  Materialisations are cached until :meth:`invalidate` is called
    (e.g. after the extensional base changed).
    """

    def __init__(self, program: Program, base: TermBase) -> None:
        self._program = program
        self._base = base
        self._cache: dict[frozenset[str], TermBase] = {}

    def invalidate(self) -> None:
        """Drop memoised materialisations (call after base updates)."""
        self._cache.clear()

    def _reachable_labels(self, label: str) -> frozenset[str]:
        graph = self._program._graph
        head_labels = {rule.head_label for rule in self._program.rules}
        if label == "*":
            return frozenset(head_labels)
        if label not in graph:
            return frozenset({label} & head_labels)
        reachable = {label} | nx.descendants(graph, label)
        return frozenset(reachable & head_labels)

    def _materialise(self, labels: frozenset[str]) -> TermBase:
        cached = self._cache.get(labels)
        if cached is not None:
            return cached
        rules = [rule for rule in self._program.rules if rule.head_label in labels]
        subprogram = Program(rules, allow_recursion=True) if rules else None
        result = forward_chain(subprogram, self._base) if subprogram else self._base
        self._cache[labels] = result
        return result

    def solve(self, query: Query, bindings: Bindings = Bindings()) -> list[Bindings]:
        """Answer *query* over extensional plus (reachable) derived facts."""
        labels = self._reachable_labels(_root_label(query))
        return self._materialise(labels).solve(query, bindings)

    def facts(self, label: str) -> tuple[Data, ...]:
        """All facts (extensional and derived) with the given label."""
        labels = self._reachable_labels(label)
        return self._materialise(labels).with_label(label)

"""Deductive rule and program definitions with dependency analysis.

A rule has the form ``head <- goal, goal, ...`` where the head is a construct
term and each goal either

- matches a query term against the fact base (:class:`Match`),
- filters bindings with a scalar comparison (:class:`Filter`), or
- requires the *absence* of any match (:class:`Negation`, negation as
  failure; stratification is enforced).

Programs are analysed with a label-level dependency graph (networkx):
recursion is detected (and can be *rejected* — the paper's Thesis 9 requires
this for event-level views), negation must not occur in a cycle, and rule
safety (head variables bound by positive goals) is checked at construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from repro.errors import DeductiveError, RecursionRejected
from repro.terms.ast import (
    Compare,
    Construct,
    CTerm,
    LabelVar,
    QTerm,
    Query,
    Var,
    all_vars,
    free_vars,
)


@dataclass(frozen=True)
class Match:
    """A positive goal: match *query* against the fact base."""

    query: Query


@dataclass(frozen=True)
class Negation:
    """A negative goal: succeeds iff *query* has no match (NAF)."""

    query: Query


@dataclass(frozen=True)
class Filter:
    """A comparison goal over a bound variable, e.g. ``X > 5``."""

    var: str
    op: str
    rhs: "object"

    def as_compare(self) -> Compare:
        return Compare(self.op, self.rhs)  # type: ignore[arg-type]


Goal = "Match | Negation | Filter"


@dataclass(frozen=True)
class DeductiveRule:
    """``head <- body``; derives one fact per body solution."""

    head: CTerm
    body: tuple["Match | Negation | Filter", ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.head, CTerm):
            raise DeductiveError(f"rule head must be a structured construct term: {self.head!r}")
        if not self.body:
            raise DeductiveError("rule body must have at least one goal")
        positive_vars: set[str] = set()
        for goal in self.body:
            if isinstance(goal, Match):
                positive_vars |= free_vars(goal.query)
        # Safety: head vars and negated/filter vars must be bound positively.
        unbound_head = free_vars(self.head) - positive_vars
        if unbound_head:
            raise DeductiveError(
                f"unsafe rule {self.name or self.head!r}: head variables "
                f"{sorted(unbound_head)} not bound by any positive goal"
            )
        for goal in self.body:
            if isinstance(goal, Filter) and goal.var not in positive_vars:
                raise DeductiveError(
                    f"unsafe rule: filter variable {goal.var!r} not bound positively"
                )

    @property
    def head_label(self) -> str:
        """The label of derived facts; '*' if the head label is a variable."""
        return self.head.label if isinstance(self.head.label, str) else "*"

    def body_labels(self) -> set[tuple[str, bool]]:
        """Labels this rule depends on, tagged with negation flag."""
        out: set[tuple[str, bool]] = set()
        for goal in self.body:
            if isinstance(goal, Match):
                out.add((_root_label(goal.query), False))
            elif isinstance(goal, Negation):
                out.add((_root_label(goal.query), True))
        return out


def _root_label(query: Query) -> str:
    """The root label a goal consults; '*' when unknown (wildcards, vars)."""
    if isinstance(query, QTerm):
        if isinstance(query.label, LabelVar):
            return "*"
        return query.label
    if isinstance(query, Var) and query.inner is not None:
        return _root_label(query.inner)
    return "*"


class Program:
    """A set of deductive rules with dependency analysis.

    Parameters
    ----------
    rules:
        The rules of the program.
    allow_recursion:
        If False (the event-query profile from Thesis 9), any cycle in the
        dependency graph raises :class:`RecursionRejected` immediately.
    """

    def __init__(self, rules: Iterable[DeductiveRule], allow_recursion: bool = True) -> None:
        self.rules = tuple(rules)
        self.allow_recursion = allow_recursion
        self._graph = self._dependency_graph()
        if not allow_recursion and self.is_recursive():
            raise RecursionRejected(
                "recursive deductive rules are rejected for event-level views"
            )
        self._check_stratification()

    def _dependency_graph(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        head_labels = {rule.head_label for rule in self.rules}
        for rule in self.rules:
            graph.add_node(rule.head_label)
            for label, negated in rule.body_labels():
                # '*' goals may consult any derived label.
                targets = head_labels if label == "*" else ({label} & head_labels)
                for target in targets:
                    if graph.has_edge(rule.head_label, target):
                        negated = negated or graph.edges[rule.head_label, target]["negated"]
                    graph.add_edge(rule.head_label, target, negated=negated)
        return graph

    def is_recursive(self) -> bool:
        """True if some derived label (transitively) depends on itself."""
        return not nx.is_directed_acyclic_graph(self._graph)

    def _check_stratification(self) -> None:
        """Negation through a cycle is not stratifiable; reject it."""
        for component in nx.strongly_connected_components(self._graph):
            if len(component) == 1:
                node = next(iter(component))
                if not self._graph.has_edge(node, node):
                    continue
            for source in component:
                for target in self._graph.successors(source):
                    if target in component and self._graph.edges[source, target]["negated"]:
                        raise DeductiveError(
                            f"negation in recursive cycle through {source!r} "
                            "is not stratifiable"
                        )

    def strata(self) -> list[list[DeductiveRule]]:
        """Rules grouped into evaluation strata (dependencies first).

        Memoised: programs are immutable and event-level views evaluate
        per event, so the condensation must not be recomputed each time.
        """
        cached = getattr(self, "_strata_cache", None)
        if cached is not None:
            return cached
        condensed = nx.condensation(self._graph)
        order = list(nx.topological_sort(condensed))
        component_rank = {}
        for rank, node in enumerate(reversed(order)):
            for label in condensed.nodes[node]["members"]:
                component_rank[label] = rank
        buckets: dict[int, list[DeductiveRule]] = {}
        for rule in self.rules:
            buckets.setdefault(component_rank.get(rule.head_label, 0), []).append(rule)
        result = [buckets[rank] for rank in sorted(buckets)]
        self._strata_cache = result
        return result

    def rules_for(self, label: str) -> list[DeductiveRule]:
        """Rules that can derive facts with the given root label."""
        return [
            rule
            for rule in self.rules
            if rule.head_label == label or rule.head_label == "*" or label == "*"
        ]

"""Query-driven (naive) event-query evaluation: the Thesis 6 baseline.

This module doubles as the *declarative semantics* of the event algebra:
:func:`answers` computes, from scratch, every answer of a query over a full
event history at a given time.  The incremental evaluator must emit exactly
the same answers (the property suite checks them against each other on
random streams); the difference is cost — :class:`NaiveEvaluator` re-scans
the entire history on every event, which is precisely what the paper's
Thesis 6 argues against:

    "a non-incremental, query-driven (backward-chaining) evaluation would
    have to check the entire history of events for an A when a B is
    detected."

Semantics reference (H = history, ``now`` = current time):

- ``EAtom(p)`` — one answer per (event, binding) with span [t, t].
- ``EAnd`` — binding-compatible combinations, span = hull of member spans.
- ``EOr`` — union of member answers.
- ``ESeq`` — combinations in strict temporal order (``end_i < start_{i+1}``);
  an ``ENot(p)`` between members requires no p-matching event strictly
  inside the gap (checked under the full combination bindings); a trailing
  ``ENot`` requires no p-match in ``(end_last, deadline]`` where
  ``deadline = start + window`` — such answers are confirmed at the
  deadline, so they exist only once ``now >= deadline`` and their end is
  the deadline.
- ``EWithin(q, w)`` — answers of q with span <= w; also supplies the
  deadline window to inner sequences.
- ``ECount(p, n, w)`` — for every matching event completing >= n matches of
  its group in the trailing window, the most recent n of them.
- ``EAggregate`` — for every matching event, the aggregate over the group's
  last `size` values (or trailing window), subject to the predicate.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import EventError
from repro.events.answers import answer_sort_key
from repro.events.model import Event, EventAnswer
from repro.events.queries import (
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EWithin,
    query_interest,
    validate_query,
)
from repro.terms.ast import Bindings, is_scalar
from repro.terms.simulation import compile_matches, compile_pattern

__all__ = ["NaiveEvaluator", "answer_sort_key", "answers"]


def answers(query, history: Sequence[Event], now: float, window: float | None = None
            ) -> set[EventAnswer]:
    """All answers of *query* over *history* confirmed by time *now*."""
    if isinstance(query, EAtom):
        return _atom_answers(query, history)
    if isinstance(query, EAnd):
        combos = answers(query.members[0], history, now, window)
        for member in query.members[1:]:
            extensions = answers(member, history, now, window)
            combos = {
                merged
                for left in combos
                for right in extensions
                for merged in [left.merge_with(right)]
                if merged is not None
            }
        return combos
    if isinstance(query, EOr):
        out: set[EventAnswer] = set()
        for member in query.members:
            out |= answers(member, history, now, window)
        return out
    if isinstance(query, ESeq):
        return _seq_answers(query, history, now, window)
    if isinstance(query, EWithin):
        inner = answers(query.query, history, now, query.window)
        return {a for a in inner if a.span <= query.window}
    if isinstance(query, ECount):
        return _count_answers(query, history)
    if isinstance(query, EAggregate):
        return _aggregate_answers(query, history)
    raise EventError(f"not an event query: {query!r}")


def _atom_answers(query: EAtom, history: Sequence[Event]) -> set[EventAnswer]:
    out: set[EventAnswer] = set()
    matcher = compile_pattern(query.pattern)  # memoised across re-evaluations
    for event in history:
        for bindings in matcher(event.term):
            if query.alias is not None:
                extended = bindings.bind(query.alias, event.term)
                if extended is None:
                    continue
                bindings = extended
            out.add(EventAnswer(bindings, (event.id,), event.time, event.time))
    return out


def _seq_answers(query: ESeq, history: Sequence[Event], now: float,
                 window: float | None) -> set[EventAnswer]:
    members = query.members
    positives = [m for m in members if not isinstance(m, ENot)]
    member_answers = [sorted(answers(p, history, now, window), key=answer_sort_key)
                      for p in positives]
    # Negation positions: gap g sits between positive g and positive g+1;
    # gap == len(positives)-1 after the last positive is the trailing gap.
    negations: dict[int, ENot] = {}
    positive_index = -1
    for member in members:
        if isinstance(member, ENot):
            negations[positive_index] = member
        else:
            positive_index += 1
    trailing = negations.pop(len(positives) - 1, None)
    # One compiled boolean matcher per negation, hoisted out of the
    # per-combination finish() loop (mirrors the incremental _SeqOp).
    gap_matchers = {
        gap: compile_matches(negation.pattern)
        for gap, negation in negations.items()
    }
    trailing_matcher = (
        compile_matches(trailing.pattern) if trailing is not None else None
    )

    out: set[EventAnswer] = set()

    def extend(index: int, bindings: Bindings, events: tuple[int, ...],
               spans: tuple[tuple[float, float], ...]) -> None:
        if index == len(positives):
            finish(bindings, events, spans)
            return
        for candidate in member_answers[index]:
            if spans and candidate.start <= spans[-1][1]:
                continue  # strict temporal order between members
            merged = bindings.merge(candidate.bindings)
            if merged is None:
                continue
            extend(
                index + 1,
                merged,
                events + candidate.events,
                spans + ((candidate.start, candidate.end),),
            )

    def finish(bindings: Bindings, events: tuple[int, ...],
               spans: tuple[tuple[float, float], ...]) -> None:
        # Mid-sequence negation gaps, under the full combination bindings.
        for gap, matcher in gap_matchers.items():
            lo = spans[gap][1]
            hi = spans[gap + 1][0]
            if _blocker_in(matcher, history, bindings, lo, hi, inclusive_end=False):
                return
        start, end = spans[0][0], spans[-1][1]
        ids = tuple(sorted(set(events)))
        if trailing is not None:
            if window is None:
                raise EventError("trailing ENot needs an enclosing EWithin")
            deadline = start + window
            if end > deadline:
                return  # the last positive itself missed the absence deadline
            if deadline > now:
                return  # not yet confirmed
            if _blocker_in(trailing_matcher, history, bindings, end, deadline,
                           inclusive_end=True):
                return
            # The answer extends exactly one window past its start: carry
            # the window as the span so the enclosing EWithin filter does
            # not drop it when start + window rounded up an ulp.
            out.add(EventAnswer(bindings, ids, start, deadline, window))
        else:
            out.add(EventAnswer(bindings, ids, start, end))

    extend(0, Bindings(), (), ())
    return out


def _blocker_in(matcher, history: Sequence[Event], bindings: Bindings,
                lo: float, hi: float, inclusive_end: bool) -> bool:
    """Any event in the interval matching the compiled blocker pattern."""
    for event in history:
        if event.time <= lo:
            continue
        if inclusive_end:
            if event.time > hi:
                continue
        elif event.time >= hi:
            continue
        if matcher(event.term, bindings):
            return True
    return False


def _count_answers(query: ECount, history: Sequence[Event]) -> set[EventAnswer]:
    out: set[EventAnswer] = set()
    # series per group key: chronological (time, id) of matching events.
    group_names = frozenset(query.group_by)
    matcher = compile_pattern(query.pattern)
    for k, trigger in enumerate(history):
        keys = set()
        for bindings in matcher(trigger.term):
            keys.add(bindings.project(group_names))
        for key in keys:
            series: list[tuple[float, int]] = []
            for event in history[: k + 1]:
                if event.time <= trigger.time - query.window:
                    continue
                for bindings in matcher(event.term):
                    if bindings.project(group_names) == key:
                        series.append((event.time, event.id))
                        break
            if len(series) >= query.n:
                last_n = series[-query.n:]
                out.add(EventAnswer(
                    key,
                    tuple(event_id for _, event_id in last_n),
                    last_n[0][0],
                    trigger.time,
                ))
    return out


def _aggregate_answers(query: EAggregate, history: Sequence[Event]) -> set[EventAnswer]:
    out: set[EventAnswer] = set()
    group_names = frozenset(query.group_by)
    # Replay the stream, keeping per-group series and the previous defined
    # aggregate (for the rise% predicate) — identical to the incremental op.
    series: dict[Bindings, list[tuple[float, int, float]]] = {}
    prev_agg: dict[Bindings, float] = {}
    matcher = compile_pattern(query.pattern)
    for event in history:
        for bindings in matcher(event.term):
            value = bindings.get(query.on)
            if not is_scalar(value) or isinstance(value, (str, bool)):
                continue
            key = bindings.project(group_names)
            entries = series.setdefault(key, [])
            entries.append((event.time, event.id, float(value)))
            window_entries = _window_slice(entries, query, event.time)
            aggregate = _apply_fn(query.fn, [v for _, _, v in window_entries]) \
                if window_entries is not None else None
            if aggregate is None:
                continue
            emit = _predicate_holds(query.predicate, aggregate, prev_agg.get(key))
            prev_agg[key] = aggregate
            if not emit:
                continue
            ids = tuple(dict.fromkeys(i for _, i, _ in window_entries))
            result = key.bind(query.into, aggregate)
            if result is None:
                continue
            out.add(EventAnswer(result, ids, window_entries[0][0], event.time))
    return out


def _window_slice(entries: list[tuple[float, int, float]], query: EAggregate,
                  now: float) -> list[tuple[float, int, float]] | None:
    """The entries the aggregate ranges over; None if not yet defined."""
    if query.size is not None:
        if len(entries) < query.size:
            return None
        return entries[-query.size:]
    live = [entry for entry in entries if entry[0] > now - query.window]
    return live or None


def _apply_fn(fn: str, values: list[float]) -> float:
    if fn == "count":
        return float(len(values))
    if fn == "sum":
        return sum(values)
    if fn == "avg":
        return sum(values) / len(values)
    if fn == "min":
        return min(values)
    return max(values)


def _predicate_holds(predicate: tuple[str, float] | None, aggregate: float,
                     previous: float | None) -> bool:
    if predicate is None:
        return True
    op, value = predicate
    if op == "rise%":
        if previous is None:
            return False
        return aggregate >= previous * (1.0 + value / 100.0)
    if op == "==":
        return aggregate == value
    if op == "!=":
        return aggregate != value
    if op == "<":
        return aggregate < value
    if op == "<=":
        return aggregate <= value
    if op == ">":
        return aggregate > value
    return aggregate >= value


class NaiveEvaluator:
    """Re-evaluates the whole query over the whole history on every event.

    Interface-compatible with
    :class:`~repro.events.incremental.IncrementalEvaluator`; used as the E6
    baseline and as the test oracle.
    """

    mechanism = "naive"

    def __init__(self, query) -> None:
        validate_query(query)
        self._query = query
        self._history: list[Event] = []
        self._emitted: set[EventAnswer] = set()
        self._last_time = float("-inf")

    def on_event(self, event: Event) -> list[EventAnswer]:
        """Feed one event (times must be non-decreasing); new answers out."""
        if event.time < self._last_time:
            raise EventError(
                f"events must arrive in time order: {event.time} < {self._last_time}"
            )
        self._last_time = event.time
        self._history.append(event)
        return self._delta(event.time)

    def advance_time(self, now: float) -> list[EventAnswer]:
        """Advance the clock (fires absence deadlines); new answers out."""
        if now < self._last_time:
            raise EventError(f"time went backwards: {now} < {self._last_time}")
        self._last_time = now
        return self._delta(now)

    def _delta(self, now: float) -> list[EventAnswer]:
        current = answers(self._query, self._history, now)
        fresh = sorted(current - self._emitted, key=answer_sort_key)
        self._emitted |= current
        return fresh

    def interest(self):
        """The :class:`~repro.events.queries.EventInterest` of this query."""
        return query_interest(self._query)

    def state_size(self) -> int:
        """Stored state: the entire history (the point of Thesis 6)."""
        return len(self._history)

    def next_deadline(self) -> float | None:
        """Naive evaluation cannot tell; callers must poll time forward."""
        return None

    def reset(self) -> None:
        """Drop all state (used by the cumulative consumption policy)."""
        self._history.clear()
        self._emitted.clear()

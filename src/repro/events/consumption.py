"""Event instance selection and consumption policies.

Thesis 5 notes that applications may need *event instance selection* (pick
one of several simultaneous answers) and *event instance consumption* (use
up atomic events so they cannot contribute to future answers), citing the
classic active-database semantics of Zimmer & Unland.  This module layers
those policies over any evaluator:

========================  ====================================================
policy                    behaviour
========================  ====================================================
``unrestricted``          every answer; nothing consumed (the default)
``chronicle``             answers accepted oldest-first; their events are
                          consumed — each atomic event contributes to at most
                          one accepted answer
``recent``                among answers confirmed at the same instant, only
                          the one with the latest start; its events consumed
``cumulative``            accepting an answer consumes *all* partial-match
                          state (the evaluator is reset)
========================  ====================================================
"""

from __future__ import annotations

from repro.errors import EventQueryError
from repro.events.answers import answer_sort_key
from repro.events.model import EventAnswer

POLICIES = ("unrestricted", "chronicle", "recent", "cumulative")


class ConsumptionPolicy:
    """Stateful filter applying one of the named policies."""

    def __init__(self, name: str = "unrestricted") -> None:
        if name not in POLICIES:
            raise EventQueryError(
                f"unknown consumption policy {name!r}; choose from {POLICIES}"
            )
        self.name = name
        self._consumed: set[int] = set()

    def apply(self, batch: list[EventAnswer]) -> tuple[list[EventAnswer], bool]:
        """Filter one batch of simultaneous answers.

        Returns ``(accepted, reset_requested)``; the caller resets the
        evaluator when the cumulative policy accepted something.
        """
        if self.name == "unrestricted":
            return list(batch), False
        viable = [a for a in batch if not (set(a.events) & self._consumed)]
        if self.name == "chronicle":
            accepted = []
            for answer in sorted(viable, key=answer_sort_key):
                if set(answer.events) & self._consumed:
                    continue
                accepted.append(answer)
                self._consumed.update(answer.events)
            return accepted, False
        if self.name == "recent":
            if not viable:
                return [], False
            latest = max(viable, key=lambda a: (a.start, answer_sort_key(a)))
            self._consumed.update(latest.events)
            return [latest], False
        # cumulative
        if not viable:
            return [], False
        accepted = sorted(viable, key=answer_sort_key)
        return accepted, True

    def forget(self) -> None:
        """Drop consumption history (used after a cumulative reset)."""
        self._consumed.clear()


class ConsumingEvaluator:
    """Wraps an evaluator, applying a consumption policy to its answers.

    The wrapped evaluator may be incremental or naive; the policy only sees
    confirmed answers, so it composes with either.
    """

    def __init__(self, evaluator, policy: "str | ConsumptionPolicy" = "unrestricted") -> None:
        self._evaluator = evaluator
        self.policy = policy if isinstance(policy, ConsumptionPolicy) else ConsumptionPolicy(policy)

    def on_event(self, event) -> list[EventAnswer]:
        return self._filter(self._evaluator.on_event(event))

    def advance_time(self, now: float) -> list[EventAnswer]:
        return self._filter(self._evaluator.advance_time(now))

    def _filter(self, batch: list[EventAnswer]) -> list[EventAnswer]:
        accepted, reset = self.policy.apply(batch)
        if reset:
            self._evaluator.reset()
            self.policy.forget()
        return accepted

    def interest(self):
        """Delegate the :class:`EventInterest` to the wrapped evaluator.

        Consumption only filters confirmed answers, so it never widens the
        set of events the underlying query needs to see.
        """
        return self._evaluator.interest()

    def state_size(self) -> int:
        return self._evaluator.state_size()

    def next_deadline(self) -> float | None:
        return self._evaluator.next_deadline()

    def replan(self, rates: "dict[str, float] | None" = None) -> None:
        """Forward join re-planning to the wrapped evaluator.

        A no-op for mechanisms without a plan to reorder (naive,
        incremental); the tree evaluator reorders its join leaves.
        """
        inner = getattr(self._evaluator, "replan", None)
        if inner is not None:
            inner(rates)

    @property
    def mechanism(self) -> str:
        """The wrapped evaluator's mechanism (for ``mechanism_report``)."""
        return getattr(self._evaluator, "mechanism", "custom")

    @property
    def switches(self) -> int:
        """Mechanism switches taken by the wrapped evaluator (adaptive)."""
        return getattr(self._evaluator, "switches", 0)

    @property
    def pinned(self) -> "bool | None":
        """Whether the wrapped adaptive evaluator is pinned (else None)."""
        return getattr(self._evaluator, "pinned", None)

    def plan(self):
        """The wrapped evaluator's join plan, or None without one."""
        describe = getattr(self._evaluator, "plan", None)
        return describe() if describe is not None else None

    def switch_to(self, target: str) -> bool:
        """Force a mechanism switch on a wrapped adaptive evaluator.

        Consumption marks live in this wrapper's policy, *outside* the
        migrating state, so they survive the switch untouched.
        """
        switch = getattr(self._evaluator, "switch_to", None)
        return switch(target) if switch is not None else False

    def reset(self) -> None:
        self._evaluator.reset()
        self.policy.forget()

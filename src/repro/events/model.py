"""The event model: atomic events and event-query answers.

Events are *volatile data* (Thesis 4): immutable, timestamped messages that
signal state changes.  They are kept distinct from persistent Web data — an
event cannot be modified, only superseded by later events — and the library
never stores them indefinitely unless an explicit persist action is used.

An event carries:

- ``term`` — its payload, an ordinary data term (so the *same* query
  language matches events and persistent documents, Thesis 7);
- ``occurrence`` — when it happened at its source;
- ``reception`` — when the local node received it (the time base for
  composite-event ordering, since a node can only order what it has seen);
- ``source`` — the URI of the emitting node.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import EventError
from repro.terms.ast import Bindings, Data


@dataclass(frozen=True)
class Event:
    """An atomic event: an immutable, timestamped term payload."""

    id: int
    term: Data
    occurrence: float
    reception: float
    source: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.term, Data):
            raise EventError(f"event payload must be a data term: {self.term!r}")
        if self.reception < self.occurrence:
            raise EventError(
                f"event received before it occurred: "
                f"occurrence={self.occurrence}, reception={self.reception}"
            )

    @property
    def time(self) -> float:
        """The time base for composite-event semantics (reception time)."""
        return self.reception

    @property
    def label(self) -> str:
        """Root label of the payload (the event's 'type')."""
        return self.term.label


_ids = itertools.count(1)


def make_event(term: Data, time: float, source: str = "", occurrence: float | None = None) -> Event:
    """Create an event with a fresh globally unique id.

    Convenience for tests and standalone evaluator use; the Web simulator
    assigns ids through the same counter so ids never collide.
    """
    occurred = time if occurrence is None else occurrence
    return Event(next(_ids), term, occurred, time, source)


@dataclass(frozen=True)
class EventAnswer:
    """One answer to an event query.

    ``events`` lists the ids of the contributing atomic events (in
    chronological order), ``start``/``end`` delimit the answer's temporal
    extent, and ``end`` is also the moment the answer was *confirmed* —
    for answers involving absence (negation), confirmation happens at the
    negation deadline, later than the last contributing event.

    ``span_override`` carries the exact temporal extent for answers whose
    end is a *derived* deadline (``start + window``): when that addition
    rounds up an ulp, recomputing ``end - start`` would exceed the window
    by one ulp and an enclosing ``EWithin`` would silently drop the
    answer.  Absence answers therefore carry their planted window as the
    span instead of recomputing it.
    """

    bindings: Bindings
    events: tuple[int, ...]
    start: float
    end: float
    span_override: float | None = None

    def merge_with(self, other: "EventAnswer") -> "EventAnswer | None":
        """Conjunction of two answers; None if their bindings disagree."""
        merged = self.bindings.merge(other.bindings)
        if merged is None:
            return None
        ids = tuple(sorted(set(self.events) | set(other.events)))
        start = min(self.start, other.start)
        end = max(self.end, other.end)
        # When the hull *is* one answer's extent, its exact span survives
        # the merge — otherwise a deadline-derived end would degrade back
        # to end - start and re-introduce the ulp drop for composed
        # queries (e.g. an absence sequence joined inside an EAnd).
        override = None
        for answer in (self, other):
            if (answer.span_override is not None
                    and answer.start == start and answer.end == end):
                override = answer.span_override
                break
        return EventAnswer(merged, ids, start, end, override)

    @property
    def span(self) -> float:
        """Temporal extent of the answer."""
        if self.span_override is not None:
            return self.span_override
        return self.end - self.start

"""Events: volatile data, composite event queries, and their evaluation.

Implements Theses 4-6 of the paper:

- **Thesis 4** — events are *volatile* data, distinct from persistent Web
  data: :class:`~repro.events.model.Event` instances are immutable,
  timestamped, and never stored beyond what live partial matches require
  (windowed queries give every piece of state a deadline; see
  :meth:`IncrementalEvaluator.state_size`).
- **Thesis 5** — the four dimensions of event queries: *data extraction*
  (term patterns with variables), *event composition* (and/or/seq with
  negation), *temporal conditions* (windows, relative order), and *event
  accumulation* (counts and sliding aggregates).
- **Thesis 6** — data-driven, *incremental* evaluation
  (:class:`IncrementalEvaluator`) versus the query-driven, re-evaluate-the-
  whole-history baseline (:class:`NaiveEvaluator`).  All mechanisms
  implement the same declarative semantics
  (:func:`repro.events.naive.answers`), which the property suite checks on
  random streams.

Four evaluation mechanisms share that semantics, selected per node with
``EngineConfig(evaluator=...)`` and built through the
:class:`EvaluatorFactory` seam (:func:`resolve_evaluator` /
:func:`register_evaluator`): ``"incremental"`` (prefix extension),
``"tree"`` (:class:`TreeEvaluator` — join trees with frequency-ordered
plans), ``"naive"`` (the re-evaluation baseline), and ``"adaptive"``
(:class:`AdaptiveEvaluator` — switches incremental↔tree per rule at
runtime from a :class:`MechanismGovernor` cost model with hysteresis,
migrating live state losslessly across the switch).
"""

from repro.events.answers import answer_sort_key, dedup_answers
from repro.events.consumption import ConsumptionPolicy, ConsumingEvaluator
from repro.events.factory import (
    EVALUATORS,
    EvaluatorFactory,
    ScheduledNaiveEvaluator,
    register_evaluator,
    resolve_evaluator,
)
from repro.events.governor import (
    AdaptiveEvaluator,
    GovernorConfig,
    MechanismGovernor,
    adaptive,
    replay_horizon,
)
from repro.events.incremental import IncrementalEvaluator
from repro.events.model import Event, EventAnswer
from repro.events.naive import NaiveEvaluator, answers
from repro.events.tree import TreeEvaluator
from repro.events.queries import (
    Discriminator,
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EventInterest,
    EWithin,
    pattern_discriminators,
    pattern_event_interest,
    pattern_interest,
    query_interest,
    validate_query,
)

__all__ = [
    "AdaptiveEvaluator",
    "ConsumingEvaluator",
    "ConsumptionPolicy",
    "Discriminator",
    "EAggregate",
    "EAnd",
    "EAtom",
    "ECount",
    "ENot",
    "EOr",
    "ESeq",
    "EVALUATORS",
    "EWithin",
    "Event",
    "EventAnswer",
    "EventInterest",
    "EvaluatorFactory",
    "GovernorConfig",
    "IncrementalEvaluator",
    "MechanismGovernor",
    "NaiveEvaluator",
    "ScheduledNaiveEvaluator",
    "TreeEvaluator",
    "adaptive",
    "answer_sort_key",
    "answers",
    "dedup_answers",
    "replay_horizon",
    "register_evaluator",
    "resolve_evaluator",
    "pattern_discriminators",
    "pattern_event_interest",
    "pattern_interest",
    "query_interest",
    "validate_query",
]

"""Adaptive per-rule evaluator selection: ``EngineConfig(evaluator="adaptive")``.

PR 7 made the evaluation mechanism a *manual* knob (``"incremental"`` /
``"tree"`` / ``"naive"``) and E19 showed the right choice is
workload-dependent: join trees win 2.3-2.6x on skewed long patterns and
cost 25-45% on uniform streams.  This module makes the choice the
*engine's* problem: :class:`AdaptiveEvaluator` wraps one fixed-mechanism
evaluator per rule and lets a :class:`MechanismGovernor` switch it between
incremental and tree evaluation at runtime, from observed traffic — with
hysteresis so oscillating skew cannot thrash the plan, and with a
*lossless* live state migration so a switch mid-stream never loses,
duplicates, or reorders an answer.

Cost model
----------

Decisions are driven exclusively by **evaluator-local** signals, all of
them deterministic functions of the event stream the rule's query is
interested in:

- per-label EWMA event masses, decayed in *simulated* time
  (``GovernorConfig.halflife``) — windowed rates, not the cumulative
  counters the engine kept before ``EngineConfig(rate_halflife=...)``;
- the query's join-chain shapes (every windowed ``ESeq`` / ``EAnd`` with
  at least two positive members).

That restriction is what makes sharding sound: replicas of one rule on
several shards see identical interested-event streams, so their governors
observe identical masses at identical times and take identical decisions
— no cross-shard coordination needed (the shard router's replica replay
property is tested with the adaptive mechanism in
``tests/properties/test_adaptive_equivalence.py``).  Wall-clock readings
(matcher-call deltas, advance timings) are surfaced through stats but
never feed a decision.

For each chain the governor prices both mechanisms analytically: with
expected per-member match counts ``n_i`` inside one window (EWMA mass
converted to a rate, times the window, plus one), prefix extension
materialises ``sum_k prod(n_1..n_k)`` partial matches in textual order,
while the tree joins rarest-first — the same sum over the ascending
ordering, times a constant bookkeeping factor
(``GovernorConfig.tree_overhead``, calibrated from E19's uniform
column).  The mechanism with the lower total wins, but only past a
minimum dwell (``dwell_epochs``) — and entry to the tree additionally
requires clearing a score margin (``margin``); ties and small
advantages stay put.

Lossless migration by bounded replay
------------------------------------

Both mechanisms gc their state against the query's windows, so every
*live* partial match is derivable from the recent event suffix:
:func:`replay_horizon` computes, per query, how many seconds of events
suffice to rebuild all of it (``None`` = unbounded, e.g. an
``EAggregate`` whose rise%% baseline survives quiet periods — such
queries are **pinned** to their initial mechanism and pay zero adaptive
overhead).  A switch builds a fresh evaluator of the target mechanism,
replays the retained suffix into it in arrival order, advances it to the
current clock, and *discards everything it emits* — exactly the answers
the old evaluator already emitted, because ``on_event`` fires pendings
with ``deadline <= event.time`` in both mechanisms, so after any call at
time *t* the emitted sets agree.  Consumption marks survive by
construction: :class:`~repro.events.consumption.ConsumingEvaluator`
wraps *outside* the adaptive layer, so its policy state never migrates
at all.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import EventQueryError
from repro.events.incremental import IncrementalEvaluator
from repro.events.model import Event, EventAnswer
from repro.events.queries import (
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EWithin,
    query_interest,
    validate_query,
)
from repro.events.tree import TreeEvaluator

__all__ = [
    "AdaptiveEvaluator",
    "GovernorConfig",
    "MechanismGovernor",
    "adaptive",
    "replay_horizon",
]

_LN2 = math.log(2.0)
_MECHANISMS = ("incremental", "tree")


@dataclass(frozen=True)
class GovernorConfig:
    """Every knob of the adaptive mechanism, in one frozen value.

    - ``epoch_events`` — a governor *epoch* is this many events seen by
      the rule's evaluator; scores are re-evaluated at every epoch
      boundary (and at periodic ticks, below), and the per-label EWMA
      masses fold in at the same granularity (per-event work is a single
      counter bump).  Event-counted epochs are what keeps replicated
      rules' governors in lock-step across shards.
    - ``period`` — simulated seconds between governor ticks while the
      evaluator holds live state; ticks ride the engine's existing
      absence-deadline wake-up machinery (``next_deadline``), and stop
      rescheduling once state and replay log are empty, so a quiet node
      goes fully quiescent.
    - ``halflife`` — EWMA half-life (simulated seconds) of the per-label
      event masses feeding the cost model.
    - ``dwell_epochs`` — minimum epochs between switches (hysteresis).
    - ``margin`` — entering the tree, the challenger must beat the
      incumbent by this score fraction (strictly); the way back to
      incremental needs only a strict win (see
      :meth:`MechanismGovernor.preferred`), and a tie always stays put.
    - ``tree_overhead`` — constant bookkeeping factor the tree mechanism
      is charged per chain (E19: ~25-45% on uniform streams).
    - ``min_mass`` — total decayed mass required before any switch.
    - ``initial`` — mechanism built at construction.
    """

    epoch_events: int = 32
    period: float = 30.0
    halflife: float = 30.0
    dwell_epochs: int = 3
    margin: float = 0.2
    tree_overhead: float = 1.3
    min_mass: float = 0.0
    initial: str = "incremental"

    def __post_init__(self) -> None:
        if self.epoch_events < 1:
            raise EventQueryError(
                f"epoch_events must be >= 1, got {self.epoch_events}")
        if not self.period > 0.0:
            raise EventQueryError(f"period must be > 0, got {self.period}")
        if not self.halflife > 0.0:
            raise EventQueryError(f"halflife must be > 0, got {self.halflife}")
        if self.dwell_epochs < 0:
            raise EventQueryError(
                f"dwell_epochs must be >= 0, got {self.dwell_epochs}")
        if self.margin < 0.0:
            raise EventQueryError(f"margin must be >= 0, got {self.margin}")
        if not self.tree_overhead > 0.0:
            raise EventQueryError(
                f"tree_overhead must be > 0, got {self.tree_overhead}")
        if self.min_mass < 0.0:
            raise EventQueryError(f"min_mass must be >= 0, got {self.min_mass}")
        if self.initial not in _MECHANISMS:
            raise EventQueryError(
                f"initial mechanism must be one of {_MECHANISMS}, "
                f"got {self.initial!r}")


def replay_horizon(query, window: "float | None" = None) -> "float | None":
    """Seconds of retained events sufficient to rebuild all live state.

    Both mechanisms gc partial matches, blockers, and pendings against
    the query's windows: after any call at time *t*, every contributing
    event of still-live state has ``time >= t - H`` for the *H* computed
    here (a safe overestimate for nested compositions).  ``None`` means
    unbounded — some state depends on arbitrarily old events (an
    unwindowed sequence, or an ``EAggregate`` whose previous-aggregate
    baseline deliberately survives gc) — and the adaptive evaluator pins
    such queries to their initial mechanism.

    The *window* parameter threads the governing ``EWithin`` down the
    composition, mirroring how evaluation compiles it.
    """
    if isinstance(query, EAtom):
        return 0.0
    if isinstance(query, EWithin):
        return replay_horizon(query.query, query.window)
    if isinstance(query, EOr):
        worst = 0.0
        for member in query.members:
            h = replay_horizon(member, window)
            if h is None:
                return None
            worst = max(worst, h)
        return worst
    if isinstance(query, (ESeq, EAnd)):
        if window is None:
            return None
        worst = 0.0
        for member in query.members:
            if isinstance(member, ENot):
                continue  # blockers are raw events inside the window
            h = replay_horizon(member, window)
            if h is None:
                return None
            worst = max(worst, h)
        return window + worst
    if isinstance(query, ECount):
        return query.window  # the per-group series is window-pruned
    if isinstance(query, EAggregate):
        # The rise% baseline (_prev) survives gc by design: replay from
        # any bounded suffix could resurrect a different baseline.
        return None
    return None


def _collect_chains(query, window, out) -> None:
    """Every windowed ``ESeq``/``EAnd`` with >= 2 positives, as
    ``(window, [per-positive label sets])`` rows (``None`` = wildcard)."""
    if isinstance(query, EWithin):
        _collect_chains(query.query, query.window, out)
    elif isinstance(query, EOr):
        for member in query.members:
            _collect_chains(member, window, out)
    elif isinstance(query, (ESeq, EAnd)):
        positives = [m for m in query.members if not isinstance(m, ENot)]
        if window is not None and len(positives) >= 2:
            out.append((window, [query_interest(m).labels for m in positives]))
        for member in positives:
            _collect_chains(member, window, out)


def _chain_cost(counts: "list[float]") -> float:
    """Live partial matches a left-deep chain holds: sum of the prefix
    products (the last, complete level is emitted, not stored)."""
    cost = 0.0
    acc = 1.0
    for n in counts[:-1]:
        acc *= n
        cost += acc
    return cost


class MechanismGovernor:
    """Scores incremental-vs-tree for one query from decayed label rates.

    Pure arithmetic over the query's chain shapes — no evaluator state,
    no wall-clock — so two governors fed the same rates always agree
    (the per-shard-replica requirement).
    """

    def __init__(self, query, config: GovernorConfig) -> None:
        self.config = config
        self.chains: list = []
        _collect_chains(query, None, self.chains)

    def scores(self, rates: "dict[str, float]", total: float) -> "dict[str, float]":
        """Per-mechanism cost; lower is better.  *rates* are decayed
        masses, *total* their sum (the wildcard-member estimate)."""
        per_second = _LN2 / self.config.halflife
        incremental = tree = 0.0
        for window, members in self.chains:
            counts = []
            for labels in members:
                mass = total if labels is None else sum(
                    rates.get(label, 0.0) for label in labels)
                # expected matches of this member inside one window, plus
                # one so an all-quiet chain scores the mechanisms equal
                counts.append(mass * per_second * window + 1.0)
            incremental += _chain_cost(counts)
            tree += self.config.tree_overhead * _chain_cost(sorted(counts))
        return {"incremental": incremental, "tree": tree}

    def preferred(self, incumbent: str, rates: "dict[str, float]",
                  total: float) -> "str | None":
        """The mechanism to switch to, or ``None`` to stay put.

        The challenger must *strictly* beat the incumbent — equal scores
        (and, entering the tree, any advantage inside the margin) keep
        the incumbent, which is half of the anti-thrash story (the dwell
        guard in :class:`AdaptiveEvaluator` is the other half).

        The margin is asymmetric by design: it gates *entry* to the tree
        — the mechanism whose payoff rests on a rate estimate that noise
        can fake — while the way back to incremental evaluation only
        needs the scores to flip.  ``tree_overhead`` already handicaps
        the tree in that comparison, so a symmetric margin would add no
        thrash protection; it would only prolong a stale join plan after
        the skew that justified it has drifted away.
        """
        if total < self.config.min_mass:
            return None
        scores = self.scores(rates, total)
        challenger = "tree" if incumbent == "incremental" else "incremental"
        margin = self.config.margin if challenger == "tree" else 0.0
        if scores[challenger] * (1.0 + margin) < scores[incumbent]:
            return challenger
        return None


class AdaptiveEvaluator:
    """One rule's evaluator that re-selects its mechanism at runtime.

    Implements the full evaluator surface (``on_event`` /
    ``advance_time`` / ``interest`` / ``state_size`` / ``next_deadline``
    / ``reset`` / ``replan`` / ``plan``) by delegating to the current
    inner mechanism, plus:

    - :attr:`mechanism` — the mechanism currently running;
    - :attr:`switches` — switches taken so far (surfaced through
      ``NodeStats`` as ``evaluator_switches``);
    - :attr:`pinned` — ``True`` when the query admits no safe switch
      (unbounded :func:`replay_horizon`, or no join chain to reorder);
      pinned evaluators keep no log and take no governor decisions;
    - :meth:`switch_to` — force a migration now (the property suite's
      entry point; the governor calls it too).
    """

    def __init__(self, query, rates: "dict[str, float] | None" = None,
                 config: "GovernorConfig | None" = None) -> None:
        validate_query(query)
        self.query = query
        self.config = config if config is not None else GovernorConfig()
        self.governor = MechanismGovernor(query, self.config)
        self._horizon = replay_horizon(query)
        self.pinned = self._horizon is None or not self.governor.chains
        self.switches = 0
        self._log: "deque[Event]" = deque()
        self._mass: "dict[str, tuple[float, float]]" = {}
        # Per-label event counts of the current (unfinished) epoch; folded
        # into the decayed masses at epoch boundaries by `_fold`.
        self._pending: "dict[str, int]" = {}
        self._clock = float("-inf")
        self._events_in_epoch = 0
        # Hot-path copies of the config knobs (attribute access on the
        # frozen dataclass is measurable at per-event frequency).
        self._halflife = self.config.halflife
        self._epoch_events = self.config.epoch_events
        self._period = self.config.period
        # Free to switch at the first decision: dwell limits the gap
        # *between* switches, not the time to the first one.
        self._epochs_since_switch = self.config.dwell_epochs
        self._next_tick: "float | None" = None
        if self.config.initial == "tree":
            self._inner = TreeEvaluator(query, rates)
        else:
            self._inner = IncrementalEvaluator(query)

    # -- evaluator surface ----------------------------------------------------

    @property
    def mechanism(self) -> str:
        """The mechanism currently evaluating this query."""
        return self._inner.mechanism

    def on_event(self, event: Event) -> "list[EventAnswer]":
        """Process one event; may switch mechanisms at an epoch boundary
        (invisible in the returned answers — the property suite's claim)."""
        if self.pinned:
            out = self._inner.on_event(event)
            if event.time > self._clock:
                self._clock = event.time
            return out
        # The per-event observe work is one counter bump plus the log
        # append; the EWMA decay arithmetic is deferred to `_fold` at the
        # epoch boundary.  What remains here is the adaptive mechanism's
        # overhead floor on streams where no switch ever pays (E21's
        # uniform phase).
        t = event.time
        pending = self._pending
        label = event.term.label
        pending[label] = pending.get(label, 0) + 1
        self._log.append(event)
        out = self._inner.on_event(event)
        if t > self._clock:
            self._clock = t
        self._events_in_epoch += 1
        if self._events_in_epoch >= self._epoch_events:
            self._events_in_epoch = 0
            self._fold(t)
            # Pruning only at epoch boundaries retains up to one epoch of
            # extra suffix — harmless: replaying a superset of the horizon
            # rebuilds the same state (full-history replay would).
            self._prune(t)
            self._consider()
        next_tick = self._next_tick
        if next_tick is None or next_tick <= t:
            self._next_tick = t + self._period  # the log is non-empty here
        return out

    def advance_time(self, now: float) -> "list[EventAnswer]":
        """Advance the clock; governor ticks piggyback on wake-ups here."""
        out = self._inner.advance_time(now)
        self._clock = max(self._clock, now)
        if not self.pinned:
            self._prune(now)
            if self._next_tick is not None and now >= self._next_tick:
                self._next_tick = None
                self._consider()
            self._arm_tick(now)
        return out

    def interest(self):
        """The :class:`~repro.events.queries.EventInterest` of the query
        (mechanism-independent, so dispatch never changes on a switch)."""
        return query_interest(self.query)

    def state_size(self) -> int:
        """Inner partial-match state plus the retained replay log."""
        return self._inner.state_size() + len(self._log)

    def next_deadline(self) -> "float | None":
        """Earliest of the inner absence deadline and the governor tick."""
        inner = self._inner.next_deadline()
        if self._next_tick is None:
            return inner
        if inner is None:
            return self._next_tick
        return min(inner, self._next_tick)

    def reset(self) -> None:
        """Drop all partial-match state (cumulative consumption).

        The replay log goes with it — replaying pre-reset events would
        resurrect consumed state; the rate masses stay (statistics, not
        match state, and replicas reset at identical points)."""
        self._inner.reset()
        self._log.clear()

    def replan(self, rates: "dict[str, float] | None" = None) -> None:
        """Engine ``refresh()`` hook: re-score and re-plan.

        The engine-supplied *rates* are shard-local (each shard only
        sees its own routed events), so decisions ignore them; the
        governor re-scores from its own decayed masses, and a tree inner
        replans from the same — identical on every replica."""
        if self.pinned:
            sub = getattr(self._inner, "replan", None)
            if sub is not None:
                sub(rates)
            return
        if self._clock > float("-inf"):
            own = self.label_rates(self._clock)
            sub = getattr(self._inner, "replan", None)
            if sub is not None:
                sub(own)
            self._consider()

    def plan(self):
        """The inner join plan (tree), or ``None`` (incremental/leaf)."""
        describe = getattr(self._inner, "plan", None)
        return describe() if describe is not None else None

    # -- governor -------------------------------------------------------------

    def label_rates(self, now: float) -> "dict[str, float]":
        """Per-label EWMA masses decayed to *now* (simulated time),
        including the current epoch's not-yet-folded counts (undecayed —
        they are at most one epoch old)."""
        halflife = self._halflife
        out = {}
        for label, (mass, stamp) in self._mass.items():
            if now > stamp:
                mass *= 0.5 ** ((now - stamp) / halflife)
            out[label] = mass
        for label, count in self._pending.items():
            out[label] = out.get(label, 0.0) + count
        return out

    def switch_to(self, target: str) -> bool:
        """Migrate to *target* now; ``True`` if a switch happened.

        Builds a fresh evaluator of the target mechanism, replays the
        retained event suffix into it (in arrival order), advances it to
        the current clock, and discards everything it emitted along the
        way — by the shared ``deadline <= t`` firing contract that is
        exactly the set the old evaluator already emitted, so no answer
        is lost, duplicated, or reordered.  Pinned queries refuse."""
        if target not in _MECHANISMS:
            raise EventQueryError(
                f"unknown mechanism {target!r}; choose from {_MECHANISMS}")
        if self.pinned or target == self._inner.mechanism:
            return False
        if target == "tree":
            rates = self.label_rates(self._clock) \
                if self._clock > float("-inf") else None
            fresh = TreeEvaluator(self.query, rates or None)
        else:
            fresh = IncrementalEvaluator(self.query)
        for event in self._log:
            fresh.on_event(event)  # suppressed: already emitted pre-switch
        if self._clock > float("-inf"):
            fresh.advance_time(self._clock)  # suppressed: deadlines <= clock fired
        self._inner = fresh
        self.switches += 1
        self._epochs_since_switch = 0
        return True

    def _consider(self) -> None:
        """One governor decision (epoch boundary, tick, or refresh)."""
        self._epochs_since_switch += 1
        if self._epochs_since_switch <= self.config.dwell_epochs:
            return  # hysteresis: stay put until the dwell has passed
        rates = self.label_rates(self._clock)
        target = self.governor.preferred(
            self._inner.mechanism, rates, sum(rates.values()))
        if target is not None:
            self.switch_to(target)

    def _fold(self, now: float) -> None:
        """Fold the finished epoch's per-label counts into the masses.

        Attributing a whole epoch's counts to the boundary instant
        (instead of decaying each arrival individually) biases a mass by
        at most one epoch of missed decay — and *identically* on every
        replica, because epoch boundaries are event-counted, so the
        replica-agreement property is untouched."""
        mass = self._mass
        halflife = self._halflife
        for label, count in self._pending.items():
            entry = mass.get(label)
            if entry is None:
                mass[label] = (float(count), now)
            else:
                old, stamp = entry
                if now > stamp:
                    old *= 0.5 ** ((now - stamp) / halflife)
                mass[label] = (old + count, now)
        self._pending.clear()

    def _prune(self, now: float) -> None:
        # Two ulps of slack below the exact cutoff, mirroring the tree's
        # candidate narrowing: retention must be a superset of what the
        # mechanisms' own gc keeps (they keep spans[0][0] >= now - W).
        cutoff = now - self._horizon
        cutoff = math.nextafter(math.nextafter(cutoff, -math.inf), -math.inf)
        log = self._log
        while log and log[0].time < cutoff:
            log.popleft()

    def _arm_tick(self, now: float) -> None:
        # Quiescence-aware: only reschedule while there is live state (or
        # a log to prune) — otherwise the tick chain would keep the
        # scheduler alive forever after the last event.
        if self._log or self._inner.state_size() > 0:
            if self._next_tick is None or self._next_tick <= now:
                self._next_tick = now + self.config.period
        else:
            self._next_tick = None


def adaptive(**knobs):
    """An evaluator builder with custom :class:`GovernorConfig` knobs.

    Usage: ``EngineConfig(evaluator=adaptive(dwell_epochs=5, margin=0.5))``
    — resolved through the ordinary callable path of
    :func:`~repro.events.factory.resolve_evaluator`.
    """
    config = GovernorConfig(**knobs)

    def build(query, rates: "dict[str, float] | None" = None):
        return AdaptiveEvaluator(query, rates, config)

    build.__name__ = "adaptive"
    return build

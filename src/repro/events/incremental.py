"""Data-driven, incremental event-query evaluation (Thesis 6).

The query is compiled into a tree of operators mirroring its structure; each
operator stores exactly the partial matches that can still contribute to a
future answer.  Work done for one event is never redone: an arriving event
flows through the tree once, extending stored partial matches and emitting
the newly confirmed answers.

Volatility (Thesis 4) is engineered in: every windowed operator prunes state
that can no longer complete within its window (:meth:`gc`, called after
every entry point), so memory is bounded by event *rate* times *window*, not
by history length.  ``state_size()`` exposes the live state for the memory
experiments (E4), and ``next_deadline()`` tells the caller when absence
(trailing ``ENot``) answers are due, so engines can schedule wake-ups
instead of polling.

The semantics implemented here is exactly
:func:`repro.events.naive.answers`; the property suite feeds random streams
to both evaluators and requires identical answer sets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import EventError
from repro.events.answers import answer_sort_key, dedup_answers, min_deadline
from repro.events.model import Event, EventAnswer
from repro.events.naive import _apply_fn, _predicate_holds
from repro.events.queries import (
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EWithin,
    query_interest,
    validate_query,
)
from repro.terms.ast import Bindings, is_scalar
from repro.terms.simulation import compile_matches, compile_pattern


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


class _Op:
    """Base operator: event-driven and time-driven delta evaluation."""

    def on_event(self, event: Event) -> list[EventAnswer]:
        raise NotImplementedError

    def on_time(self, now: float) -> list[EventAnswer]:
        return []

    def gc(self, now: float) -> None:
        """Prune state that can no longer contribute to an answer."""

    def state_size(self) -> int:
        return 0

    def next_deadline(self) -> float | None:
        return None

    def reset(self) -> None:
        """Drop all partial-match state."""


class _AtomOp(_Op):
    """Stateless: matches its *compiled* pattern against incoming events.

    The pattern is compiled once at construction
    (:func:`repro.terms.simulation.compile_pattern`), so the per-event cost
    for a non-matching candidate is a handful of direct comparisons rather
    than a recursive simulation.
    """

    def __init__(self, query: EAtom) -> None:
        self._matcher = compile_pattern(query.pattern)
        self._alias = query.alias

    def on_event(self, event: Event) -> list[EventAnswer]:
        out = []
        for bindings in self._matcher(event.term):
            if self._alias is not None:
                extended = bindings.bind(self._alias, event.term)
                if extended is None:
                    continue
                bindings = extended
            out.append(EventAnswer(bindings, (event.id,), event.time, event.time))
        return out


class _OrOp(_Op):
    """Union of member deltas."""

    def __init__(self, members: list[_Op]) -> None:
        self._members = members

    def on_event(self, event: Event) -> list[EventAnswer]:
        return _dedup(answer for op in self._members for answer in op.on_event(event))

    def on_time(self, now: float) -> list[EventAnswer]:
        return _dedup(answer for op in self._members for answer in op.on_time(now))

    def gc(self, now: float) -> None:
        for op in self._members:
            op.gc(now)

    def state_size(self) -> int:
        return sum(op.state_size() for op in self._members)

    def next_deadline(self) -> float | None:
        return _min_deadline(self._members)

    def reset(self) -> None:
        for op in self._members:
            op.reset()


class _AndOp(_Op):
    """Incremental multi-way join of member answers.

    Stores every member answer seen so far (pruned by the enclosing window);
    a member delta joins against the other members' stores.  New
    combinations are exactly those that use at least one delta, partitioned
    by the *largest* member index contributing a delta.
    """

    def __init__(self, members: list[_Op], window: float | None) -> None:
        self._members = members
        self._window = window
        self._stores: list[list[EventAnswer]] = [[] for _ in members]
        self._seen: list[set[EventAnswer]] = [set() for _ in members]

    def on_event(self, event: Event) -> list[EventAnswer]:
        return self._integrate([op.on_event(event) for op in self._members])

    def on_time(self, now: float) -> list[EventAnswer]:
        return self._integrate([op.on_time(now) for op in self._members])

    def _integrate(self, deltas: list[list[EventAnswer]]) -> list[EventAnswer]:
        deltas = [
            [a for a in member_delta if a not in self._seen[i]]
            for i, member_delta in enumerate(deltas)
        ]
        out: list[EventAnswer] = []
        n = len(self._members)
        for pivot in range(n):
            if not deltas[pivot]:
                continue
            # members < pivot: store + delta; member pivot: delta only;
            # members > pivot: store only.
            combos = [EventAnswer(Bindings(), (), float("inf"), float("-inf"))]
            viable = True
            partials: list[EventAnswer] = combos
            for i in range(n):
                pool = (
                    self._stores[i] + deltas[i]
                    if i < pivot
                    else (deltas[i] if i == pivot else self._stores[i])
                )
                next_partials = []
                for left in partials:
                    for right in pool:
                        merged = left.merge_with(right)
                        if merged is not None:
                            next_partials.append(merged)
                partials = next_partials
                if not partials:
                    viable = False
                    break
            if viable:
                out.extend(partials)
        for i, member_delta in enumerate(deltas):
            for answer in member_delta:
                self._seen[i].add(answer)
                self._stores[i].append(answer)
        return _dedup(out)

    def gc(self, now: float) -> None:
        for op in self._members:
            op.gc(now)
        if self._window is None:
            return
        cutoff = now - self._window
        for i in range(len(self._stores)):
            keep = [a for a in self._stores[i] if a.start >= cutoff]
            if len(keep) != len(self._stores[i]):
                self._stores[i] = keep
                self._seen[i] = set(keep)

    def state_size(self) -> int:
        own = sum(len(store) for store in self._stores)
        return own + sum(op.state_size() for op in self._members)

    def next_deadline(self) -> float | None:
        return _min_deadline(self._members)

    def reset(self) -> None:
        for op in self._members:
            op.reset()
        self._stores = [[] for _ in self._members]
        self._seen = [set() for _ in self._members]


@dataclass
class _Prefix:
    """A partial sequence match: positives 0..k matched."""

    bindings: Bindings
    events: tuple[int, ...]
    spans: tuple[tuple[float, float], ...]


@dataclass
class _Pending:
    """A complete positive match awaiting its trailing-absence deadline."""

    prefix: _Prefix
    deadline: float


class _SeqOp(_Op):
    """Temporal sequence with gap / trailing negation.

    Prefix stores hold partial matches per matched-positive count; negation
    checks are deferred to emission time (when the full bindings are known);
    blocker events are retained for one window.  Trailing negations turn
    complete matches into pending entries fired by ``on_time``.
    """

    def __init__(self, positives: list[_Op], negations: dict[int, ENot],
                 trailing: ENot | None, window: float | None) -> None:
        self._positives = positives
        self._negations = negations  # gap index -> ENot (gap g: between g, g+1)
        self._trailing = trailing
        self._window = window
        self._prefixes: list[list[_Prefix]] = [[] for _ in positives]
        self._blockers: dict[int, list[Event]] = {
            gap: [] for gap in list(negations) + ([len(positives) - 1] if trailing else [])
        }
        # One compiled boolean matcher per negation gap: blocker candidacy
        # and the emission-time checks are existence tests, so they use the
        # short-circuiting form (first derivation wins).
        self._blocker_matchers = {
            gap: compile_matches(self._pattern_for_gap(gap)) for gap in self._blockers
        }
        self._pending: list[_Pending] = []

    # -- entry points ---------------------------------------------------------

    def on_event(self, event: Event) -> list[EventAnswer]:
        self._store_blockers(event)
        out = self._fire_pending(event.time)
        deltas = [op.on_event(event) for op in self._positives]
        out.extend(self._extend(deltas))
        # A completion admitted just now may already sit on its deadline
        # (last positive exactly at start + window): fire it in this pass,
        # like the naive semantics does, instead of one entry point late.
        out.extend(self._fire_pending(event.time))
        return _dedup(out)

    def on_time(self, now: float) -> list[EventAnswer]:
        out = self._fire_pending(now)
        deltas = [op.on_time(now) for op in self._positives]
        out.extend(self._extend(deltas))
        out.extend(self._fire_pending(now))
        return _dedup(out)

    # -- internals --------------------------------------------------------------

    def _pattern_for_gap(self, gap: int):
        if self._trailing is not None and gap == len(self._positives) - 1:
            return self._trailing.pattern
        return self._negations[gap].pattern

    def _misses_window(self, start: float, end: float) -> bool:
        """Whether a prefix reaching *end* can no longer yield an answer.

        With a trailing negation the gate is the *planted deadline*
        (``start + window``, the same float the pending entry will carry
        and the naive semantics compares against), not the recomputed
        span — the two disagree by 1 ulp when the addition rounds.
        Without one, the enclosing ``EWithin`` filters on ``end - start``,
        so pruning uses exactly that expression.
        """
        if self._trailing is not None:
            return end > start + self._window
        return end - start > self._window

    def _store_blockers(self, event: Event) -> None:
        from repro.errors import QueryError

        for gap, blockers in self._blockers.items():
            # Unbound variables over-approximate here (any candidate is
            # stored); the precise check happens at emission time under the
            # full combination bindings.
            try:
                candidate = self._blocker_matchers[gap](event.term)
            except QueryError:
                candidate = True
            if candidate:
                blockers.append(event)

    def _gap_blocked(self, gap: int, bindings: Bindings, lo: float, hi: float,
                     inclusive_end: bool) -> bool:
        matcher = self._blocker_matchers[gap]
        for event in self._blockers.get(gap, ()):
            if event.time <= lo:
                continue
            if inclusive_end:
                if event.time > hi:
                    continue
            elif event.time >= hi:
                continue
            if matcher(event.term, bindings):
                return True
        return False

    def _extend(self, deltas: list[list[EventAnswer]]) -> list[EventAnswer]:
        out: list[EventAnswer] = []
        last = len(self._positives) - 1
        # Higher positions first: a delta must not extend a prefix created
        # by the same call (strict temporal order makes that impossible
        # anyway, but this keeps the work linear).
        for k in range(last, -1, -1):
            for answer in deltas[k]:
                if k == 0:
                    self._admit(_Prefix(answer.bindings, answer.events,
                                        ((answer.start, answer.end),)), out)
                    continue
                for prefix in list(self._prefixes[k - 1]):
                    if prefix.spans[-1][1] >= answer.start:
                        continue
                    if self._window is not None and self._misses_window(
                            prefix.spans[0][0], answer.end):
                        continue
                    merged = prefix.bindings.merge(answer.bindings)
                    if merged is None:
                        continue
                    self._admit(
                        _Prefix(
                            merged,
                            prefix.events + answer.events,
                            prefix.spans + ((answer.start, answer.end),),
                        ),
                        out,
                    )
        return out

    def _admit(self, prefix: _Prefix, out: list[EventAnswer]) -> None:
        k = len(prefix.spans) - 1
        last = len(self._positives) - 1
        if k < last:
            self._prefixes[k].append(prefix)
            return
        if self._trailing is not None:
            if self._window is None:
                raise EventError("trailing ENot needs an enclosing EWithin")
            self._pending.append(_Pending(prefix, prefix.spans[0][0] + self._window))
            return
        answer = self._emit(prefix, prefix.spans[-1][1])
        if answer is not None:
            out.append(answer)

    def _emit(self, prefix: _Prefix, end: float,
              span: float | None = None) -> EventAnswer | None:
        for gap, _negation in self._negations.items():
            lo = prefix.spans[gap][1]
            hi = prefix.spans[gap + 1][0]
            if self._gap_blocked(gap, prefix.bindings, lo, hi, inclusive_end=False):
                return None
        ids = tuple(sorted(set(prefix.events)))
        return EventAnswer(prefix.bindings, ids, prefix.spans[0][0], end, span)

    def _fire_pending(self, now: float) -> list[EventAnswer]:
        out: list[EventAnswer] = []
        remaining: list[_Pending] = []
        for pending in self._pending:
            if pending.deadline > now:
                remaining.append(pending)
                continue
            gap = len(self._positives) - 1
            if not self._gap_blocked(gap, pending.prefix.bindings,
                                     pending.prefix.spans[-1][1], pending.deadline,
                                     inclusive_end=True):
                # The answer's extent is *exactly* the window: carry the
                # planted deadline's window as the span instead of letting
                # EWithin recompute end - start, which can exceed the
                # window by 1 ulp when start + window rounded up.
                answer = self._emit(pending.prefix, pending.deadline,
                                    span=self._window)
                if answer is not None:
                    out.append(answer)
        self._pending = remaining
        return out

    # -- maintenance ---------------------------------------------------------------

    def gc(self, now: float) -> None:
        for op in self._positives:
            op.gc(now)
        if self._window is None:
            return
        # Never prune past an unfired deadline: its blocker check still needs
        # the window preceding it.
        horizon = min([now] + [p.deadline for p in self._pending])
        cutoff = horizon - self._window
        for k in range(len(self._prefixes)):
            self._prefixes[k] = [
                p for p in self._prefixes[k] if p.spans[0][0] >= cutoff
            ]
        for gap in self._blockers:
            self._blockers[gap] = [e for e in self._blockers[gap] if e.time > cutoff]

    def state_size(self) -> int:
        own = sum(len(p) for p in self._prefixes)
        own += sum(len(b) for b in self._blockers.values())
        own += len(self._pending)
        return own + sum(op.state_size() for op in self._positives)

    def next_deadline(self) -> float | None:
        own = min((p.deadline for p in self._pending), default=None)
        children = _min_deadline(self._positives)
        if own is None:
            return children
        if children is None:
            return own
        return min(own, children)

    def reset(self) -> None:
        for op in self._positives:
            op.reset()
        self._prefixes = [[] for _ in self._positives]
        self._blockers = {gap: [] for gap in self._blockers}
        self._pending = []


class _WithinOp(_Op):
    """Filters member answers by temporal extent."""

    def __init__(self, member: _Op, window: float) -> None:
        self._member = member
        self._window = window

    def on_event(self, event: Event) -> list[EventAnswer]:
        return [a for a in self._member.on_event(event) if a.span <= self._window]

    def on_time(self, now: float) -> list[EventAnswer]:
        return [a for a in self._member.on_time(now) if a.span <= self._window]

    def gc(self, now: float) -> None:
        self._member.gc(now)

    def state_size(self) -> int:
        return self._member.state_size()

    def next_deadline(self) -> float | None:
        return self._member.next_deadline()

    def reset(self) -> None:
        self._member.reset()


class _CountOp(_Op):
    """Sliding count per binding group (event accumulation)."""

    def __init__(self, query: ECount) -> None:
        self._query = query
        self._matcher = compile_pattern(query.pattern)
        self._groups: dict[Bindings, deque[tuple[float, int]]] = {}

    def on_event(self, event: Event) -> list[EventAnswer]:
        query = self._query
        keys = set()
        for bindings in self._matcher(event.term):
            keys.add(bindings.project(frozenset(query.group_by)))
        out = []
        for key in keys:
            series = self._groups.setdefault(key, deque())
            series.append((event.time, event.id))
            while series and series[0][0] <= event.time - query.window:
                series.popleft()
            if len(series) >= query.n:
                last_n = list(series)[-query.n:]
                out.append(EventAnswer(
                    key,
                    tuple(event_id for _, event_id in last_n),
                    last_n[0][0],
                    event.time,
                ))
        return out

    def gc(self, now: float) -> None:
        cutoff = now - self._query.window
        dead = []
        for key, series in self._groups.items():
            while series and series[0][0] <= cutoff:
                series.popleft()
            if not series:
                dead.append(key)
        for key in dead:
            del self._groups[key]

    def state_size(self) -> int:
        return sum(len(series) for series in self._groups.values())

    def reset(self) -> None:
        self._groups.clear()


class _AggOp(_Op):
    """Sliding aggregate per binding group (event accumulation)."""

    def __init__(self, query: EAggregate) -> None:
        self._query = query
        self._matcher = compile_pattern(query.pattern)
        self._groups: dict[Bindings, deque[tuple[float, int, float]]] = {}
        self._prev: dict[Bindings, float] = {}

    def on_event(self, event: Event) -> list[EventAnswer]:
        query = self._query
        group_names = frozenset(query.group_by)
        out = []
        for bindings in self._matcher(event.term):
            value = bindings.get(query.on)
            if not is_scalar(value) or isinstance(value, (str, bool)):
                continue
            key = bindings.project(group_names)
            series = self._groups.setdefault(key, deque())
            series.append((event.time, event.id, float(value)))
            window_entries = self._window_slice(series, event.time)
            if window_entries is None:
                continue
            aggregate = _apply_fn(query.fn, [v for _, _, v in window_entries])
            emit = _predicate_holds(query.predicate, aggregate, self._prev.get(key))
            self._prev[key] = aggregate
            if not emit:
                continue
            ids = tuple(dict.fromkeys(i for _, i, _ in window_entries))
            result = key.bind(query.into, aggregate)
            if result is None:
                continue
            out.append(EventAnswer(result, ids, window_entries[0][0], event.time))
        return _dedup(out)

    def _window_slice(self, series: deque, now: float):
        query = self._query
        if query.size is not None:
            while len(series) > query.size:
                series.popleft()
            if len(series) < query.size:
                return None
            return list(series)
        while series and series[0][0] <= now - query.window:
            series.popleft()
        return list(series) or None

    def gc(self, now: float) -> None:
        if self._query.window is None:
            return
        cutoff = now - self._query.window
        dead = []
        for key, series in self._groups.items():
            while series and series[0][0] <= cutoff:
                series.popleft()
            if not series:
                dead.append(key)
        for key in dead:
            del self._groups[key]
            # keep self._prev: the rise%% baseline survives quiet periods

    def state_size(self) -> int:
        return sum(len(series) for series in self._groups.values())

    def reset(self) -> None:
        self._groups.clear()
        self._prev.clear()


# ---------------------------------------------------------------------------
# Compilation and the public evaluator
# ---------------------------------------------------------------------------


def _compile(query, window: float | None) -> _Op:
    if isinstance(query, EAtom):
        return _AtomOp(query)
    if isinstance(query, EAnd):
        return _AndOp([_compile(m, window) for m in query.members], window)
    if isinstance(query, EOr):
        return _OrOp([_compile(m, window) for m in query.members])
    if isinstance(query, ESeq):
        positives = []
        negations: dict[int, ENot] = {}
        trailing: ENot | None = None
        index = -1
        for member in query.members:
            if isinstance(member, ENot):
                negations[index] = member
            else:
                index += 1
                positives.append(_compile(member, window))
        trailing = negations.pop(len(positives) - 1, None)
        return _SeqOp(positives, negations, trailing, window)
    if isinstance(query, EWithin):
        return _WithinOp(_compile(query.query, query.window), query.window)
    if isinstance(query, ECount):
        return _CountOp(query)
    if isinstance(query, EAggregate):
        return _AggOp(query)
    raise EventError(f"not an event query: {query!r}")


# Shared with the tree evaluator (repro.events.answers); the old private
# names stay as aliases because the operator classes above are also the
# building blocks tree.py leans on for non-tree subqueries.
_dedup = dedup_answers
_min_deadline = min_deadline


class IncrementalEvaluator:
    """Data-driven, incremental evaluation of one event query.

    Feed events in non-decreasing time order with :meth:`on_event`; advance
    the clock with :meth:`advance_time` so absence (trailing ``ENot``)
    answers can fire at their deadlines.  ``on_event`` catches up any
    deadlines that fall before the event's timestamp, so correctness does
    not depend on the caller polling — but callers that want absence
    answers *promptly* should schedule a call at :meth:`next_deadline`.
    """

    mechanism = "incremental"

    def __init__(self, query) -> None:
        validate_query(query)
        self.query = query
        self._root = _compile(query, None)
        self._last_time = float("-inf")

    def on_event(self, event: Event) -> list[EventAnswer]:
        """Process one event; returns the newly confirmed answers."""
        if event.time < self._last_time:
            raise EventError(
                f"events must arrive in time order: {event.time} < {self._last_time}"
            )
        self._last_time = event.time
        out = self._root.on_event(event)
        self._root.gc(event.time)
        return sorted(_dedup(out), key=answer_sort_key)

    def advance_time(self, now: float) -> list[EventAnswer]:
        """Advance the clock; returns answers confirmed by absence."""
        if now < self._last_time:
            raise EventError(f"time went backwards: {now} < {self._last_time}")
        self._last_time = now
        out = self._root.on_time(now)
        self._root.gc(now)
        return sorted(_dedup(out), key=answer_sort_key)

    def interest(self):
        """The :class:`~repro.events.queries.EventInterest` of this query.

        Engines use this to index their dispatch: only events whose root
        label is in the interest set — and, per label, exhibiting the
        interest's discriminator constants — need to reach
        :meth:`on_event`.  Skipping other events is sound: they can
        neither match a leaf nor block an absence check (a blocker pattern
        requiring a constant cannot match an event lacking it).  Time
        still has to be advanced for absence deadlines, which engines do
        via :meth:`advance_time`.
        """
        return query_interest(self.query)

    def state_size(self) -> int:
        """Number of live partial matches / retained blocker events."""
        return self._root.state_size()

    def next_deadline(self) -> float | None:
        """Earliest pending absence deadline, for wake-up scheduling."""
        return self._root.next_deadline()

    def reset(self) -> None:
        """Drop all partial-match state (cumulative consumption)."""
        self._root.reset()
        # _last_time is kept: time never goes backwards.

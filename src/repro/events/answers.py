"""Shared answer plumbing for the event-query evaluators.

Every evaluation mechanism (naive, incremental, tree) returns batches of
:class:`~repro.events.model.EventAnswer` and must agree not only on the
answer *sets* but on the *order within a batch* — the engine fires answers
in batch order, so the order is part of the observable contract the
property suites pin down.  This module holds the pieces that define that
contract so the mechanisms cannot drift apart:

- :func:`answer_sort_key` — the deterministic total order over answers;
- :func:`dedup_answers` — first-occurrence dedup of one batch;
- :func:`min_deadline` — fold of ``next_deadline()`` over child operators.
"""

from __future__ import annotations

from repro.events.model import EventAnswer
from repro.terms.ast import canonical_str


def answer_sort_key(answer: EventAnswer) -> tuple:
    """A deterministic total order over answers (for stable outputs)."""
    return (
        answer.end,
        answer.start,
        answer.events,
        tuple((k, canonical_str(v)) for k, v in answer.bindings.items),
    )


def dedup_answers(answers_iter) -> list[EventAnswer]:
    """First occurrence of each answer, preserving iteration order."""
    seen: set[EventAnswer] = set()
    out: list[EventAnswer] = []
    for answer in answers_iter:
        if answer not in seen:
            seen.add(answer)
            out.append(answer)
    return out


def min_deadline(ops) -> "float | None":
    """Earliest ``next_deadline()`` across *ops*; None when none pends."""
    deadlines = [d for op in ops for d in [op.next_deadline()] if d is not None]
    return min(deadlines) if deadlines else None

"""Tree-based compound-event evaluation with frequency-ordered join plans.

The incremental evaluator (:mod:`repro.events.incremental`) extends
*prefixes* strictly left to right: a sequence ``a -> b -> c`` keeps every
``a``-match and every ``a,b``-pair alive for a window, even when ``a`` is
the frequent member and ``c`` the rare one.  This module evaluates the same
compositions over a *join tree* instead: each positive member is a leaf
holding its partial matches in occurrence order, and a left-deep chain of
join nodes combines them in **frequency order** — rarest leaves first — so
the intermediate buffers stay proportional to the rare side of the stream.

The pieces, per composition (``ESeq`` or ``EAnd``, ``EWithin`` wrappers
pass through):

- **leaf nodes** buffer member answers sorted by occurrence (start time),
  so a join probe is a ``bisect`` into the window, not a scan;
- **internal nodes** buffer partial matches (merged answer + the original
  member positions they cover); sequence order is enforced against the
  nearest covered neighbours of the joined position, which keeps the full
  chain ordered by induction;
- **negation** is checked twice: a *first chance* discards partial matches
  and pending absences as soon as a blocker arrives (only when the check
  is exact — the blocker pattern shares no variable with a still-missing
  member), and a *last chance* at emission re-checks under the full
  bindings, which keeps answers identical to the other mechanisms;
- **expiry** (:meth:`_TreeOp.gc`) walks the tree after every entry point,
  pruning buffers and blockers past the window and feeding the engine's
  ``next_deadline()`` / wake-up contract unchanged;
- **join plans** order the chain by observed per-leaf selectivity, seeded
  from the engine's per-label event rates; :meth:`TreeEvaluator.replan`
  re-derives the internal buffers from the leaf buffers under the new
  order without emitting or losing anything.

Non-tree subqueries (``EAtom``, ``EOr``, ``ECount``, ``EAggregate``) reuse
the incremental operators unchanged — the mechanisms differ in *how* they
join, not in what the algebra means.  The semantics implemented here is
exactly :func:`repro.events.naive.answers`; the property suite drives all
three mechanisms over random streams and requires identical batches.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort

from repro.errors import EventError, QueryError
from repro.events.answers import answer_sort_key, dedup_answers, min_deadline
from repro.events.incremental import _compile, _Op
from repro.events.model import Event, EventAnswer
from repro.events.queries import (
    EAnd,
    ENot,
    ESeq,
    EWithin,
    query_interest,
    query_vars,
    validate_query,
)
from repro.terms.ast import free_vars
from repro.terms.simulation import compile_matches

__all__ = ["TreeEvaluator"]


# ---------------------------------------------------------------------------
# Partial matches and occurrence-ordered buffers
# ---------------------------------------------------------------------------


class _PartialMatch:
    """A join result covering a subset of member positions.

    ``answer`` is the running :class:`EventAnswer` merge (bindings, event
    ids, temporal hull); ``spans`` maps each covered member position to its
    original extent — sequence-order and negation-gap checks need the
    per-member extents, which the hull alone no longer carries.
    """

    __slots__ = ("answer", "spans")

    def __init__(self, answer: EventAnswer, spans: dict) -> None:
        self.answer = answer
        self.spans = spans


def _pm_start(pm: _PartialMatch) -> float:
    return pm.answer.start


class _Buffer:
    """Partial matches kept sorted by hull start (occurrence order)."""

    __slots__ = ("items",)

    def __init__(self) -> None:
        self.items: list[_PartialMatch] = []

    def __len__(self) -> int:
        return len(self.items)

    def insert(self, pm: _PartialMatch) -> None:
        insort(self.items, pm, key=_pm_start)

    def expire(self, cutoff: float) -> bool:
        """Drop matches starting before *cutoff*; True if any were dropped."""
        index = bisect_left(self.items, cutoff, key=_pm_start)
        if index:
            del self.items[:index]
            return True
        return False

    def tail(self, lo: float) -> list[_PartialMatch]:
        """The matches with hull start >= *lo* (a window's worth)."""
        if lo == float("-inf"):
            return self.items
        return self.items[bisect_left(self.items, lo, key=_pm_start):]

    def clear(self) -> None:
        self.items.clear()


class _Leaf:
    """One positive member: its operator plus its occurrence buffer."""

    __slots__ = ("pos", "op", "labels", "vars", "buffer", "seen", "observed")

    def __init__(self, pos: int, query, op: _Op) -> None:
        self.pos = pos
        self.op = op
        self.labels = query_interest(query).labels  # None means any label
        self.vars = query_vars(query)
        self.buffer = _Buffer()
        self.seen: set[EventAnswer] = set()
        self.observed = 0  # member answers ever admitted (selectivity signal)

    def admit(self, batch: list[EventAnswer]) -> list[_PartialMatch]:
        """Wrap fresh member answers as single-position partial matches."""
        fresh = []
        for answer in batch:
            if answer in self.seen:
                continue
            self.seen.add(answer)
            self.observed += 1
            fresh.append(_PartialMatch(answer, {self.pos: (answer.start, answer.end)}))
        return fresh


class _JoinNode:
    """One step of the left-deep chain: joins the prefix with one leaf.

    ``below`` / ``above`` are the nearest already-covered member positions
    around ``leaf_pos`` — checking sequence order against just those two
    keeps the whole covered set ordered.  ``early_gaps`` lists the negation
    gaps that both close at this node *and* are statically exact here, so a
    first-chance blocker check may discard the combination outright.
    """

    __slots__ = ("leaf_pos", "below", "above", "early_gaps", "buffer")

    def __init__(self, leaf_pos: int, below, above, early_gaps: tuple,
                 buffer: "_Buffer | None") -> None:
        self.leaf_pos = leaf_pos
        self.below = below
        self.above = above
        self.early_gaps = early_gaps
        self.buffer = buffer  # None at the top of the chain (emissions)


class _PendingMatch:
    """A complete positive match awaiting its trailing-absence deadline."""

    __slots__ = ("pm", "deadline")

    def __init__(self, pm: _PartialMatch, deadline: float) -> None:
        self.pm = pm
        self.deadline = deadline


# ---------------------------------------------------------------------------
# The composition operator
# ---------------------------------------------------------------------------


class _TreeOp(_Op):
    """Frequency-ordered join of one ``ESeq`` / ``EAnd`` composition."""

    def __init__(self, member_queries: list, ops: list[_Op], is_seq: bool,
                 negations: dict[int, ENot], trailing: "ENot | None",
                 window: "float | None") -> None:
        self._is_seq = is_seq
        self._negations = negations  # gap g: between positives g and g+1
        self._trailing = trailing
        self._window = window
        self._ops = ops
        self._leaves = [
            _Leaf(i, query, op) for i, (query, op) in enumerate(zip(member_queries, ops))
        ]
        gaps = list(negations) + ([len(ops) - 1] if trailing is not None else [])
        self._blockers: dict[int, list[Event]] = {gap: [] for gap in gaps}
        self._blocker_matchers = {
            gap: compile_matches(self._pattern_for_gap(gap)) for gap in self._blockers
        }
        self._gap_vars = {
            gap: free_vars(self._pattern_for_gap(gap)) for gap in self._blockers
        }
        self._pending: list[_PendingMatch] = []
        self._plan = list(range(len(ops)))
        self._chain = self._build_chain(self._plan)

    # -- entry points -------------------------------------------------------

    def on_event(self, event: Event) -> list[EventAnswer]:
        out: list[EventAnswer] = []
        if self._blockers:
            self._store_blockers(event)
        if self._trailing is not None:
            self._discard_blocked_pending(event)
        if self._is_seq:
            out.extend(self._fire_pending(event.time))
        out.extend(self._integrate([op.on_event(event) for op in self._ops]))
        if self._is_seq:
            # A completion admitted just now may already sit on its deadline
            # (last positive exactly at start + window): fire it in this
            # pass, exactly like the incremental evaluator does.
            out.extend(self._fire_pending(event.time))
        return dedup_answers(out)

    def on_time(self, now: float) -> list[EventAnswer]:
        out: list[EventAnswer] = []
        if self._is_seq:
            out.extend(self._fire_pending(now))
        out.extend(self._integrate([op.on_time(now) for op in self._ops]))
        if self._is_seq:
            out.extend(self._fire_pending(now))
        return dedup_answers(out)

    # -- plan construction --------------------------------------------------

    def _build_chain(self, plan: list[int]) -> list[_JoinNode]:
        n = len(plan)
        chain: list[_JoinNode] = []
        covered = {plan[0]}
        for pos in plan[1:]:
            below = max((i for i in covered if i < pos), default=None)
            above = min((i for i in covered if i > pos), default=None)
            covered.add(pos)
            early: tuple = ()
            if self._negations:
                uncovered_vars = frozenset().union(
                    *[self._leaves[j].vars for j in range(n) if j not in covered]
                )
                # A gap closes here when both its flanks are covered and one
                # of them is the position just joined; the first-chance check
                # is exact only when the blocker pattern shares no variable
                # with a member still missing from the combination.
                early = tuple(
                    gap for gap in self._negations
                    if pos in (gap, gap + 1)
                    and gap in covered and (gap + 1) in covered
                    and not (self._gap_vars[gap] & uncovered_vars)
                )
            chain.append(_JoinNode(
                pos, below, above, early,
                _Buffer() if len(covered) < n else None,
            ))
        return chain

    def replan(self, rates: "dict[str, float] | None" = None) -> None:
        """Reorder the join chain rarest-first; keep all live state.

        Leaves are ranked by how many member answers they have actually
        produced, falling back to the engine-supplied per-label event
        *rates* for leaves that have not seen traffic yet.  The internal
        buffers are re-derived from the (window-bounded) leaf buffers, so
        re-planning never emits, drops, or duplicates an answer.
        """
        rates = rates or {}
        for op in self._ops:
            sub = getattr(op, "replan", None)
            if sub is not None:
                sub(rates)
        order = sorted(
            range(len(self._leaves)),
            key=lambda i: (self._leaves[i].observed,
                           self._leaf_rate(self._leaves[i], rates), i),
        )
        if order == self._plan:
            return
        self._plan = order
        self._chain = self._build_chain(order)
        self._rebuild()

    def _leaf_rate(self, leaf: _Leaf, rates: dict) -> float:
        if not rates:
            return 0.0
        if leaf.labels is None:  # wildcard leaf: sees the whole stream
            return float(sum(rates.values()))
        return float(sum(rates.get(label, 0.0) for label in leaf.labels))

    def _rebuild(self) -> None:
        # The leaf buffers and pending matches are authoritative; the chain
        # buffers are a cache re-derivable from them.  Completions live only
        # at the (unbuffered) top, so rebuilding cannot re-emit.
        prefix = self._leaves[self._plan[0]].buffer.items
        for node in self._chain[:-1]:
            leaf = self._leaves[node.leaf_pos]
            combos: list[_PartialMatch] = []
            for pm in prefix:
                for other in self._candidates(leaf.buffer, pm):
                    self._try_join(pm, other, node, combos)
            combos.sort(key=_pm_start)
            rebuilt = _Buffer()
            rebuilt.items = combos
            node.buffer = rebuilt
            prefix = combos

    def describe(self) -> dict:
        """The current join plan, for tests and benchmark introspection."""
        return {
            "op": "seq" if self._is_seq else "and",
            "order": list(self._plan),
            "members": [getattr(op, "describe", lambda: None)() for op in self._ops],
        }

    # -- joining ------------------------------------------------------------

    def _integrate(self, member_deltas: list[list[EventAnswer]]) -> list[EventAnswer]:
        out: list[EventAnswer] = []
        leaves = self._leaves
        if len(leaves) == 1:
            leaf = leaves[0]
            for answer in member_deltas[0]:
                leaf.observed += 1
                self._complete(
                    _PartialMatch(answer, {0: (answer.start, answer.end)}), out)
            return out
        deltas = [leaf.admit(batch) for leaf, batch in zip(leaves, member_deltas)]
        left_buffer = leaves[self._plan[0]].buffer
        node_delta = deltas[self._plan[0]]
        for node in self._chain:
            leaf = leaves[node.leaf_pos]
            leaf_delta = deltas[node.leaf_pos]
            new: list[_PartialMatch] = []
            for pm in node_delta:
                for other in self._candidates(leaf.buffer, pm):
                    self._try_join(pm, other, node, new)
                for other in leaf_delta:
                    self._try_join(pm, other, node, new)
            for other in leaf_delta:
                for pm in self._candidates(left_buffer, other):
                    self._try_join(pm, other, node, new)
            # Commit this step's inputs only after the delta join, so a
            # combination using deltas on both sides is counted once.
            for pm in node_delta:
                left_buffer.insert(pm)
            for other in leaf_delta:
                leaf.buffer.insert(other)
            left_buffer = node.buffer
            node_delta = new
        for pm in node_delta:
            self._complete(pm, out)
        return out

    def _candidates(self, buffer: _Buffer, pm: _PartialMatch) -> list[_PartialMatch]:
        if not self._is_seq or self._window is None:
            return buffer.items
        # Anything starting a window before this side's end cannot combine
        # into an in-window answer.  Two ulps of slack: the exact gate in
        # _try_join decides, the narrowing must never exclude a candidate
        # the gate would keep.
        lo = pm.answer.end - self._window
        lo = math.nextafter(math.nextafter(lo, -math.inf), -math.inf)
        return buffer.tail(lo)

    def _try_join(self, left: _PartialMatch, right: _PartialMatch,
                  node: _JoinNode, out: list[_PartialMatch]) -> None:
        pos = node.leaf_pos
        span = right.spans[pos]
        if self._is_seq:
            # Strict temporal order against the nearest covered neighbours;
            # the rest of the covered set is ordered by induction.
            if node.below is not None and left.spans[node.below][1] >= span[0]:
                return
            if node.above is not None and span[1] >= left.spans[node.above][0]:
                return
        merged = left.answer.merge_with(right.answer)
        if merged is None:
            return
        if self._is_seq and self._window is not None and self._misses_window(
                merged.start, merged.end):
            return
        spans = dict(left.spans)
        spans[pos] = span
        if self._is_seq:
            for gap in node.early_gaps:
                if self._early_gap_blocked(gap, merged.bindings, spans):
                    return
        out.append(_PartialMatch(merged, spans))

    def _complete(self, pm: _PartialMatch, out: list[EventAnswer]) -> None:
        if not self._is_seq:
            out.append(pm.answer)
            return
        if self._trailing is not None:
            if self._window is None:
                raise EventError("trailing ENot needs an enclosing EWithin")
            self._pending.append(_PendingMatch(pm, pm.spans[0][0] + self._window))
            return
        answer = self._emit(pm, pm.spans[len(self._leaves) - 1][1])
        if answer is not None:
            out.append(answer)

    # -- negation -----------------------------------------------------------

    def _pattern_for_gap(self, gap: int):
        if self._trailing is not None and gap == len(self._ops) - 1:
            return self._trailing.pattern
        return self._negations[gap].pattern

    def _misses_window(self, start: float, end: float) -> bool:
        # With a trailing negation the gate is the planted deadline
        # (start + window, the float the pending entry will carry); without
        # one the enclosing EWithin filters on end - start.  Mirrors the
        # incremental _SeqOp ulp-for-ulp.
        if self._trailing is not None:
            return end > start + self._window
        return end - start > self._window

    def _store_blockers(self, event: Event) -> None:
        for gap, blockers in self._blockers.items():
            # Unbound variables over-approximate (any candidate is stored);
            # the precise check happens under the combination bindings.
            try:
                candidate = self._blocker_matchers[gap](event.term)
            except QueryError:
                candidate = True
            if candidate:
                blockers.append(event)

    def _gap_blocked(self, gap: int, bindings, lo: float, hi: float,
                     inclusive_end: bool) -> bool:
        matcher = self._blocker_matchers[gap]
        for event in self._blockers.get(gap, ()):
            if event.time <= lo:
                continue
            if inclusive_end:
                if event.time > hi:
                    continue
            elif event.time >= hi:
                continue
            if matcher(event.term, bindings):
                return True
        return False

    def _early_gap_blocked(self, gap: int, bindings, spans: dict) -> bool:
        # First chance: the chain only schedules this check where it is
        # statically exact, but a pattern can still trip over a variable no
        # member binds — defer to the last chance rather than guess.
        lo = spans[gap][1]
        hi = spans[gap + 1][0]
        matcher = self._blocker_matchers[gap]
        for event in self._blockers.get(gap, ()):
            if event.time <= lo or event.time >= hi:
                continue
            try:
                if matcher(event.term, bindings):
                    return True
            except QueryError:
                return False
        return False

    def _discard_blocked_pending(self, event: Event) -> None:
        # First chance for trailing absence: a pending match carries its
        # full bindings, so a blocker arriving inside (last end, deadline]
        # settles it immediately instead of at the deadline.
        if not self._pending:
            return
        last = len(self._ops) - 1
        matcher = self._blocker_matchers[last]
        keep: list[_PendingMatch] = []
        for pending in self._pending:
            lo = pending.pm.spans[last][1]
            if lo < event.time <= pending.deadline:
                try:
                    if matcher(event.term, pending.pm.answer.bindings):
                        continue
                except QueryError:
                    pass
            keep.append(pending)
        self._pending = keep

    def _emit(self, pm: _PartialMatch, end: float,
              span: "float | None" = None) -> "EventAnswer | None":
        bindings = pm.answer.bindings
        for gap in self._negations:
            if self._gap_blocked(gap, bindings, pm.spans[gap][1],
                                 pm.spans[gap + 1][0], inclusive_end=False):
                return None
        ids = tuple(sorted(set(pm.answer.events)))
        return EventAnswer(bindings, ids, pm.spans[0][0], end, span)

    def _fire_pending(self, now: float) -> list[EventAnswer]:
        out: list[EventAnswer] = []
        remaining: list[_PendingMatch] = []
        last = len(self._ops) - 1
        for pending in self._pending:
            if pending.deadline > now:
                remaining.append(pending)
                continue
            if not self._gap_blocked(last, pending.pm.answer.bindings,
                                     pending.pm.spans[last][1], pending.deadline,
                                     inclusive_end=True):
                # The answer's extent is exactly the window: carry it as the
                # span so EWithin does not recompute end - start (which can
                # exceed the window by 1 ulp when start + window rounds up).
                answer = self._emit(pending.pm, pending.deadline, span=self._window)
                if answer is not None:
                    out.append(answer)
        self._pending = remaining
        return out

    # -- maintenance --------------------------------------------------------

    def gc(self, now: float) -> None:
        for op in self._ops:
            op.gc(now)
        if self._window is None:
            return
        # Never prune past an unfired deadline: its blocker check still
        # needs the window preceding it.
        horizon = min([now] + [p.deadline for p in self._pending])
        cutoff = horizon - self._window
        for leaf in self._leaves:
            if leaf.buffer.expire(cutoff):
                leaf.seen = {pm.answer for pm in leaf.buffer.items}
        for node in self._chain:
            if node.buffer is not None:
                node.buffer.expire(cutoff)
        for gap in self._blockers:
            self._blockers[gap] = [e for e in self._blockers[gap] if e.time > cutoff]

    def state_size(self) -> int:
        own = sum(len(leaf.buffer) for leaf in self._leaves)
        own += sum(len(node.buffer) for node in self._chain if node.buffer is not None)
        own += sum(len(blockers) for blockers in self._blockers.values())
        own += len(self._pending)
        return own + sum(op.state_size() for op in self._ops)

    def next_deadline(self) -> "float | None":
        own = min((p.deadline for p in self._pending), default=None)
        children = min_deadline(self._ops)
        if own is None:
            return children
        if children is None:
            return own
        return min(own, children)

    def reset(self) -> None:
        for op in self._ops:
            op.reset()
        for leaf in self._leaves:
            leaf.buffer.clear()
            leaf.seen.clear()
        for node in self._chain:
            if node.buffer is not None:
                node.buffer.clear()
        for gap in self._blockers:
            self._blockers[gap] = []
        self._pending = []


class _TreeWithin(_Op):
    """``EWithin`` filter that also forwards join re-planning."""

    def __init__(self, member: _Op, window: float) -> None:
        self._member = member
        self._window = window

    def on_event(self, event: Event) -> list[EventAnswer]:
        return [a for a in self._member.on_event(event) if a.span <= self._window]

    def on_time(self, now: float) -> list[EventAnswer]:
        return [a for a in self._member.on_time(now) if a.span <= self._window]

    def gc(self, now: float) -> None:
        self._member.gc(now)

    def state_size(self) -> int:
        return self._member.state_size()

    def next_deadline(self) -> "float | None":
        return self._member.next_deadline()

    def reset(self) -> None:
        self._member.reset()

    def replan(self, rates: "dict[str, float] | None" = None) -> None:
        sub = getattr(self._member, "replan", None)
        if sub is not None:
            sub(rates)

    def describe(self):
        describe = getattr(self._member, "describe", None)
        return describe() if describe is not None else None


# ---------------------------------------------------------------------------
# Compilation and the public evaluator
# ---------------------------------------------------------------------------


def _build(query, window: "float | None") -> _Op:
    if isinstance(query, EWithin):
        return _TreeWithin(_build(query.query, query.window), query.window)
    if isinstance(query, EAnd):
        members = list(query.members)
        ops = [_build(member, window) for member in members]
        return _TreeOp(members, ops, is_seq=False, negations={}, trailing=None,
                       window=window)
    if isinstance(query, ESeq):
        positives = []
        negations: dict[int, ENot] = {}
        index = -1
        for member in query.members:
            if isinstance(member, ENot):
                negations[index] = member
            else:
                index += 1
                positives.append(member)
        trailing = negations.pop(len(positives) - 1, None)
        ops = [_build(member, window) for member in positives]
        return _TreeOp(positives, ops, is_seq=True, negations=negations,
                       trailing=trailing, window=window)
    # EAtom / EOr / ECount / EAggregate: the incremental operators already
    # evaluate these incrementally; trees only change how compositions join.
    return _compile(query, window)


class TreeEvaluator:
    """Tree-based evaluation of one event query.

    Interface-compatible with
    :class:`~repro.events.incremental.IncrementalEvaluator` (same answers,
    same batch order, same ``next_deadline`` contract); additionally
    supports :meth:`replan` to reorder join chains by member frequency and
    :meth:`plan` to inspect the current order.
    """

    mechanism = "tree"

    def __init__(self, query, rates: "dict[str, float] | None" = None) -> None:
        validate_query(query)
        self.query = query
        self._root = _build(query, None)
        self._last_time = float("-inf")
        if rates:
            self.replan(rates)

    def on_event(self, event: Event) -> list[EventAnswer]:
        """Process one event; returns the newly confirmed answers."""
        if event.time < self._last_time:
            raise EventError(
                f"events must arrive in time order: {event.time} < {self._last_time}"
            )
        self._last_time = event.time
        out = self._root.on_event(event)
        self._root.gc(event.time)
        return sorted(dedup_answers(out), key=answer_sort_key)

    def advance_time(self, now: float) -> list[EventAnswer]:
        """Advance the clock; returns answers confirmed by absence."""
        if now < self._last_time:
            raise EventError(f"time went backwards: {now} < {self._last_time}")
        self._last_time = now
        out = self._root.on_time(now)
        self._root.gc(now)
        return sorted(dedup_answers(out), key=answer_sort_key)

    def interest(self):
        """The :class:`~repro.events.queries.EventInterest` of this query."""
        return query_interest(self.query)

    def state_size(self) -> int:
        """Live partial matches, buffered combinations, blockers, pendings."""
        return self._root.state_size()

    def next_deadline(self) -> "float | None":
        """Earliest pending absence deadline, for wake-up scheduling."""
        return self._root.next_deadline()

    def replan(self, rates: "dict[str, float] | None" = None) -> None:
        """Reorder every join chain rarest-first (see :meth:`_TreeOp.replan`)."""
        sub = getattr(self._root, "replan", None)
        if sub is not None:
            sub(rates or {})

    def plan(self):
        """The current join plan as nested dicts, or None for leaf queries."""
        describe = getattr(self._root, "describe", None)
        return describe() if describe is not None else None

    def reset(self) -> None:
        """Drop all partial-match state (cumulative consumption)."""
        self._root.reset()
        # _last_time is kept: time never goes backwards.

"""Pluggable evaluator construction — the ``EngineConfig(evaluator=...)`` knob.

The engine, the sharding router, and the facade all build evaluators
through one seam: an :class:`EvaluatorFactory` resolved once per node from
the config.  The built-in mechanisms:

==============  =============================================================
name            mechanism
==============  =============================================================
``incremental`` :class:`~repro.events.incremental.IncrementalEvaluator` —
                prefix extension, the paper's data-driven default
``tree``        :class:`~repro.events.tree.TreeEvaluator` — join trees with
                frequency-ordered plans (rarest member first)
``naive``       :class:`ScheduledNaiveEvaluator` — full re-evaluation over
                the whole history (the Thesis 6 baseline), wrapped so
                absence deadlines still schedule engine wake-ups
``adaptive``    :class:`~repro.events.governor.AdaptiveEvaluator` — starts
                incremental and switches incremental↔tree per rule at
                runtime, driven by a cost model over EWMA-decayed label
                rates with hysteresis (see ``repro.events.governor``)
==============  =============================================================

``resolve_evaluator`` also accepts a factory object directly (anything with
``name`` and ``build(query, rates=None)``), so applications can register
their own mechanism with :func:`register_evaluator` or pass one inline.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Protocol, runtime_checkable

from repro.errors import EventQueryError
from repro.events.governor import AdaptiveEvaluator
from repro.events.incremental import IncrementalEvaluator
from repro.events.naive import NaiveEvaluator
from repro.events.queries import EAggregate, EAnd, ECount, ENot, EOr, ESeq, EWithin
from repro.events.tree import TreeEvaluator

__all__ = [
    "EVALUATORS",
    "EvaluatorFactory",
    "ScheduledNaiveEvaluator",
    "register_evaluator",
    "resolve_evaluator",
]

#: The built-in evaluation mechanisms, by config name.
EVALUATORS = ("incremental", "tree", "naive", "adaptive")


@runtime_checkable
class EvaluatorFactory(Protocol):
    """Builds one evaluator per rule; consumed by engine, router, facade.

    ``rates`` (per-label event counts observed so far, possibly empty) lets
    rate-aware mechanisms seed their plans; others ignore it.
    """

    name: str

    def build(self, query, rates: "dict[str, float] | None" = None): ...


def _absence_windows(query, window: "float | None", acc: set) -> set:
    """Every ``EWithin`` window governing a trailing-``ENot`` sequence."""
    if isinstance(query, EWithin):
        _absence_windows(query.query, query.window, acc)
    elif isinstance(query, (EAnd, EOr)):
        for member in query.members:
            _absence_windows(member, window, acc)
    elif isinstance(query, ESeq):
        if query.members and isinstance(query.members[-1], ENot) and window is not None:
            acc.add(window)
        for member in query.members:
            if not isinstance(member, ENot):
                _absence_windows(member, window, acc)
    elif isinstance(query, (ECount, EAggregate)):
        pass  # emit only on events; no absence deadlines
    return acc


class ScheduledNaiveEvaluator(NaiveEvaluator):
    """The naive baseline with engine-schedulable absence deadlines.

    :class:`NaiveEvaluator` answers ``next_deadline()`` with None — it
    cannot tell when a trailing absence confirms without re-evaluating, so
    a bare naive evaluator inside an engine would only fire absence answers
    when some later event happens to arrive.  This wrapper keeps a heap of
    *candidate* deadlines — ``event time + window`` for every absence
    window in the query — which is a superset of the true deadlines (an
    absence answer's deadline is its first positive's event time plus the
    window).  Spurious candidates just trigger a harmless re-evaluation.
    """

    def __init__(self, query) -> None:
        super().__init__(query)
        self._absence_windows = tuple(sorted(_absence_windows(query, None, set())))
        self._deadlines: list[float] = []

    def on_event(self, event):
        out = super().on_event(event)
        for window in self._absence_windows:
            heappush(self._deadlines, event.time + window)
        self._drain(event.time)
        return out

    def advance_time(self, now: float):
        out = super().advance_time(now)
        self._drain(now)
        return out

    def _drain(self, now: float) -> None:
        while self._deadlines and self._deadlines[0] <= now:
            heappop(self._deadlines)

    def next_deadline(self) -> "float | None":
        return self._deadlines[0] if self._deadlines else None

    def reset(self) -> None:
        super().reset()
        self._deadlines.clear()


class _Factory:
    """A named factory around a ``(query, rates) -> evaluator`` builder."""

    __slots__ = ("name", "_builder")

    def __init__(self, name: str, builder) -> None:
        self.name = name
        self._builder = builder

    def build(self, query, rates: "dict[str, float] | None" = None):
        return self._builder(query, rates)

    def __repr__(self) -> str:
        return f"<evaluator factory {self.name!r}>"


_REGISTRY: dict[str, EvaluatorFactory] = {
    "incremental": _Factory("incremental", lambda query, rates=None: IncrementalEvaluator(query)),
    "tree": _Factory("tree", lambda query, rates=None: TreeEvaluator(query, rates)),
    "naive": _Factory("naive", lambda query, rates=None: ScheduledNaiveEvaluator(query)),
    "adaptive": _Factory("adaptive", lambda query, rates=None: AdaptiveEvaluator(query, rates)),
}


def register_evaluator(name: str, builder) -> EvaluatorFactory:
    """Register a custom mechanism under *name*; returns its factory.

    *builder* is called as ``builder(query, rates)`` and must return an
    object with the evaluator surface (``on_event``, ``advance_time``,
    ``interest``, ``state_size``, ``next_deadline``, ``reset``).
    """
    factory = _Factory(name, builder)
    _REGISTRY[name] = factory
    return factory


def resolve_evaluator(spec) -> EvaluatorFactory:
    """Resolve the ``evaluator=`` config value to a factory.

    Accepts a registered name (``"incremental"``, ``"tree"``, ``"naive"``,
    or anything added via :func:`register_evaluator`), a factory object, or
    a bare ``(query, rates) -> evaluator`` callable.
    """
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]
        except KeyError:
            raise EventQueryError(
                f"unknown evaluator {spec!r}; choose from {tuple(sorted(_REGISTRY))}"
            ) from None
    if hasattr(spec, "build") and hasattr(spec, "name"):
        return spec
    if callable(spec):
        return _Factory(getattr(spec, "__name__", "custom"), spec)
    raise EventQueryError(
        f"evaluator must be a name, factory, or builder callable: {spec!r}"
    )

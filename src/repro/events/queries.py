"""Composite event query algebra (Thesis 5).

The four dimensions the paper requires of an event query language:

1. **Data extraction** — :class:`EAtom` matches one incoming event's payload
   with an ordinary query term, binding variables usable in the rest of the
   rule (condition and action parts).
2. **Event composition** — :class:`EAnd`, :class:`EOr`, :class:`ESeq`
   (temporal sequence) and :class:`ENot` (absence within a sequence frame).
3. **Temporal conditions** — :class:`EWithin` bounds the temporal extent of
   a composite answer ("A and B within 1 hour"); :class:`ESeq` expresses
   relative order ("A before B").
4. **Event accumulation** — :class:`ECount` ("3 outages within 1 hour") and
   :class:`EAggregate` (sliding aggregates such as "average of the last 5
   stock prices", with an optional rise predicate).

Negation is *guarded*: ``ENot`` may appear only between the members of an
``ESeq`` (absence during the gap) or as its final member (absence until a
deadline), and a trailing ``ENot`` needs an enclosing ``EWithin`` to supply
the deadline.  The guard is what keeps event state finite (Thesis 4): every
piece of partial-match state expires with its window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EventQueryError
from repro.terms.ast import (
    Data,
    LabelVar,
    QTerm,
    Query,
    Scalar,
    Var,
    free_vars,
)
from repro.terms.simulation import child_value_requirement


@dataclass(frozen=True)
class EAtom:
    """Matches a single event whose payload matches *pattern*.

    ``alias``, if given, binds the whole event payload term to a variable.
    """

    pattern: Query
    alias: str | None = None


@dataclass(frozen=True)
class EAnd:
    """All member queries answered (any temporal order), bindings joined."""

    members: tuple["EventQuery", ...]

    def __init__(self, *members: "EventQuery") -> None:
        object.__setattr__(self, "members", tuple(members))


@dataclass(frozen=True)
class EOr:
    """Any member query answered."""

    members: tuple["EventQuery", ...]

    def __init__(self, *members: "EventQuery") -> None:
        object.__setattr__(self, "members", tuple(members))


@dataclass(frozen=True)
class ENot:
    """Absence of a matching event; only valid inside an :class:`ESeq`."""

    pattern: Query


@dataclass(frozen=True)
class ESeq:
    """Members answered in strict temporal order (gaps may be negated)."""

    members: tuple["EventQuery | ENot", ...]

    def __init__(self, *members: "EventQuery | ENot") -> None:
        object.__setattr__(self, "members", tuple(members))

    def positives(self) -> tuple["EventQuery", ...]:
        return tuple(m for m in self.members if not isinstance(m, ENot))


@dataclass(frozen=True)
class EWithin:
    """Answers of *query* whose temporal extent is at most *window*."""

    query: "EventQuery"
    window: float


@dataclass(frozen=True)
class ECount:
    """Accumulation: *n* events matching *pattern* within *window*.

    Events are grouped by the projection of their bindings onto
    ``group_by`` (empty tuple: one global group).  An answer is emitted for
    every matching event that completes a group of at least *n* events in
    the sliding window, and carries the most recent *n* of them.
    """

    pattern: Query
    n: int
    window: float
    group_by: tuple[str, ...] = ()


@dataclass(frozen=True)
class EAggregate:
    """Accumulation: sliding aggregate of a bound scalar over matching events.

    For every matching event, aggregates variable ``on`` over the last
    ``size`` matching events (of the same ``group_by`` group) — or over the
    events in the trailing ``window`` if ``size`` is None — and binds the
    result to variable ``into``.

    ``predicate`` optionally filters emissions:

    - ``(op, value)`` with a comparison operator: emit only when
      ``aggregate op value`` holds (e.g. ``(">", 100.0)``);
    - ``("rise%", pct)``: emit only when the aggregate exceeds its value at
      the previous matching event by at least ``pct`` percent (the paper's
      "average of the last 5 stock prices rises by 5%").
    """

    pattern: Query
    on: str
    fn: str
    into: str
    size: int | None = None
    window: float | None = None
    group_by: tuple[str, ...] = ()
    predicate: tuple[str, float] | None = None

    _FNS = ("count", "sum", "avg", "min", "max")

    def __post_init__(self) -> None:
        if self.fn not in self._FNS:
            raise EventQueryError(f"unknown aggregate function {self.fn!r}")
        if (self.size is None) == (self.window is None):
            raise EventQueryError("exactly one of size= or window= must be given")
        if self.size is not None and self.size < 1:
            raise EventQueryError("size must be at least 1")
        if self.predicate is not None:
            op = self.predicate[0]
            if op not in ("==", "!=", "<", "<=", ">", ">=", "rise%"):
                raise EventQueryError(f"unknown aggregate predicate {op!r}")


#: Any event query.
EventQuery = "EAtom | EAnd | EOr | ESeq | EWithin | ECount | EAggregate"


def query_vars(query: "EventQuery | ENot") -> frozenset[str]:
    """Variables an event query can bind."""
    if isinstance(query, EAtom):
        names = free_vars(query.pattern)
        return names | {query.alias} if query.alias else names
    if isinstance(query, (EAnd, EOr, ESeq)):
        out: frozenset[str] = frozenset()
        for member in query.members:
            if not isinstance(member, ENot):
                out |= query_vars(member)
        return out
    if isinstance(query, EWithin):
        return query_vars(query.query)
    if isinstance(query, ECount):
        return frozenset(query.group_by)
    if isinstance(query, EAggregate):
        return frozenset(query.group_by) | {query.into}
    if isinstance(query, ENot):
        return frozenset()
    raise EventQueryError(f"not an event query: {query!r}")


def pattern_interest(pattern: Query) -> frozenset[str] | None:
    """Top-level data-term labels *pattern* can match; ``None`` means any.

    This drives the first level of the engine's indexed event dispatch: an
    evaluator is only handed events whose root label is in its interest
    set.  The computation is conservative — whenever the label cannot be
    pinned down statically (label variables, ``desc``, bare variables,
    comparison patterns), the pattern lands in the wildcard bucket and sees
    every event.
    """
    if isinstance(pattern, QTerm):
        if isinstance(pattern.label, LabelVar) or pattern.label == "*":
            return None
        return frozenset((pattern.label,))
    if isinstance(pattern, Data):
        if pattern.label == "*":
            return None
        return frozenset((pattern.label,))
    if isinstance(pattern, Var):
        if pattern.inner is None:
            return None
        return pattern_interest(pattern.inner)
    # Desc, Without, Optional_, Compare, RegexMatch, scalars: no static label.
    return None


@dataclass(frozen=True)
class Discriminator:
    """A constant a matching event *must* exhibit, below its root label.

    Two kinds, both derived statically from ``EAtom`` / ``ENot`` patterns:

    - ``("attr", name, value)`` — the event's root term must carry
      attribute *name* with exactly the string *value* (query-term
      attributes match partially, so a listed constant attribute is a
      necessary condition);
    - ``("child", label, value)`` — the event's root term must have a
      direct child data term labelled *label* containing the constant
      scalar *value* (non-optional query children must match some data
      child in every matching mode, so presence is necessary).

    Variables, wildcards, ``optional`` and ``without`` children contribute
    no discriminator: they never *require* a constant.  Discriminators are
    necessary, never sufficient — dispatch may still over-deliver (the
    matcher filters), but must never under-deliver.
    """

    kind: str  # "attr" | "child"
    key: str
    value: Scalar

    @property
    def axis(self) -> tuple[str, str]:
        """The ``(kind, key)`` pair this discriminator constrains.

        Two discriminators on the same axis demand (possibly different)
        constants for the same attribute or child label — the unit the
        discrimination trie splits buckets on and the shard router
        partitions hot labels along.
        """
        return (self.kind, self.key)


@dataclass(frozen=True)
class EventInterest:
    """What events an evaluator needs to see, per root label.

    ``by_label`` maps each interesting root label to the (possibly empty)
    set of :class:`Discriminator` constants that *every* event of that
    label must exhibit to affect the query; ``None`` preserves the old
    ``None``-means-all-events semantics (wildcard queries).

    The mapping is stored as a sorted tuple of pairs so interests are
    immutable, hashable, and compare structurally.
    """

    by_label: "tuple[tuple[str, frozenset[Discriminator]], ...] | None"

    @staticmethod
    def all_events() -> "EventInterest":
        """The wildcard interest: every event, any label."""
        return _ALL_EVENTS

    @staticmethod
    def of(mapping: "dict[str, frozenset[Discriminator]]") -> "EventInterest":
        return EventInterest(tuple(sorted(mapping.items())))

    @property
    def labels(self) -> frozenset[str] | None:
        """The interesting root labels; ``None`` means all labels."""
        if self.by_label is None:
            return None
        return frozenset(label for label, _ in self.by_label)

    def discriminators(self, label: str) -> frozenset[Discriminator]:
        """Constants every event with *label* must exhibit (may be empty)."""
        if self.by_label is not None:
            for have, discs in self.by_label:
                if have == label:
                    return discs
        return frozenset()

    def axes(self, label: str) -> tuple[tuple[str, str], ...]:
        """The ordered axis set this interest constrains under *label*.

        Every ``(kind, key)`` axis some discriminator of *label* pins a
        constant on, deterministically ordered (attribute axes first, then
        child axes, each alphabetical) — the full per-pattern axis chain
        the discrimination trie can consume, one level per axis.
        """
        return tuple(sorted({d.axis for d in self.discriminators(label)},
                            key=lambda axis: (axis[0] != "attr", axis)))

    def union(self, other: "EventInterest") -> "EventInterest":
        """Interest of a query needing *either* operand's events.

        Label sets union; where both sides know a label, only the
        discriminators *both* require survive (an event relevant to either
        leaf must be delivered).  A wildcard side absorbs everything.
        """
        if self.by_label is None or other.by_label is None:
            return _ALL_EVENTS
        merged = {label: discs for label, discs in self.by_label}
        for label, discs in other.by_label:
            if label in merged:
                merged[label] = merged[label] & discs
            else:
                merged[label] = discs
        return EventInterest.of(merged)


_ALL_EVENTS = EventInterest(None)


def extract_axis_value(term: Data, kind: str, key: str):
    """The constant *term* exhibits on axis ``(kind, key)``, if unambiguous.

    Returns ``(value, ambiguous)``.  The single shared definition of what
    an event "shows" on a discriminator axis, used by the engine's
    discrimination trie and the shard router's prefix partitioning so the
    two can never disagree:

    - ``("attr", key)`` — the root term's attribute value, or ``None`` if
      absent; attributes are single-valued, so never ambiguous;
    - ``("child", key)`` — the scalar content of the unique direct child
      data term labelled *key*.  Several same-label children, or a child
      with structured / multi-scalar content (``value is None``), make the
      extraction *ambiguous*: the event might match any constant on the
      axis, so dispatch must degrade to every candidate (over-delivery,
      never under-delivery).  No such child at all yields
      ``(None, False)`` — the event definitively lacks the axis.
    """
    if kind == "attr":
        return term.attr(key), False
    found = None
    for child in term.children:
        if isinstance(child, Data) and child.label == key:
            if found is not None:
                return None, True  # several candidates: ambiguous
            found = child
    if found is None:
        return None, False
    if found.value is None:  # structured or multi-scalar child: ambiguous
        return None, True
    return found.value, False


def _child_discriminator(child: Query) -> Discriminator | None:
    """The constant a non-optional query child forces on the data term.

    Delegates the query-term case to
    :func:`repro.terms.simulation.child_value_requirement` — the same
    necessary condition the compiled matcher guards on, so the dispatch
    index and the matcher can never disagree about what is required.
    """
    if isinstance(child, Var) and child.inner is not None:
        return _child_discriminator(child.inner)
    if isinstance(child, Data):
        if child.label != "*" and child.value is not None:
            return Discriminator("child", child.label, child.value)
        return None
    requirement = child_value_requirement(child)
    if requirement is not None:
        return Discriminator("child", requirement[0], requirement[1])  # type: ignore[arg-type]
    return None


def pattern_discriminators(pattern: Query) -> frozenset[Discriminator]:
    """Constants any event matching *pattern* must exhibit.

    Sound in all four matching modes: listed attributes always match
    partially, and every non-optional, non-negated query child must match
    *some* data child — so a constant attribute value or a constant-scalar
    child is required regardless of ordered/unordered, total/partial.
    """
    if isinstance(pattern, Var) and pattern.inner is not None:
        return pattern_discriminators(pattern.inner)
    if isinstance(pattern, Data):
        out = {Discriminator("attr", key, value) for key, value in pattern.attrs}
        for child in pattern.children:
            if isinstance(child, Data) and child.label != "*" and child.value is not None:
                out.add(Discriminator("child", child.label, child.value))
        return frozenset(out)
    if isinstance(pattern, QTerm):
        out = set()
        for key, want in pattern.attrs:
            if isinstance(want, str):
                out.add(Discriminator("attr", key, want))
        for child in pattern.children:
            found = _child_discriminator(child)
            if found is not None:
                out.add(found)
        return frozenset(out)
    return frozenset()


def pattern_event_interest(pattern: Query) -> EventInterest:
    """The :class:`EventInterest` of one event pattern."""
    labels = pattern_interest(pattern)
    if labels is None:
        return EventInterest.all_events()
    discs = pattern_discriminators(pattern)
    return EventInterest.of({label: discs for label in labels})


def query_interest(query: "EventQuery | ENot") -> EventInterest:
    """The events that can affect evaluating *query*, as an interest.

    Covers every leaf that *consumes* events, including ``ENot`` blockers
    inside an ``ESeq``: an absence check must still observe the events
    whose presence would block it, so their labels (and discriminators —
    an event lacking a blocker pattern's required constant cannot block)
    count as interest.  Composites union their members' interests.
    """
    if isinstance(query, (EAtom, ENot)):
        return pattern_event_interest(query.pattern)
    if isinstance(query, (EAnd, EOr, ESeq)):
        out: EventInterest | None = None
        for member in query.members:
            interest = query_interest(member)
            out = interest if out is None else out.union(interest)
            if out.by_label is None:
                return out
        return out if out is not None else EventInterest.of({})
    if isinstance(query, EWithin):
        return query_interest(query.query)
    if isinstance(query, (ECount, EAggregate)):
        return pattern_event_interest(query.pattern)
    raise EventQueryError(f"not an event query: {query!r}")


def validate_query(query: "EventQuery", _window: float | None = None) -> None:
    """Check the structural rules; raises :class:`EventQueryError`.

    - composition nodes need at least one member; ``ESeq`` needs at least
      one positive member;
    - ``ENot`` appears only inside ``ESeq``, never first;
    - a trailing ``ENot`` (or any ``ENot``, which needs bounded blocker
      storage) requires an enclosing ``EWithin``;
    - windows must be positive.
    """
    if isinstance(query, EAtom):
        return
    if isinstance(query, (EAnd, EOr)):
        if not query.members:
            raise EventQueryError(f"{type(query).__name__} needs at least one member")
        for member in query.members:
            if isinstance(member, ENot):
                raise EventQueryError("ENot is only valid inside an ESeq")
            validate_query(member, _window)
        return
    if isinstance(query, ESeq):
        members = query.members
        if not members or not query.positives():
            raise EventQueryError("ESeq needs at least one positive member")
        if isinstance(members[0], ENot):
            raise EventQueryError("ENot cannot be the first member of an ESeq")
        for left, right in zip(members, members[1:]):
            if isinstance(left, ENot) and isinstance(right, ENot):
                raise EventQueryError("adjacent ENot members are redundant; merge them")
        has_not = any(isinstance(m, ENot) for m in members)
        if has_not and _window is None:
            raise EventQueryError(
                "an ESeq containing ENot must be inside an EWithin "
                "(the window bounds absence checking and blocker storage)"
            )
        for member in members:
            if not isinstance(member, ENot):
                validate_query(member, _window)
        return
    if isinstance(query, EWithin):
        if query.window <= 0:
            raise EventQueryError("window must be positive")
        validate_query(query.query, query.window)
        return
    if isinstance(query, ECount):
        if query.n < 1:
            raise EventQueryError("count threshold must be at least 1")
        if query.window <= 0:
            raise EventQueryError("window must be positive")
        return
    if isinstance(query, EAggregate):
        if query.window is not None and query.window <= 0:
            raise EventQueryError("window must be positive")
        return
    raise EventQueryError(f"not an event query: {query!r}")

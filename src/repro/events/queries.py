"""Composite event query algebra (Thesis 5).

The four dimensions the paper requires of an event query language:

1. **Data extraction** — :class:`EAtom` matches one incoming event's payload
   with an ordinary query term, binding variables usable in the rest of the
   rule (condition and action parts).
2. **Event composition** — :class:`EAnd`, :class:`EOr`, :class:`ESeq`
   (temporal sequence) and :class:`ENot` (absence within a sequence frame).
3. **Temporal conditions** — :class:`EWithin` bounds the temporal extent of
   a composite answer ("A and B within 1 hour"); :class:`ESeq` expresses
   relative order ("A before B").
4. **Event accumulation** — :class:`ECount` ("3 outages within 1 hour") and
   :class:`EAggregate` (sliding aggregates such as "average of the last 5
   stock prices", with an optional rise predicate).

Negation is *guarded*: ``ENot`` may appear only between the members of an
``ESeq`` (absence during the gap) or as its final member (absence until a
deadline), and a trailing ``ENot`` needs an enclosing ``EWithin`` to supply
the deadline.  The guard is what keeps event state finite (Thesis 4): every
piece of partial-match state expires with its window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EventQueryError
from repro.terms.ast import Data, LabelVar, QTerm, Query, Var, free_vars


@dataclass(frozen=True)
class EAtom:
    """Matches a single event whose payload matches *pattern*.

    ``alias``, if given, binds the whole event payload term to a variable.
    """

    pattern: Query
    alias: str | None = None


@dataclass(frozen=True)
class EAnd:
    """All member queries answered (any temporal order), bindings joined."""

    members: tuple["EventQuery", ...]

    def __init__(self, *members: "EventQuery") -> None:
        object.__setattr__(self, "members", tuple(members))


@dataclass(frozen=True)
class EOr:
    """Any member query answered."""

    members: tuple["EventQuery", ...]

    def __init__(self, *members: "EventQuery") -> None:
        object.__setattr__(self, "members", tuple(members))


@dataclass(frozen=True)
class ENot:
    """Absence of a matching event; only valid inside an :class:`ESeq`."""

    pattern: Query


@dataclass(frozen=True)
class ESeq:
    """Members answered in strict temporal order (gaps may be negated)."""

    members: tuple["EventQuery | ENot", ...]

    def __init__(self, *members: "EventQuery | ENot") -> None:
        object.__setattr__(self, "members", tuple(members))

    def positives(self) -> tuple["EventQuery", ...]:
        return tuple(m for m in self.members if not isinstance(m, ENot))


@dataclass(frozen=True)
class EWithin:
    """Answers of *query* whose temporal extent is at most *window*."""

    query: "EventQuery"
    window: float


@dataclass(frozen=True)
class ECount:
    """Accumulation: *n* events matching *pattern* within *window*.

    Events are grouped by the projection of their bindings onto
    ``group_by`` (empty tuple: one global group).  An answer is emitted for
    every matching event that completes a group of at least *n* events in
    the sliding window, and carries the most recent *n* of them.
    """

    pattern: Query
    n: int
    window: float
    group_by: tuple[str, ...] = ()


@dataclass(frozen=True)
class EAggregate:
    """Accumulation: sliding aggregate of a bound scalar over matching events.

    For every matching event, aggregates variable ``on`` over the last
    ``size`` matching events (of the same ``group_by`` group) — or over the
    events in the trailing ``window`` if ``size`` is None — and binds the
    result to variable ``into``.

    ``predicate`` optionally filters emissions:

    - ``(op, value)`` with a comparison operator: emit only when
      ``aggregate op value`` holds (e.g. ``(">", 100.0)``);
    - ``("rise%", pct)``: emit only when the aggregate exceeds its value at
      the previous matching event by at least ``pct`` percent (the paper's
      "average of the last 5 stock prices rises by 5%").
    """

    pattern: Query
    on: str
    fn: str
    into: str
    size: int | None = None
    window: float | None = None
    group_by: tuple[str, ...] = ()
    predicate: tuple[str, float] | None = None

    _FNS = ("count", "sum", "avg", "min", "max")

    def __post_init__(self) -> None:
        if self.fn not in self._FNS:
            raise EventQueryError(f"unknown aggregate function {self.fn!r}")
        if (self.size is None) == (self.window is None):
            raise EventQueryError("exactly one of size= or window= must be given")
        if self.size is not None and self.size < 1:
            raise EventQueryError("size must be at least 1")
        if self.predicate is not None:
            op = self.predicate[0]
            if op not in ("==", "!=", "<", "<=", ">", ">=", "rise%"):
                raise EventQueryError(f"unknown aggregate predicate {op!r}")


#: Any event query.
EventQuery = "EAtom | EAnd | EOr | ESeq | EWithin | ECount | EAggregate"


def query_vars(query: "EventQuery | ENot") -> frozenset[str]:
    """Variables an event query can bind."""
    if isinstance(query, EAtom):
        names = free_vars(query.pattern)
        return names | {query.alias} if query.alias else names
    if isinstance(query, (EAnd, EOr, ESeq)):
        out: frozenset[str] = frozenset()
        for member in query.members:
            if not isinstance(member, ENot):
                out |= query_vars(member)
        return out
    if isinstance(query, EWithin):
        return query_vars(query.query)
    if isinstance(query, ECount):
        return frozenset(query.group_by)
    if isinstance(query, EAggregate):
        return frozenset(query.group_by) | {query.into}
    if isinstance(query, ENot):
        return frozenset()
    raise EventQueryError(f"not an event query: {query!r}")


def pattern_interest(pattern: Query) -> frozenset[str] | None:
    """Top-level data-term labels *pattern* can match; ``None`` means any.

    This drives the engine's label-indexed event dispatch: an evaluator is
    only handed events whose root label is in its interest set.  The
    computation is conservative — whenever the label cannot be pinned down
    statically (label variables, ``desc``, bare variables, comparison
    patterns), the pattern lands in the wildcard bucket and sees every
    event.
    """
    if isinstance(pattern, QTerm):
        if isinstance(pattern.label, LabelVar) or pattern.label == "*":
            return None
        return frozenset((pattern.label,))
    if isinstance(pattern, Data):
        if pattern.label == "*":
            return None
        return frozenset((pattern.label,))
    if isinstance(pattern, Var):
        if pattern.inner is None:
            return None
        return pattern_interest(pattern.inner)
    # Desc, Without, Optional_, Compare, RegexMatch, scalars: no static label.
    return None


def query_interest(query: "EventQuery | ENot") -> frozenset[str] | None:
    """Event labels that can affect evaluating *query*; ``None`` means all.

    The set covers every leaf that *consumes* events, including ``ENot``
    blockers inside an ``ESeq``: an absence check must still observe the
    events whose presence would block it, so their labels count as interest.
    """
    if isinstance(query, EAtom):
        return pattern_interest(query.pattern)
    if isinstance(query, ENot):
        return pattern_interest(query.pattern)
    if isinstance(query, (EAnd, EOr, ESeq)):
        out: frozenset[str] = frozenset()
        for member in query.members:
            labels = query_interest(member)
            if labels is None:
                return None
            out |= labels
        return out
    if isinstance(query, EWithin):
        return query_interest(query.query)
    if isinstance(query, (ECount, EAggregate)):
        return pattern_interest(query.pattern)
    raise EventQueryError(f"not an event query: {query!r}")


def validate_query(query: "EventQuery", _window: float | None = None) -> None:
    """Check the structural rules; raises :class:`EventQueryError`.

    - composition nodes need at least one member; ``ESeq`` needs at least
      one positive member;
    - ``ENot`` appears only inside ``ESeq``, never first;
    - a trailing ``ENot`` (or any ``ENot``, which needs bounded blocker
      storage) requires an enclosing ``EWithin``;
    - windows must be positive.
    """
    if isinstance(query, EAtom):
        return
    if isinstance(query, (EAnd, EOr)):
        if not query.members:
            raise EventQueryError(f"{type(query).__name__} needs at least one member")
        for member in query.members:
            if isinstance(member, ENot):
                raise EventQueryError("ENot is only valid inside an ESeq")
            validate_query(member, _window)
        return
    if isinstance(query, ESeq):
        members = query.members
        if not members or not query.positives():
            raise EventQueryError("ESeq needs at least one positive member")
        if isinstance(members[0], ENot):
            raise EventQueryError("ENot cannot be the first member of an ESeq")
        for left, right in zip(members, members[1:]):
            if isinstance(left, ENot) and isinstance(right, ENot):
                raise EventQueryError("adjacent ENot members are redundant; merge them")
        has_not = any(isinstance(m, ENot) for m in members)
        if has_not and _window is None:
            raise EventQueryError(
                "an ESeq containing ENot must be inside an EWithin "
                "(the window bounds absence checking and blocker storage)"
            )
        for member in members:
            if not isinstance(member, ENot):
                validate_query(member, _window)
        return
    if isinstance(query, EWithin):
        if query.window <= 0:
            raise EventQueryError("window must be positive")
        validate_query(query.query, query.window)
        return
    if isinstance(query, ECount):
        if query.n < 1:
            raise EventQueryError("count threshold must be at least 1")
        if query.window <= 0:
            raise EventQueryError("window must be positive")
        return
    if isinstance(query, EAggregate):
        if query.window is not None and query.window <= 0:
            raise EventQueryError("window must be positive")
        return
    raise EventQueryError(f"not an event query: {query!r}")

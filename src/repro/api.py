"""The unified public API: reactive nodes and a fluent rule builder.

The paper's Thesis 2 makes the *node* — a Web site with local resources,
an inbox, and its own rule base — the unit of the system.  This module
gives that unit a single first-class object, so applications never have to
hand-wire a :class:`~repro.web.node.WebNode` to a
:class:`~repro.core.engine.ReactiveEngine`::

    from repro.web import Simulation

    sim = Simulation()
    shop = sim.reactive_node("http://shop.example")      # -> ReactiveNode
    shop.put("http://shop.example/stock", 'stock{ item["ball"] }')
    shop.install('''
        RULE take-order
        ON order{{ item[var I], reply-to[var C] }}
        DO RAISE TO var C confirmation{ item[var I] }
    ''')

:class:`ReactiveNode` bundles rule management (``install`` / ``uninstall``
/ ``define_procedure`` / ``define_web_views``), messaging (``raise_event``
/ ``raise_local``), resource access (``get`` / ``put`` / ``delete``) and
the engine's ``stats`` behind one facade.  With
``EngineConfig(ingest=IngestConfig(...))`` the facade also fronts the
ingestion tier (:mod:`repro.ingest`): :attr:`ReactiveNode.ingest` is the
admission gateway, :meth:`ReactiveNode.loopback` hands out in-process
clients, and the engine ``stats`` snapshot mirrors the front door's
admission counters and enqueue-to-fire latency percentiles.  Anywhere a term or rule is expected, a
surface-syntax string is accepted and parsed.

For building rules programmatically there is a fluent builder that lowers
to the existing :class:`~repro.core.rules.ECARule`::

    from repro import rule

    shop.install(
        rule("restock-alert")
        .on('COUNT 3 OF out-of-stock{{ item[var I] }} WITHIN 60.0 BY [I]')
        .when('IN "http://shop.example/config" : alerts{{ enabled["yes"] }}')
        .do('RAISE TO "http://ops.example" restock{ item[var I] }')
    )

``.on`` / ``.when`` / ``.do`` accept either surface-syntax strings or the
structured objects (event queries, conditions, actions); several
``.when(...).do(...)`` pairs build an ECnAn rule, ``.otherwise`` the final
else branch, and ``.firing("first")`` selects single-firing semantics.

Engines are tuned through :class:`~repro.core.engine.EngineConfig` — the
one place every knob is documented: consumption policy, deductive event
views, the dispatch pipeline (broadcast / root-label / discriminating),
delivery (``sync_delivery`` / ``inbox_batch`` / ``coalesced_wakeups``),
scale-out (``shards``), and persistence (``store`` — a
:class:`~repro.store.StoreConfig` swaps a durable WAL- or sqlite-backed
resource store under the node before anything attaches; reopening on the
same path recovers committed state, and
:meth:`ReactiveNode.deliver_replayed` re-notifies the replayed commits
exactly once) — passed as ``sim.reactive_node(uri,
config=...)``.

With ``EngineConfig(shards=N)`` (N > 1) the facade fronts N engine
shards behind a :class:`~repro.sharding.ShardRouter` instead of a single
engine: rules are partitioned by root label (hot labels are split along
their most selective discriminator axis — attribute value or constant
child — the same prefixes the in-engine trie recurses on), each shard
drains its own FIFO inbox, and answers and firing order stay identical
to ``shards=1``.  The
facade surface is unchanged; :attr:`ReactiveNode.shards` and
:attr:`ReactiveNode.shard_stats` expose the fleet.  Adding
``executor="threads"`` moves each shard's event matching onto a pinned
worker thread (:mod:`repro.runtime`) behind an epoch/barrier protocol —
still observationally identical; :attr:`ReactiveNode.executor` (and
``stats["executor"]``) reports which layer is driving.

The old explicit wiring (``ReactiveEngine(sim.node(uri))``) keeps working;
the facade is sugar over it, not a replacement.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.core.engine import EngineConfig, EngineStats, ReactiveEngine
from repro.sharding import ShardRouter
from repro.core.rules import ECARule
from repro.deductive.rules import Program
from repro.errors import RuleError
from repro.events.model import Event
from repro.events.queries import EWithin
from repro.lang.parser import (
    parse_action,
    parse_condition,
    parse_event_query,
    parse_program,
)
from repro.terms.ast import Data
from repro.terms.parser import parse_data

__all__ = ["EngineConfig", "NodeStats", "ReactiveNode", "RuleBuilder", "rule"]


class RuleBuilder:
    """Fluent construction of an :class:`~repro.core.rules.ECARule`.

    Build order: ``.on`` once, then any number of ``.when``/``.do`` branch
    pairs (``.do`` without a preceding ``.when`` makes an unconditional
    branch; consecutive ``.when`` calls are conjoined), optionally
    ``.otherwise`` and ``.firing``.  ``.build()`` lowers to the frozen
    :class:`ECARule`; installing the builder directly on a
    :class:`ReactiveNode` builds it implicitly.
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._event = None
        self._branches: list[tuple[object, object]] = []
        self._pending = None
        self._otherwise = None
        self._firing = "all"

    def on(self, event) -> "RuleBuilder":
        """Set the event query (surface string or structured query)."""
        if self._event is not None:
            raise RuleError(f"rule {self._name!r} already has an event query")
        self._event = parse_event_query(event) if isinstance(event, str) else event
        return self

    def when(self, condition) -> "RuleBuilder":
        """Add a condition for the next ``.do`` (strings are parsed)."""
        if isinstance(condition, str):
            condition = parse_condition(condition)
        if self._pending is None:
            self._pending = condition
        else:
            from repro.core.conditions import AndCond

            self._pending = AndCond(self._pending, condition)
        return self

    def do(self, action) -> "RuleBuilder":
        """Close the current branch with its action (strings are parsed)."""
        if isinstance(action, str):
            action = parse_action(action)
        self._branches.append((self._pending, action))
        self._pending = None
        return self

    def otherwise(self, action) -> "RuleBuilder":
        """Set the final else action, fired when no branch condition holds."""
        if self._otherwise is not None:
            raise RuleError(f"rule {self._name!r} already has an otherwise action")
        self._otherwise = parse_action(action) if isinstance(action, str) else action
        return self

    def within(self, seconds: float) -> "RuleBuilder":
        """Constrain the event query to a *seconds*-wide sliding window.

        Sugar for wrapping the ``.on(...)`` query in an
        :class:`~repro.events.queries.EWithin` — required before sequences
        with negation (the window bounds absence checking and blocker
        storage).  Call after ``.on``; repeated calls nest (the answers
        must satisfy every window).
        """
        if self._event is None:
            raise RuleError(
                f"rule {self._name!r} needs an event query before "
                ".within(...): call .on(...) first"
            )
        self._event = EWithin(self._event, seconds)
        return self

    def firing(self, mode: str) -> "RuleBuilder":
        """Select the firing mode: ``"all"`` (default) or ``"first"``."""
        self._firing = mode
        return self

    def build(self) -> ECARule:
        """Lower to a frozen :class:`ECARule` (validates the event query)."""
        if self._event is None:
            raise RuleError(f"rule {self._name!r} needs an event query: .on(...)")
        if self._pending is not None:
            raise RuleError(
                f"rule {self._name!r} has a dangling .when(...); close it with .do(...)"
            )
        return ECARule(self._name, self._event, tuple(self._branches),
                       self._otherwise, self._firing)


def rule(name: str) -> RuleBuilder:
    """Start building a rule: ``rule("n").on(E).when(C).do(A)``."""
    return RuleBuilder(name)


class NodeStats:
    """Every counter of one node, behind one namespace.

    Three typed sub-views, taken together in one consistent snapshot by
    :attr:`ReactiveNode.stats`:

    - :attr:`engine` — the node-wide
      :class:`~repro.core.engine.EngineStats` snapshot (shards summed,
      node-inbox gauges and ingestion headline counters mirrored in);
    - :attr:`shards` — per-shard :class:`EngineStats` snapshots, each
      carrying its own FIFO inbox's depth/peak; length 1 (mirroring the
      node inbox) when unsharded;
    - :attr:`ingest` — the ingestion gateway's live
      :class:`~repro.ingest.stats.IngestStats`, or ``None`` without a
      gateway.

    Any other attribute or ``["key"]`` access delegates to :attr:`engine`,
    so ``node.stats.rule_firings`` and ``node.stats["executor"]`` read
    exactly as before the namespace existed.
    """

    __slots__ = ("engine", "shards", "ingest")

    def __init__(self, engine: EngineStats, shards: tuple, ingest) -> None:
        self.engine = engine
        self.shards = shards
        self.ingest = ingest

    def __getattr__(self, name: str):
        return getattr(self.engine, name)

    def __getitem__(self, key: str):
        return self.engine[key]

    def __repr__(self) -> str:
        gateway = "" if self.ingest is None else ", ingest"
        return (f"NodeStats(rule_firings={self.engine.rule_firings}, "
                f"shards={len(self.shards)}{gateway})")


class ReactiveNode:
    """One reactive Web site: a node and its rule engine behind one facade.

    Created via :meth:`repro.web.node.Simulation.reactive_node`.  The
    underlying parts stay reachable as :attr:`node` and :attr:`engine` for
    anything the facade does not cover.
    """

    def __init__(self, node, config: EngineConfig | None = None) -> None:
        self.node = node
        # Persistence first: the durable store must be in place as
        # `node.resources` *before* the engine (or shard fleet) attaches
        # its watchers — every later layer dereferences node.resources
        # dynamically, so this swap is the single point of configuration.
        # Recovery happens here (open_store replays the backend's log);
        # the replayed commit notifications wait until deliver_replayed().
        if config is not None and config.store is not None \
                and config.store.backend != "memory":
            from repro.store import open_store

            node.resources = open_store(config.store)
        self.store = node.resources
        if config is not None and config.shards > 1:
            # N engine shards behind a router; `engine` stays None so a
            # caller reaching for single-engine internals fails loudly
            # instead of touching one arbitrary shard.
            self.router: ShardRouter | None = ShardRouter(node, config)
            self.engine = None
            self._impl = self.router
        else:
            self.engine = ReactiveEngine(node, config=config)
            self.router = None
            self._impl = self.engine
        # The ingestion gateway registers its latency hook *after* the
        # engine/router, so it observes each event post-firing — that is
        # what makes its latency reading "enqueue to fire".
        if config is not None and config.ingest is not None:
            from repro.ingest.admission import IngestGateway

            self.ingest: "IngestGateway | None" = IngestGateway(
                node, config.ingest)
        else:
            self.ingest = None

    # -- identity ------------------------------------------------------------

    @property
    def uri(self) -> str:
        return self.node.uri

    @property
    def now(self) -> float:
        return self.node.now

    @property
    def shards(self) -> tuple[ReactiveEngine, ...]:
        """The underlying engine shard(s); length 1 unless sharded."""
        if self.router is not None:
            return self.router.engines
        return (self.engine,)

    @property
    def executor(self) -> str:
        """The *effective* execution layer: ``"threads"`` when a sharded
        fleet is driven by per-shard worker threads, else ``"inline"``
        (an unsharded node always runs inline — there is no fleet to
        drive — as does a sharded node under ``sync_delivery=True``).
        Also available as ``stats["executor"]``."""
        if self.router is not None:
            return self.router.executor_name
        return "inline"

    @property
    def stats(self) -> NodeStats:
        """A consistent snapshot of the node's counters (:class:`NodeStats`).

        The snapshot's sub-views are ``stats.engine`` (the node-wide
        :class:`EngineStats`), ``stats.shards`` (per-shard snapshots) and
        ``stats.ingest`` (the gateway's live
        :class:`~repro.ingest.stats.IngestStats`, or ``None``); plain
        attribute and ``["key"]`` access keep delegating to the engine
        view.  Keys of the engine view (all monotone counters unless
        noted):

        - ``events_processed`` — events handled by the engine(s); on a
          sharded node every shard's copy of a replicated delivery counts
          (fleet work, not unique events);
        - ``derived_events`` — extra events produced by deductive event
          views (Thesis 9);
        - ``rule_firings`` / ``condition_evaluations`` /
          ``actions_executed`` — the ECA pipeline: answers fired,
          condition parts evaluated, actions run;
        - ``updates_applied`` / ``events_raised`` / ``rollbacks`` —
          action effects: resource updates, RAISEd messages, atomic
          sequences rolled back;
        - ``wakeups`` / ``evaluator_advances`` — absence-deadline
          scheduling: scheduler wake-ups taken and evaluators advanced at
          them (sharded: summed per shard involved);
        - ``candidates_considered`` / ``index_probes`` /
          ``matcher_calls`` — dispatch efficiency: (rule, evaluator)
          pairs handed an event, discrimination-trie node visits while
          routing it (≈ trie depth per event, bounded by
          ``EngineConfig(trie_depth=...)``), and term-matcher calls;
        - ``firings_deduped`` — answers produced by replicas of rules
          hosted on several shards and suppressed there (the designated
          shard fired them — or, for an event ambiguous on a split child
          axis, the shard designated *per rule*); 0 unless
          ``shards > 1``;
        - ``firings_suppressed`` — answers of combinator-group members
          (``priority_group`` / ``first_match`` /
          ``specificity_override``) outranked by their group's winner
          and therefore never fired; 0 without combinator groups;
        - ``inbox_depth`` / ``inbox_peak`` — *gauges*: the node inbox's
          current and peak backlog (backpressure);
        - ``executor`` — the effective execution layer (``"inline"`` or
          ``"threads"``; dict-style access works too:
          ``node.stats["executor"]``); with threads, ``epochs`` counts
          barrier round-trips and ``barrier_wait_s`` the wall-clock
          seconds the scheduler thread spent joining workers (both 0
          inline);
        - ``evaluator_switches`` — mechanism switches taken by adaptive
          evaluators (``EngineConfig(evaluator="adaptive")``), summed
          across rules and shards (replicas included, like every fleet
          counter); always 0 for fixed mechanisms.  The per-rule view is
          :meth:`mechanisms`.

        With an ingestion gateway configured (``EngineConfig(ingest=...)``)
        the snapshot additionally mirrors the front door's headline
        numbers — ``ingest_admitted`` / ``ingest_rejected`` /
        ``ingest_dropped`` / ``ingest_rate_limited`` / ``ingest_malformed``
        / ``ingest_spilled`` counters and the enqueue-to-fire
        ``ingest_latency_p50`` / ``p99`` / ``max`` gauges (simulated
        seconds); the full counter set is at ``stats.ingest``.  All
        zero without a gateway.

        On a sharded node the engine view sums all shards (see
        :meth:`~repro.sharding.ShardRouter.aggregate_stats`); per-shard
        snapshots — including each shard's own inbox depth/peak — are at
        ``stats.shards``.  Re-read the property for fresh values; a
        single engine's live object stays at ``engine.stats``.
        """
        stats = (self.router.aggregate_stats() if self.router is not None
                 else replace(self.engine.stats,
                              evaluator_switches=self.engine.evaluator_switches()))
        stats = replace(stats,
                        inbox_depth=self.node.inbox_depth,
                        inbox_peak=self.node.inbox_peak)
        ingest = self.ingest.stats if self.ingest is not None else None
        if ingest is not None:
            stats = replace(
                stats,
                ingest_admitted=ingest.admitted,
                ingest_rejected=ingest.rejected,
                ingest_dropped=ingest.dropped,
                ingest_rate_limited=ingest.rate_limited,
                ingest_malformed=ingest.malformed,
                ingest_spilled=ingest.spilled,
                ingest_latency_p50=ingest.latency.percentile(50.0),
                ingest_latency_p99=ingest.latency.percentile(99.0),
                ingest_latency_max=ingest.latency.max,
            )
        if self.router is not None:
            shards = self.router.shard_stats()
        else:
            shards = (replace(self.engine.stats,
                              inbox_depth=self.node.inbox_depth,
                              inbox_peak=self.node.inbox_peak,
                              evaluator_switches=self.engine.evaluator_switches()),)
        return NodeStats(stats, shards, ingest)

    def mechanisms(self) -> dict[str, dict]:
        """Per-rule evaluation-mechanism report, by rule name.

        Each row carries ``mechanism`` (``"incremental"`` / ``"tree"`` /
        ``"naive"`` — for ``evaluator="adaptive"``, whichever the
        governor currently runs), ``switches`` (mechanism switches taken
        so far; always 0 for fixed mechanisms), and ``pinned`` (adaptive
        only: ``True`` when the query admits no safe runtime switch and
        is pinned to its initial mechanism; ``None`` for fixed
        mechanisms).  On a sharded node replicas of one rule agree — the
        governor decides from replica-identical signals — so one row per
        rule is reported.
        """
        impl = self.router if self.router is not None else self.engine
        return impl.mechanism_report()

    @property
    def ingest_stats(self):
        """Deprecated alias for ``stats.ingest``: the gateway's live
        :class:`~repro.ingest.stats.IngestStats`, or ``None`` without a
        gateway.  Kept so existing callers and examples keep working;
        new code should read :attr:`stats` and use its sub-views."""
        return self.ingest.stats if self.ingest is not None else None

    @property
    def shard_stats(self) -> tuple[EngineStats, ...]:
        """Deprecated alias for ``stats.shards``: per-shard snapshots,
        one :class:`EngineStats` each, carrying that shard's *own* FIFO
        inbox gauges.  Length 1 (mirroring the node inbox) when
        unsharded.  Kept so existing callers and examples keep working;
        new code should read :attr:`stats` and use its sub-views."""
        if self.router is not None:
            return self.router.shard_stats()
        return (replace(self.engine.stats,
                        inbox_depth=self.node.inbox_depth,
                        inbox_peak=self.node.inbox_peak,
                        evaluator_switches=self.engine.evaluator_switches()),)

    def __repr__(self) -> str:
        shards = "" if self.router is None else f", shards={len(self.router.engines)}"
        return f"ReactiveNode({self.uri!r}, rules={len(self._impl.rules())}{shards})"

    # -- rule management -------------------------------------------------------

    def install(self, *items) -> "ReactiveNode":
        """Install rules, rule sets, builders, or surface-syntax programs.

        Each item may be an :class:`ECARule`, a :class:`RuleSet`, a
        :class:`RuleBuilder` (built implicitly), or a string holding one or
        more ``RULE`` / ``RULESET`` / ``PROCEDURE`` definitions.
        """
        # Parse and validate everything before mutating the engine, so a
        # bad item late in the arguments cannot leave a half-installed node.
        batch = []
        procedures = []
        for item in items:
            if isinstance(item, str):
                for parsed in parse_program(item):
                    if isinstance(parsed, tuple) and parsed[0] == "procedure":
                        procedures.append(parsed[1:])
                    else:
                        batch.append(parsed)
            elif isinstance(item, RuleBuilder):
                batch.append(item.build())
            else:
                batch.append(item)
        self._impl.install_all(batch, procedures)  # atomic across both
        return self

    def uninstall(self, item) -> "ReactiveNode":
        """Remove an installed rule or rule set (by object or name)."""
        self._impl.uninstall(item)
        return self

    def rules(self) -> list[str]:
        """Names of the currently active rules (rule-set rules qualified)."""
        return self._impl.rules()

    def define_procedure(self, name: str, params, action) -> "ReactiveNode":
        """Register a named action procedure (Thesis 9)."""
        if isinstance(params, str):
            raise RuleError(
                f"params must be a sequence of parameter names, "
                f"not the bare string {params!r}"
            )
        if isinstance(action, str):
            action = parse_action(action)
        self._impl.define_procedure(name, tuple(params), action)
        return self

    def define_web_views(self, uri: str, program: Program) -> "ReactiveNode":
        """Attach deductive views to a local resource (Thesis 9)."""
        self._impl.define_web_views(uri, program)
        return self

    # -- messaging --------------------------------------------------------------

    def raise_event(self, to: str, term: "Data | str") -> "ReactiveNode":
        """Push an event message to another node (strings are parsed)."""
        self.node.raise_event(to, self._term(term))
        return self

    def raise_local(self, term: "Data | str") -> "ReactiveNode":
        """Dispatch an event to this node's own rules, without the network."""
        self.node.raise_local(self._term(term))
        return self

    def on_event(self, handler: Callable[[Event], None]) -> "ReactiveNode":
        """Register an extra inbox handler alongside the rule engine."""
        self.node.on_event(handler)
        return self

    # -- resources -----------------------------------------------------------------

    def get(self, uri: str) -> Data:
        """Read a resource: local directly, remote over the network."""
        return self.node.get(uri)

    def put(self, uri: str, root: "Data | str") -> "ReactiveNode":
        """Write a local resource (strings are parsed as data terms)."""
        self.node.put(uri, self._term(root))
        return self

    def delete(self, uri: str) -> "ReactiveNode":
        """Delete a local resource (remote deletes go through events)."""
        self.node.delete(uri)
        return self

    # -- persistence ---------------------------------------------------------

    def deliver_replayed(self) -> int:
        """Deliver recovery-replayed commit notifications, exactly once.

        On a node reopened over a durable store
        (``EngineConfig(store=StoreConfig(backend="wal" | "sqlite",
        path=...))``) the commits recovered from the log wait until this
        is called, so watchers registered *after* construction — polling
        baselines, identity monitors, application callbacks — hear each
        replayed commit exactly once.  Returns the number of commits
        delivered; 0 on a memory-backed node, on a fresh store, and on
        every call after the first.
        """
        return self.node.resources.deliver_replayed()

    def checkpoint(self) -> "ReactiveNode":
        """Compact the durable store now (no-op on a memory backend):
        fold the current state into the backend's snapshot and discard
        the log prefix it covers."""
        checkpoint = getattr(self.node.resources, "checkpoint", None)
        if checkpoint is not None:
            checkpoint()
        return self

    def close(self) -> None:
        """Release the durable store's file handles (idempotent; no-op
        on a memory backend).  Mutations after close raise
        :class:`~repro.errors.StoreError`."""
        close = getattr(self.node.resources, "close", None)
        if close is not None:
            close()

    # -- ingestion ------------------------------------------------------------

    def loopback(self, sender: str = "", codec: str = "wire"):
        """An in-process ingestion client bound to this node's gateway.

        Requires ``EngineConfig(ingest=IngestConfig(...))``; see
        :class:`repro.ingest.transport.LoopbackClient` for the codecs.
        """
        from repro.ingest.transport import LoopbackClient

        if self.ingest is None:
            raise RuleError(
                f"{self.uri} has no ingestion gateway; configure one with "
                "EngineConfig(ingest=IngestConfig(...))"
            )
        return LoopbackClient(self.ingest, sender=sender, codec=codec)

    @staticmethod
    def _term(term: "Data | str") -> Data:
        return parse_data(term) if isinstance(term, str) else term

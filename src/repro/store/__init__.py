"""Durable resource-store persistence (pluggable WAL / sqlite backends).

The paper's persistent resources (Thesis 4) and transactional updates
(Thesis 8) meet reality here: a :class:`DurableResourceStore` is a
drop-in :class:`~repro.web.resources.ResourceStore` whose *committed*
state survives process death, recovered on reopen with the per-URI
version floors intact and the replayed commits re-notified exactly once.

Pick a backend with :class:`StoreConfig` and open it through the facade
(``ReactiveNode(EngineConfig(store=StoreConfig(backend="wal",
path=...)))``) or directly via :func:`open_store`.  ``backend="memory"``
(the default) is bit-for-bit the store every node always had.

Layout:

- :mod:`repro.store.backend` — the commit codec, recovery replay, the
  :class:`StoreBackend` contract, :class:`DurableResourceStore`, and the
  :data:`BACKENDS` registry;
- :mod:`repro.store.wal` — CRC-framed append-only log + atomically
  swapped snapshot, torn-tail repair;
- :mod:`repro.store.sqlite` — the same snapshot+log shape inside one
  SQLite database;
- :mod:`repro.store.fault` — the fault-injection harness
  (:class:`~repro.store.fault.FaultPlan`,
  :class:`~repro.store.fault.FaultyFile`,
  :func:`~repro.store.fault.crash_outcomes`) that *proves* the
  crash-at-any-point recovery property instead of asserting it.
"""

from repro.store.backend import (
    BACKENDS,
    DurableResourceStore,
    Recovery,
    StoreBackend,
    StoreConfig,
    decode_commit,
    encode_commit,
    open_store,
    register_backend,
)

__all__ = [
    "BACKENDS",
    "DurableResourceStore",
    "Recovery",
    "StoreBackend",
    "StoreConfig",
    "decode_commit",
    "encode_commit",
    "open_store",
    "register_backend",
]

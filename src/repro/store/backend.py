"""The pluggable persistence layer behind :class:`ResourceStore`.

Thesis 8 made updates transactional; this module makes the committed
ones *durable*.  A :class:`DurableResourceStore` is a drop-in
:class:`~repro.web.resources.ResourceStore` that routes the base class's
``_persist`` seam — called with the operations of exactly one outermost
commit, before any transactional watcher hears about it — into a
:class:`StoreBackend`, and rebuilds its in-memory state from that backend
when reopened.

The commit is the unit of everything:

- **Atomicity** — one commit is one backend record (one WAL append / one
  sqlite transaction), so a whole outermost
  :class:`~repro.updates.transactions.Transaction` becomes durable with
  a single fsync (*group commit*) or not at all; a crash can never
  expose half of one.
- **Recovery** — reopening a store replays the backend's retained
  commits onto its latest snapshot.  Replay restores the documents,
  keeps the per-URI monotonic version floor (the announced version of a
  committed op *is* the floor after it), and reconstructs each op's
  ``old`` root by applying records in order — so the replayed watcher
  notifications carry exactly what the original delivery carried.
- **Exactly-once replay notification** — the replayed commits wait in
  the reopened store until :meth:`DurableResourceStore.deliver_replayed`
  flushes them to the *currently* registered transactional watchers; a
  second call delivers nothing.  Commits compacted into a snapshot are
  never replayed (and never re-notified), so the contract is: register
  watchers, call ``deliver_replayed()`` once, and every commit since the
  last checkpoint is heard exactly once.

Rolled-back transactions never reach the seam, so they are never
persisted — including the version numbers they burned.  Recovery
therefore restores the floors of the *committed prefix*: a number burned
by an uncommitted mutation after the last commit may be reused after a
crash, which is harmless because no transactional watcher ever heard it.

Commit records travel as the textual term serialisation the wire
protocol already round-trips (:mod:`repro.terms.parser`), so any
serialisable document body persists unchanged::

    commit{ seq[12]
            op{ uri["http://a.example/doc"] version[3] body{ doc{ ... } } }
            op{ uri["http://a.example/gone"] version[7] } }     # a delete

Backends register by name in :data:`BACKENDS` (``memory`` / ``wal`` /
``sqlite`` ship here; :func:`register_backend` adds more), selected via
:class:`StoreConfig` on the facade:
``EngineConfig(store=StoreConfig(backend="wal", path=...))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import StoreError
from repro.terms.ast import Data, d
from repro.terms.parser import parse_data, to_text
from repro.web.resources import Document, ResourceStore

#: One committed operation: (uri, old_root_or_None, new_root_or_None,
#: version) — the watcher tuple.  ``new is None`` is a delete.
Op = tuple

# ---------------------------------------------------------------------------
# Commit record codec (shared by the WAL and sqlite backends)
# ---------------------------------------------------------------------------


def encode_commit(seq: int, ops: Sequence[Op]) -> str:
    """Serialise one commit as term text (``old`` roots are not stored:
    replay reconstructs them by applying records in order)."""
    children: list[Data] = [d("seq", seq)]
    for uri, _old, new, version in ops:
        parts: list[Data] = [d("uri", uri), d("version", version)]
        if new is not None:
            parts.append(d("body", new))
        children.append(d("op", *parts))
    return to_text(d("commit", *children))


def decode_commit(text: str) -> "tuple[int, list[tuple[str, Data | None, int]]]":
    """Parse commit text back into ``(seq, [(uri, new_or_None, version)])``.

    Raises :class:`StoreError` for anything that is not a commit record —
    the recovery scanners treat that exactly like a torn record.
    """
    try:
        term = parse_data(text)
    except Exception as exc:
        raise StoreError(f"unreadable commit record: {exc}") from exc
    if not isinstance(term, Data) or term.label != "commit":
        raise StoreError(f"not a commit record: {text[:80]!r}")
    seq_term = term.first("seq")
    if seq_term is None or not isinstance(seq_term.value, int):
        raise StoreError("commit record without an integer seq")
    ops: "list[tuple[str, Data | None, int]]" = []
    for op in term.all("op"):
        uri_term, version_term = op.first("uri"), op.first("version")
        if uri_term is None or version_term is None \
                or not isinstance(uri_term.value, str) \
                or not isinstance(version_term.value, int):
            raise StoreError("commit op without uri/version")
        body = op.first("body")
        if body is not None and (len(body.children) != 1
                                 or not isinstance(body.children[0], Data)):
            raise StoreError("commit op body must wrap one data term")
        ops.append((uri_term.value,
                    body.children[0] if body is not None else None,
                    version_term.value))
    return seq_term.value, ops


# ---------------------------------------------------------------------------
# Backend contract
# ---------------------------------------------------------------------------


class Recovery:
    """What a backend hands back from :meth:`StoreBackend.load`."""

    __slots__ = ("documents", "floors", "last_seq", "replayed")

    def __init__(self, documents: "dict[str, Document]",
                 floors: "dict[str, int]", last_seq: int,
                 replayed: "list[tuple[Op, ...]]") -> None:
        self.documents = documents
        self.floors = floors
        self.last_seq = last_seq
        #: Commits replayed from the log (ops with reconstructed ``old``
        #: roots), in commit order — pending exactly-once re-notification.
        self.replayed = replayed

    @staticmethod
    def replay(base_documents: "dict[str, Document]",
               base_floors: "dict[str, int]", base_seq: int,
               commits: "Iterable[tuple[int, list]]") -> "Recovery":
        """Apply decoded ``(seq, [(uri, new, version)])`` commits onto a
        snapshot, reconstructing each op's ``old`` root along the way.
        Records at or below *base_seq* are skipped (already compacted into
        the snapshot — replaying them would double-notify)."""
        documents = dict(base_documents)
        floors = dict(base_floors)
        last_seq = base_seq
        replayed: "list[tuple[Op, ...]]" = []
        for seq, ops in commits:
            if seq <= base_seq:
                continue
            commit_ops: list = []
            for uri, new, version in ops:
                old = documents.get(uri)
                if new is None:
                    documents.pop(uri, None)
                else:
                    documents[uri] = Document(uri, new, version)
                floors[uri] = max(floors.get(uri, 0), version)
                commit_ops.append((uri, old.root if old else None, new,
                                   version))
            replayed.append(tuple(commit_ops))
            last_seq = seq
        return Recovery(documents, floors, last_seq, replayed)


class StoreBackend:
    """What a persistence backend must provide (duck-typed; this base
    class only documents the contract and gives ``close`` a default).

    - ``name`` — the registry name, surfaced in stats and benchmarks.
    - ``load() -> Recovery`` — read the durable state once, at store
      construction.  Must repair (truncate) a torn log tail so later
      appends land on a valid prefix; must never propagate a torn record.
    - ``append_commit(seq, ops)`` — make one commit durable; when it
      returns, a crash must not lose the commit (subject to the
      configured fsync policy).  Raising aborts the mutator.
    - ``checkpoint(documents, floors, seq)`` — fold the current state
      into a snapshot and discard the log prefix it covers.  Must be
      crash-safe at every point: either the old snapshot+log or the new
      one is recovered, never a mix.
    - ``close()`` — release file handles; the store is unusable after.
    """

    name = "?"

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StoreConfig:
    """Everything configurable about one node's resource persistence.

    Passed as ``EngineConfig(store=StoreConfig(...))`` — the facade opens
    the store and swaps it in as ``node.resources`` before the engine
    attaches — or given straight to :func:`repro.store.open_store`.

    - ``backend`` — ``"memory"`` (the default: a plain in-memory
      :class:`~repro.web.resources.ResourceStore`, bit-for-bit the
      pre-persistence path), ``"wal"`` (append-only write-ahead log plus
      periodic snapshot compaction, CRC-framed records, group commit —
      one fsync per outermost transaction), or ``"sqlite"`` (the same
      snapshot+log shape inside a single SQLite database).  Names
      resolve through :data:`BACKENDS`; :func:`register_backend` adds
      custom ones.
    - ``path`` — where the durable backends live: a *directory* for
      ``wal`` (created if missing; holds ``store.wal`` and ``snapshot``),
      a *database file* for ``sqlite``.  Required for both, ignored by
      ``memory``.
    - ``fsync`` — ``True`` (default) fsyncs every commit record before
      the commit is acknowledged: the crash-at-any-point guarantee.
      ``False`` trades that for throughput (data loss bounded by the OS
      page cache on a *power* failure; a mere process crash still loses
      nothing) — the E20 ablation knob.
    - ``snapshot_every`` — commits between automatic checkpoints
      (``None``: only explicit :meth:`DurableResourceStore.checkpoint`
      calls compact).  Smaller values bound recovery replay length and
      log size at the cost of rewriting the snapshot more often.
    - ``fault`` — a :class:`repro.store.fault.FaultPlan` wired into the
      backend's file operations; the fault-injection test seam, ``None``
      in production.
    """

    backend: str = "memory"
    path: "str | None" = None
    fsync: bool = True
    snapshot_every: "int | None" = 256
    fault: "object | None" = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise StoreError(
                f"unknown store backend {self.backend!r} (expected one of "
                f"{', '.join(sorted(BACKENDS))})"
            )
        if self.backend in ("wal", "sqlite") and not self.path:
            # Custom backends judge their own config; the built-in durable
            # ones cannot do anything without somewhere to persist.
            raise StoreError(
                f"backend {self.backend!r} needs a path= to persist into"
            )
        if self.snapshot_every is not None and self.snapshot_every < 1:
            raise StoreError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )


# ---------------------------------------------------------------------------
# The durable store
# ---------------------------------------------------------------------------


class DurableResourceStore(ResourceStore):
    """A :class:`ResourceStore` whose committed state survives restarts.

    Construction *is* recovery: the backend's snapshot is loaded, retained
    log records are replayed onto it (torn tails repaired), the per-URI
    version floors are restored, and the replayed commits wait for one
    :meth:`deliver_replayed` call.  Everything else — transactions,
    watcher buffering, version monotonicity, locking — is inherited
    unchanged; only the ``_persist`` seam gains a real implementation.
    """

    def __init__(self, backend: StoreBackend, *,
                 snapshot_every: "int | None" = None) -> None:
        super().__init__()
        self._backend = backend
        self._snapshot_every = snapshot_every
        self._closed = False
        recovery = backend.load()
        self._documents.update(recovery.documents)
        self._version_floor.update(recovery.floors)
        # Floors as of the last *committed* op — what checkpoint persists.
        # The live _version_floor can run ahead of this (rolled-back
        # mutations burn numbers watchers may have heard), but burned
        # floors are process-local: recovery restores the committed
        # prefix, and reusing a number no committed watcher ever heard is
        # harmless (see the module docstring).
        self._committed_floors: "dict[str, int]" = dict(recovery.floors)
        self._seq = recovery.last_seq
        self._replay_pending: "list[tuple[Op, ...]]" = list(recovery.replayed)
        # Replayed commits count against the checkpoint cadence: a store
        # that crashes every N commits must still compact eventually.
        self._since_checkpoint = len(recovery.replayed)
        self.commits = 0

    # -- the seam -----------------------------------------------------------

    def _persist(self, ops) -> None:
        if self._closed:
            raise StoreError("store is closed; the commit cannot be made "
                             "durable")
        self._seq += 1
        self._backend.append_commit(self._seq, ops)
        for uri, _old, _new, version in ops:
            if version > self._committed_floors.get(uri, 0):
                self._committed_floors[uri] = version
        self.commits += 1
        self._since_checkpoint += 1
        if (self._snapshot_every is not None
                and self._since_checkpoint >= self._snapshot_every):
            self.checkpoint()

    # -- recovery surface ---------------------------------------------------

    @property
    def backend(self) -> StoreBackend:
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def replay_pending(self) -> int:
        """Recovered commits not yet delivered to watchers."""
        return len(self._replay_pending)

    def deliver_replayed(self) -> int:
        """Flush recovery-replayed commit notifications, exactly once.

        Delivers every commit replayed from the log — in commit order, op
        by op — to the currently registered transactional watchers, then
        forgets them: a second call delivers nothing.  Returns the number
        of commits delivered.  Call after registering the watchers that
        should hear the replay (polling baselines, identity monitors);
        immediate watchers are *not* called — they invalidate caches,
        and a freshly reopened store has none to invalidate.
        """
        with self._lock:
            pending, self._replay_pending = self._replay_pending, []
        for ops in pending:
            for uri, old, new, version in ops:
                for watcher in self._watchers:
                    watcher(uri, old, new, version)
        return len(pending)

    def checkpoint(self) -> None:
        """Fold the current state into the backend's snapshot and discard
        the log prefix it covers (crash-safe; see the backend docs).

        Must not run mid-transaction: the snapshot would capture
        uncommitted documents a rollback could still erase.
        """
        with self._lock:
            if self.in_transaction():
                raise StoreError(
                    "checkpoint inside an open transaction would snapshot "
                    "uncommitted state; commit or roll back first"
                )
            self._backend.checkpoint(dict(self._documents),
                                     dict(self._committed_floors), self._seq)
            self._since_checkpoint = 0

    def close(self) -> None:
        """Release the backend (idempotent).  Further mutations raise."""
        if not self._closed:
            self._closed = True
            self._backend.close()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def _open_memory(config: StoreConfig) -> ResourceStore:
    return ResourceStore()


def _open_wal(config: StoreConfig) -> ResourceStore:
    from repro.store.wal import WalBackend

    return DurableResourceStore(
        WalBackend(config.path, fsync=config.fsync, fault=config.fault),
        snapshot_every=config.snapshot_every,
    )


def _open_sqlite(config: StoreConfig) -> ResourceStore:
    from repro.store.sqlite import SqliteBackend

    return DurableResourceStore(
        SqliteBackend(config.path, fsync=config.fsync, fault=config.fault),
        snapshot_every=config.snapshot_every,
    )


#: Backend name -> ``factory(StoreConfig) -> ResourceStore``.
BACKENDS: "dict[str, Callable[[StoreConfig], ResourceStore]]" = {
    "memory": _open_memory,
    "wal": _open_wal,
    "sqlite": _open_sqlite,
}


def register_backend(name: str,
                     factory: "Callable[[StoreConfig], ResourceStore]") -> None:
    """Register a custom persistence backend under *name* (overwrites).

    The factory receives the full :class:`StoreConfig` and returns a
    ready (recovered) :class:`ResourceStore`.
    """
    BACKENDS[name] = factory


def open_store(config: "StoreConfig | None" = None) -> ResourceStore:
    """Open (and recover) the store *config* describes.

    ``None`` or ``backend="memory"`` returns a plain in-memory
    :class:`ResourceStore` — exactly the store every node starts with.
    """
    if config is None:
        config = StoreConfig()
    return BACKENDS[config.backend](config)

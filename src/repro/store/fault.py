"""Fault injection: crash the store at *every* interesting point.

Durability claims are worthless untested, and "kill -9 in a loop" tests
are slow and non-deterministic.  This module makes the crash points
explicit and enumerable instead:

- :class:`FaultPlan` — a countdown over named *fault points*.  Every
  durability-relevant operation of a backend announces itself
  (``plan.point("write")`` …) before executing; the plan either records
  the name (counting mode) or, when the countdown hits the chosen index,
  **simulates the crash**: it applies the configured tear to every
  tracked file and raises :class:`SimulatedCrash`.
- :class:`FaultyFile` — a file wrapper that routes ``write`` / ``sync``
  / ``truncate`` through the plan and tracks which byte prefix has been
  fsynced.  That split is what lets a crash model real storage: bytes
  *synced* before the crash survive; bytes merely written may be kept,
  lost, or **torn in half** depending on the tear mode.
- :func:`crash_outcomes` — the harness: learn the workload's commit
  states and fault-point count from clean runs, then for every
  ``(crash point, tear mode)`` pair run the workload on a fresh target,
  crash it, reopen, and yield a :class:`CrashOutcome` whose
  :meth:`~CrashOutcome.check` asserts the paper-grade property — *the
  reopened store equals a committed prefix* — plus floor preservation
  and exactly-once replay notification.

The enumerated points cover the whole commit pipeline: before the WAL
append (``write``), between append and fsync (``fsync``), after fsync
but before the commit is acknowledged (``fsync-return``), and inside
compaction (snapshot-file writes, the ``snapshot-swap`` rename, the log
``truncate``).  Tear modes: ``"none"`` (unsynced bytes vanish — power
loss), ``"half"`` (half of them land — a torn sector), ``"all"``
(everything written survives — a plain process kill).
"""

from __future__ import annotations

import os

from repro.web.resources import ResourceStore

#: The tear modes :func:`crash_outcomes` enumerates by default.
TEARS = ("none", "half", "all")


class SimulatedCrash(RuntimeError):
    """The injected crash.  Raised out of the store mutation in flight;
    everything in memory is considered lost the moment it is raised."""


class FaultPlan:
    """A deterministic crash schedule over named fault points.

    ``FaultPlan()`` (no crash index) is *counting mode*: every point is
    recorded in :attr:`points` and execution proceeds normally — run the
    workload once this way to learn how many points it has.
    ``FaultPlan(crash_at=k, tear=...)`` crashes at the *k*-th point
    (0-based): tracked files get the tear applied and
    :class:`SimulatedCrash` is raised *instead of* executing the point's
    operation.
    """

    def __init__(self, crash_at: "int | None" = None,
                 tear: str = "none") -> None:
        if tear not in TEARS:
            raise ValueError(f"unknown tear mode {tear!r} "
                             f"(expected one of {TEARS})")
        self.crash_at = crash_at
        self.tear = tear
        self.points: list[str] = []
        self.crashed = False
        self._files: "list[FaultyFile]" = []

    def point(self, name: str) -> None:
        """Announce a fault point; crashes here when the countdown says so."""
        if self.crashed:
            # The process is "dead": any further I/O attempt from
            # not-yet-unwound frames must not resurrect it.
            raise SimulatedCrash(f"already crashed; refusing {name}")
        index = len(self.points)
        self.points.append(name)
        if self.crash_at is not None and index == self.crash_at:
            self.crashed = True
            for file in list(self._files):
                file._apply_tear(self.tear)
            raise SimulatedCrash(f"injected crash at point {index}: {name}")

    # -- file tracking -------------------------------------------------------

    def _track(self, file: "FaultyFile") -> None:
        self._files.append(file)

    def _untrack(self, file: "FaultyFile") -> None:
        if file in self._files:
            self._files.remove(file)


class FaultyFile:
    """A write-path file wrapper that makes durability observable.

    Wraps a binary file opened for appending/writing.  ``write``,
    ``sync`` and ``truncate`` announce fault points; ``sync`` (the
    fsync hook :func:`repro.store.wal._fsync_file` prefers over raw
    ``os.fsync``) records the file size as *durable*.  When the plan
    crashes, the file is cut back to ``durable + tear(unsynced)`` — the
    on-disk state a real crash could leave — and closed.
    """

    def __init__(self, file, plan: FaultPlan) -> None:
        self._file = file
        self._plan = plan
        self._durable = os.fstat(file.fileno()).st_size
        self._closed = False
        plan._track(self)

    # -- durability-relevant operations (fault points) -----------------------

    def write(self, data: bytes) -> int:
        self._plan.point("write")
        return self._file.write(data)

    def sync(self) -> None:
        self._plan.point("fsync")
        self._file.flush()
        os.fsync(self._file.fileno())
        self._durable = os.fstat(self._file.fileno()).st_size
        # A crash *here* models the narrow window where the record is
        # durable but the commit was never acknowledged to its caller.
        self._plan.point("fsync-return")

    def truncate(self, size: "int | None" = None) -> int:
        self._plan.point("truncate")
        self._file.flush()
        result = self._file.truncate(0 if size is None else size)
        self._durable = min(self._durable, result)
        return result

    # -- passthrough ---------------------------------------------------------

    def flush(self) -> None:
        self._file.flush()

    def fileno(self) -> int:
        return self._file.fileno()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._plan._untrack(self)
            self._file.close()

    # -- crash application ---------------------------------------------------

    def _apply_tear(self, tear: str) -> None:
        """Cut the file to what a crash could have left on disk."""
        if self._closed:
            return
        self._closed = True
        self._plan._untrack(self)
        file = self._file
        file.flush()
        written = os.fstat(file.fileno()).st_size
        unsynced = written - self._durable
        if tear == "all" or unsynced <= 0:
            keep = written
        elif tear == "none":
            keep = self._durable
        else:  # "half": a torn write — part of the unsynced tail lands
            keep = self._durable + unsynced // 2
        file.truncate(keep)
        file.flush()
        os.fsync(file.fileno())
        file.close()


# ---------------------------------------------------------------------------
# The crash-point enumeration harness
# ---------------------------------------------------------------------------


class _Oracle(ResourceStore):
    """A plain in-memory store that records the state after every commit
    — the ground truth a recovered store must match a prefix of."""

    def __init__(self) -> None:
        super().__init__()
        self.committed_floors: "dict[str, int]" = {}

    def _persist(self, ops) -> None:
        for uri, _old, _new, version in ops:
            self.committed_floors[uri] = max(
                self.committed_floors.get(uri, 0), version)

    def state(self):
        return dict(self._documents), dict(self.committed_floors)


class CrashOutcome:
    """One enumerated crash: where it hit, what recovery produced, and
    what the committed prefix said it *should* produce."""

    def __init__(self, crash_at: int, point_name: str, tear: str,
                 acked_steps: int, crashed: bool, expected_states: list,
                 store) -> None:
        self.crash_at = crash_at
        self.point_name = point_name
        self.tear = tear
        #: Workload steps that returned before the crash.
        self.acked_steps = acked_steps
        self.crashed = crashed
        self.expected_states = expected_states
        #: The reopened (recovered) store.
        self.store = store
        #: Index into ``expected_states`` that recovery matched
        #: (set by :meth:`check`).
        self.matched = None

    def check(self) -> None:
        """Assert the crash-at-any-point recovery property.

        The recovered store must equal the state after *k* workload
        steps for some ``acked <= k <= acked + 1`` (each step carries at
        most one commit: the in-flight commit either became durable or
        it did not — nothing in between), with the committed version
        floors of that same prefix, and replay notifications must be
        exactly-once (a second delivery flushes nothing).
        """
        store = self.store
        upper = min(self.acked_steps + 1, len(self.expected_states) - 1)
        recovered = (dict(store._documents), dict(store._version_floor))
        for k in range(self.acked_steps, upper + 1):
            docs, floors = self.expected_states[k]
            if recovered[0] == docs and recovered[1] == floors:
                self.matched = k
                break
        else:
            raise AssertionError(
                f"crash at point {self.crash_at} ({self.point_name!r}, "
                f"tear={self.tear}): recovered state matches no committed "
                f"prefix in [{self.acked_steps}, {upper}]\n"
                f"  recovered docs:   {sorted(recovered[0])}\n"
                f"  recovered floors: {recovered[1]}\n"
                f"  expected[acked]:  {sorted(self.expected_states[self.acked_steps][0])}"
            )
        heard: list = []
        store.watch(lambda *op: heard.append(op))
        first = store.deliver_replayed()
        delivered_ops = len(heard)
        assert store.deliver_replayed() == 0, "replay delivered twice"
        assert len(heard) == delivered_ops, \
            "second deliver_replayed() reached a watcher"
        assert first == 0 or delivered_ops > 0


def crash_outcomes(make_target, open_store, steps, *, tears=TEARS,
                   oracle_store: "ResourceStore | None" = None):
    """Enumerate every ``(crash point, tear)`` and yield the outcomes.

    - ``make_target()`` — a *fresh* persistence target per run (e.g. a
      new temp directory); its return value is passed to ``open_store``.
    - ``open_store(target, plan)`` — open/recover a durable store on
      *target*; ``plan`` is a :class:`FaultPlan` or ``None``.
    - ``steps`` — the workload: a sequence of callables taking the
      store, **each performing at most one commit** (one put/delete, or
      one transaction).  That contract is what bounds recovery to
      ``acked <= k <= acked + 1`` in :meth:`CrashOutcome.check`.

    Two clean runs first (ground-truth states on an in-memory oracle,
    fault-point count on the durable backend), then the enumeration.
    Yields a :class:`CrashOutcome` per combination — call ``check()`` on
    each, or do bespoke asserts.
    """
    oracle = oracle_store if oracle_store is not None else _Oracle()
    expected_states = [oracle.state()]
    for step in steps:
        step(oracle)
        expected_states.append(oracle.state())

    counting = FaultPlan()
    store = open_store(make_target(), counting)
    for step in steps:
        step(store)
    store.close()
    total_points = len(counting.points)

    for crash_at in range(total_points):
        for tear in tears:
            target = make_target()
            plan = FaultPlan(crash_at, tear)
            store = open_store(target, plan)
            acked = 0
            crashed = False
            try:
                for step in steps:
                    step(store)
                    acked += 1
                store.close()
            except SimulatedCrash:
                crashed = True
            recovered = open_store(target, None)
            try:
                yield CrashOutcome(crash_at, counting.points[crash_at],
                                   tear, acked, crashed, expected_states,
                                   recovered)
            finally:
                recovered.close()

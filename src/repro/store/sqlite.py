"""SQLite persistence: the WAL backend's snapshot+log shape, one DB file.

Same recovery model as :class:`repro.store.wal.WalBackend` — a snapshot
table plus an append-only commit log, replayed on open — but atomicity
and torn-write handling are delegated to SQLite's journal instead of
hand-rolled CRC framing:

- ``snap(uri, body, version)`` + ``floors(uri, floor)`` — the compacted
  state as of ``meta.base_seq``;
- ``log(seq, record)`` — one row per commit since the last checkpoint,
  holding the same textual commit record the WAL backend frames
  (:func:`repro.store.backend.encode_commit`), so the two backends are
  byte-comparable and :mod:`tools.walinspect` semantics carry over;
- ``meta(key, value)`` — ``base_seq``.

One commit = one SQLite transaction around one ``INSERT`` — group commit
for free, and a crash mid-transaction rolls back to the previous commit
on the next open.  ``fsync=False`` maps to ``PRAGMA synchronous=OFF``
(the E20 ablation), ``True`` to ``FULL``.

Fault injection here happens at the API boundary (``plan.point`` before
the insert, before the COMMIT, after the COMMIT) rather than through
:class:`~repro.store.fault.FaultyFile`: SQLite owns its file formats, so
the interesting crash windows are between *statements*, and SQLite's own
journal is what recovery leans on.  A simulated crash rolls the open
transaction back and closes the connection, exactly as process death
would once the zombie's locks lapse.
"""

from __future__ import annotations

import sqlite3

from repro.errors import StoreError
from repro.store.backend import Recovery, StoreBackend, decode_commit, encode_commit
from repro.terms.parser import parse_data, to_text
from repro.web.resources import Document

_SCHEMA = """
CREATE TABLE IF NOT EXISTS snap (
    uri     TEXT PRIMARY KEY,
    body    TEXT NOT NULL,
    version INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS floors (
    uri   TEXT PRIMARY KEY,
    floor INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS log (
    seq    INTEGER PRIMARY KEY,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""


class SqliteBackend(StoreBackend):
    """Snapshot+log persistence inside a single SQLite database file."""

    name = "sqlite"

    def __init__(self, path: str, *, fsync: bool = True, fault=None) -> None:
        self.path = path
        self._fault = fault
        # isolation_level=None: explicit BEGIN/COMMIT, no implicit
        # autocommit surprises between the insert and the commit point.
        self._conn = sqlite3.connect(path, isolation_level=None)
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            f"PRAGMA synchronous={'FULL' if fsync else 'OFF'}")

    def _point(self, name: str) -> None:
        if self._fault is not None:
            from repro.store.fault import SimulatedCrash

            try:
                self._fault.point(name)
            except SimulatedCrash:
                # Simulate process death: the open transaction dies with
                # it (SQLite would roll it back on the next open; doing
                # it eagerly also releases the zombie's file locks so
                # the reopening connection is not blocked by a process
                # that no longer exists).
                try:
                    self._conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                self._conn.close()
                raise

    # -- recovery ------------------------------------------------------------

    def load(self) -> Recovery:
        conn = self._conn
        row = conn.execute(
            "SELECT value FROM meta WHERE key='base_seq'").fetchone()
        base_seq = row[0] if row is not None else 0
        documents: "dict[str, Document]" = {}
        for uri, body, version in conn.execute(
                "SELECT uri, body, version FROM snap"):
            documents[uri] = Document(uri, parse_data(body), version)
        floors = {uri: floor for uri, floor in
                  conn.execute("SELECT uri, floor FROM floors")}
        commits = []
        for seq, record in conn.execute(
                "SELECT seq, record FROM log ORDER BY seq"):
            try:
                decoded_seq, ops = decode_commit(record)
            except StoreError as exc:
                raise StoreError(
                    f"corrupt commit record at seq {seq} in {self.path!r}: "
                    f"{exc} (SQLite journaling should have prevented a "
                    "torn row — this is storage corruption)"
                ) from exc
            if decoded_seq != seq:
                raise StoreError(
                    f"log row {seq} carries record seq {decoded_seq} in "
                    f"{self.path!r}"
                )
            commits.append((seq, ops))
        return Recovery.replay(documents, floors, base_seq, commits)

    # -- appends -------------------------------------------------------------

    def append_commit(self, seq: int, ops) -> None:
        record = encode_commit(seq, ops)
        self._point("append")
        self._conn.execute("BEGIN IMMEDIATE")
        self._conn.execute("INSERT INTO log (seq, record) VALUES (?, ?)",
                           (seq, record))
        self._point("pre-commit")
        self._conn.execute("COMMIT")
        self._point("post-commit")

    # -- compaction ----------------------------------------------------------

    def checkpoint(self, documents: "dict[str, Document]",
                   floors: "dict[str, int]", seq: int) -> None:
        self._point("checkpoint")
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        conn.execute("DELETE FROM snap")
        conn.executemany(
            "INSERT INTO snap (uri, body, version) VALUES (?, ?, ?)",
            [(document.uri, to_text(document.root), document.version)
             for document in documents.values()])
        conn.execute("DELETE FROM floors")
        conn.executemany("INSERT INTO floors (uri, floor) VALUES (?, ?)",
                         list(floors.items()))
        conn.execute("DELETE FROM log WHERE seq <= ?", (seq,))
        conn.execute(
            "INSERT INTO meta (key, value) VALUES ('base_seq', ?) "
            "ON CONFLICT(key) DO UPDATE SET value=excluded.value", (seq,))
        self._point("checkpoint-commit")
        conn.execute("COMMIT")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        try:
            self._conn.close()
        except sqlite3.Error:  # pragma: no cover - already closed
            pass

"""Write-ahead-log persistence: append-only commits + snapshot compaction.

One durable store lives in one *directory*::

    <path>/store.wal      append-only log, one CRC-framed record per commit
    <path>/snapshot       latest compacted state (atomically replaced)
    <path>/snapshot.tmp   transient; an orphan means a compaction died mid-write

Record framing extends the ingestion tier's length-prefix discipline
(:mod:`repro.ingest.wire`) with a checksum: ``>II`` big-endian *(length,
crc32(payload))* followed by the payload bytes.  The CRC is what turns "the
process died mid-append" into a *detectable* condition: a torn tail — a
truncated header, a payload shorter than its declared length, a checksum
mismatch, an undecodable record — ends recovery at the last valid record
and is **truncated away**, never propagated.  Everything before the tear
replays; the torn commit was never acknowledged, so dropping it *is* the
correct recovery.

Durability discipline per commit: one ``write`` of the whole framed
record, one ``flush``, one ``fsync`` (when enabled) — group commit: a
whole outermost transaction is one record, so multi-op atomicity costs
nothing extra.

Compaction (:meth:`WalBackend.checkpoint`) is crash-safe by ordering:

1. write the full state to ``snapshot.tmp`` (framed the same way), fsync;
2. atomically rename over ``snapshot``; fsync the directory;
3. truncate the log to zero.

A crash before (2) leaves the old snapshot + full log (the orphan tmp is
deleted on open); a crash between (2) and (3) leaves the new snapshot
plus a log whose records all carry ``seq <= snapshot seq`` — replay skips
them, so nothing is applied twice.

Snapshot record stream: one ``snapshot{ seq[n] }`` header, one
``doc{ uri[..] version[n] body{..} }`` per document, one
``floor{ uri[..] version[n] }`` per floor entry (floors survive deletes,
so they are stored independently of the documents).
"""

from __future__ import annotations

import os
import struct
import zlib

from repro.errors import StoreError
from repro.store.backend import Recovery, StoreBackend, decode_commit, encode_commit
from repro.terms.ast import Data, d
from repro.terms.parser import parse_data, to_text
from repro.web.resources import Document

#: ``(payload length, crc32(payload))`` — both unsigned 32-bit big-endian.
RECORD_HEADER = struct.Struct(">II")

#: Ceiling on one record's payload, mirroring the wire protocol's frame
#: ceiling reasoning: a corrupt length must not allocate unbounded memory.
MAX_RECORD = 1 << 28


def frame_record(payload: bytes) -> bytes:
    """Wrap *payload* in a CRC-framed record."""
    if len(payload) > MAX_RECORD:
        raise StoreError(
            f"record payload of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD}-byte ceiling"
        )
    return RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_records(data: bytes, max_record: int = MAX_RECORD):
    """Walk a record stream: ``(payloads, valid_end, problem)``.

    *payloads* are the consecutive valid record payloads from offset 0;
    *valid_end* is the byte offset just past the last valid record — the
    truncation point recovery repairs to; *problem* is ``None`` for a
    clean stream or one of ``"truncated-header"`` / ``"oversized-length"``
    / ``"truncated-payload"`` / ``"crc-mismatch"`` describing why the
    scan stopped.  Never raises on torn input: detection is the contract.
    """
    payloads: list[bytes] = []
    offset = 0
    while True:
        remaining = len(data) - offset
        if remaining == 0:
            return payloads, offset, None
        if remaining < RECORD_HEADER.size:
            return payloads, offset, "truncated-header"
        length, crc = RECORD_HEADER.unpack_from(data, offset)
        if length > max_record:
            return payloads, offset, "oversized-length"
        start = offset + RECORD_HEADER.size
        if remaining < RECORD_HEADER.size + length:
            return payloads, offset, "truncated-payload"
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            return payloads, offset, "crc-mismatch"
        payloads.append(payload)
        offset = start + length


def _fsync_file(file) -> None:
    """Flush *file* to stable storage, through the fault seam if wrapped."""
    sync = getattr(file, "sync", None)
    if sync is not None:
        sync()
    else:
        file.flush()
        os.fsync(file.fileno())


class WalBackend(StoreBackend):
    """Append-only WAL + snapshot persistence in one directory."""

    name = "wal"

    WAL_FILE = "store.wal"
    SNAPSHOT_FILE = "snapshot"

    def __init__(self, path: str, *, fsync: bool = True,
                 fault=None) -> None:
        self.dir = path
        self.fsync = fsync
        self._fault = fault
        os.makedirs(path, exist_ok=True)
        self.wal_path = os.path.join(path, self.WAL_FILE)
        self.snapshot_path = os.path.join(path, self.SNAPSHOT_FILE)
        # An orphaned tmp is a compaction that died before its atomic
        # rename: the real snapshot (if any) is still authoritative.
        tmp = self.snapshot_path + ".tmp"
        if os.path.exists(tmp):
            os.remove(tmp)
        self._wal = None  # opened by load()

    # -- fault seam ----------------------------------------------------------

    def _wrap(self, file):
        if self._fault is not None:
            from repro.store.fault import FaultyFile

            return FaultyFile(file, self._fault)
        return file

    def _point(self, name: str) -> None:
        if self._fault is not None:
            self._fault.point(name)

    # -- recovery ------------------------------------------------------------

    def load(self) -> Recovery:
        documents: "dict[str, Document]" = {}
        floors: "dict[str, int]" = {}
        base_seq = 0
        if os.path.exists(self.snapshot_path):
            documents, floors, base_seq = self._read_snapshot()
        commits = []
        if os.path.exists(self.wal_path):
            with open(self.wal_path, "rb") as fh:
                data = fh.read()
            payloads, valid_end, problem = scan_records(data)
            decoded_end = 0
            for payload in payloads:
                try:
                    commits.append(decode_commit(payload.decode("utf-8")))
                except (StoreError, UnicodeDecodeError):
                    # A record whose bytes checksum but whose content is
                    # not a commit is corruption all the same: stop here
                    # and repair to the prefix that made sense.
                    problem = "undecodable-record"
                    valid_end = decoded_end
                    break
                decoded_end += RECORD_HEADER.size + len(payload)
            if problem is not None and valid_end < len(data):
                # Repair: drop the torn tail so future appends extend a
                # valid prefix instead of burying garbage mid-log.
                with open(self.wal_path, "r+b") as fh:
                    fh.truncate(valid_end)
                    fh.flush()
                    os.fsync(fh.fileno())
        self._wal = self._wrap(open(self.wal_path, "ab"))
        return Recovery.replay(documents, floors, base_seq, commits)

    def _read_snapshot(self):
        with open(self.snapshot_path, "rb") as fh:
            data = fh.read()
        payloads, _end, problem = scan_records(data)
        # The snapshot is written to a tmp file, fsynced, and atomically
        # renamed — a torn snapshot means the *storage* broke, not the
        # process: refuse loudly rather than silently losing state.
        if problem is not None or not payloads:
            raise StoreError(
                f"unreadable snapshot {self.snapshot_path!r} "
                f"({problem or 'empty'}): the snapshot is written atomically, "
                "so this is storage corruption, not a torn write"
            )
        header = parse_data(payloads[0].decode("utf-8"))
        if header.label != "snapshot" or header.first("seq") is None:
            raise StoreError(f"snapshot header malformed in "
                             f"{self.snapshot_path!r}")
        base_seq = header.first("seq").value
        documents: "dict[str, Document]" = {}
        floors: "dict[str, int]" = {}
        for payload in payloads[1:]:
            term = parse_data(payload.decode("utf-8"))
            if term.label == "doc":
                uri = term.first("uri").value
                version = term.first("version").value
                root = term.first("body").children[0]
                documents[uri] = Document(uri, root, version)
            elif term.label == "floor":
                floors[term.first("uri").value] = term.first("version").value
            else:
                raise StoreError(
                    f"unexpected {term.label!r} record in snapshot"
                )
        return documents, floors, base_seq

    # -- appends -------------------------------------------------------------

    def append_commit(self, seq: int, ops) -> None:
        record = frame_record(encode_commit(seq, ops).encode("utf-8"))
        self._wal.write(record)
        if self.fsync:
            _fsync_file(self._wal)
        else:
            self._wal.flush()

    # -- compaction ----------------------------------------------------------

    def checkpoint(self, documents: "dict[str, Document]",
                   floors: "dict[str, int]", seq: int) -> None:
        tmp = self.snapshot_path + ".tmp"
        out = self._wrap(open(tmp, "wb"))
        try:
            out.write(frame_record(
                to_text(d("snapshot", d("seq", seq))).encode("utf-8")))
            for document in documents.values():
                out.write(frame_record(to_text(
                    d("doc", d("uri", document.uri),
                      d("version", document.version),
                      d("body", document.root))).encode("utf-8")))
            for uri, floor in floors.items():
                out.write(frame_record(to_text(
                    d("floor", d("uri", uri),
                      d("version", floor))).encode("utf-8")))
            _fsync_file(out)
        finally:
            out.close()
        self._point("snapshot-swap")
        os.replace(tmp, self.snapshot_path)
        self._sync_dir()
        # The log prefix is now folded into the snapshot; a crash before
        # this truncate leaves records whose seq <= snapshot seq — replay
        # skips them, so the reset is safe to lose.
        self._wal.truncate(0)
        if self.fsync:
            _fsync_file(self._wal)

    def _sync_dir(self) -> None:
        try:
            fd = os.open(self.dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

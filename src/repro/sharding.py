"""Sharded reactive nodes: one facade, N engine shards (Thesis 12).

The paper's scalability thesis demands that reactive rules keep up with
Web-sized event traffic.  A single :class:`~repro.core.engine.ReactiveEngine`
eventually saturates no matter how good its dispatch index is, so this
module partitions one node's *rule base* across N independent engine
shards while keeping the node observationally identical to the
single-engine baseline — same answers, same firing order, property-tested
(`tests/properties/test_shard_equivalence.py`, experiment E16).

How rules are partitioned
-------------------------

The router reuses the discrimination net's partition keys
(:func:`repro.events.queries.query_interest`):

1. **Root label** — each label is assigned a *home shard* greedily
   (heaviest label first, least-loaded shard), so disjoint-label rule
   fleets spread evenly and every event of a label finds all its rules on
   one shard.
2. **Trie prefix** — every *hot* label that alone outweighs a fair share
   of the rule base (more rules than ``total / shards``) and whose rules
   discriminate on a shared axis (the same ``(kind, key)`` axes the
   in-engine discrimination trie splits on, e.g. ``stock[sym: "ACME"]``
   or a constant child) is *split*: each constant value on the label's
   most selective axis gets its own shard, so even a single-label fleet
   scales out, and several labels may split independently.  Child axes
   can be *ambiguous* on the event side (several same-label children,
   structured content); such an event is delivered to every shard with a
   per-copy ``fire`` set naming the rules that shard is time-primary
   for, so every interested rule still fires exactly once and the global
   merge restores installation order.

Rules whose interest spans shards are **replicated** with firing dedup:

- wildcard rules (label variables, ``desc``) live on every shard;
- multi-label rules whose labels have different home shards live on each
  of those homes;
- residual rules of a split label (no constant on the axis) live on every
  shard.

Combinator group members (:func:`repro.core.rulesets.compile_group_specs`)
are planned with their group's *union* interest so a group's members
co-locate and dispatch-time winner resolution stays engine-local; at
wake-ups, where several engines may buffer answers for different groups,
the router resolves the buffered groups globally in installation order.

Every replica sees the full stream of events its query is interested in
(the router delivers an event to each shard hosting an interested rule),
so all replicas hold *identical* evaluator state — but only one shard per
event is the **firing shard** (``fire=True``); the others advance their
evaluators with ``fire=False`` and the suppressed answers are counted in
``EngineStats.firings_deduped``.  Actions therefore execute exactly once,
interleaved with the firing shard's local rules in global installation
order.  Absence deadlines are merged the same way: shard engines register
wake-ups through the router, which advances the owning evaluators across
all shards in global installation order and fires each rule only on its
designated (lowest) shard.

Delivery model
--------------

Each shard owns a FIFO inbox.  The node's inbox handler is the router: it
stamps each incoming event with a global arrival sequence number, expands
deductive event views once (so derived events route like fresh arrivals),
and enqueues ``(seq, event, fire?)`` into every interested shard's inbox.
A single drain callback per instant then *merges* the shard inboxes in
arrival order — always popping the globally oldest pending event — which
is what makes N shards bit-compatible with one engine.
``EngineConfig(inbox_batch=k)`` is the fairness knob: one drain lets each
shard consume at most *k* events before the router re-yields to the
scheduler, so a backlogged shard cannot starve the others within an
instant (events at later instants are handled by later drains as usual).

``shards=1`` never constructs a router at all: the facade wires the node
straight to one engine, bit-for-bit the pre-sharding code path.

Sharding composes with persistence (``EngineConfig(store=...)``) with no
router involvement: the facade swaps the durable store in as
``node.resources`` *before* the fleet is built, and every shard's
conditions and actions dereference ``node.resources`` at call time — so
the whole fleet shares the one durable store, commits are serialised by
the store's own lock (actions only run on the scheduler thread at the
epoch barrier anyway), and a reopened sharded node recovers exactly like
a single-engine one.

Under queued delivery (the default) the equivalence is exact.  With
``sync_delivery=True`` the router inlines the hand-off and the drain, so
nested raises stay nested — except when replica copies of the in-flight
event are still queued, where the raised event defers like a backlog
(inline dispatch never jumps a queue, same as :class:`WebNode`): firings
and answers still match ``shards=1``, intra-instant interleaving may not.

Execution layer
---------------

``EngineConfig(executor=...)`` selects how the fleet is *driven*:

- ``"inline"`` (default): the merge-drain above runs every shard on the
  scheduler thread — the exact pre-threading path.
- ``"threads"``: each shard gets a pinned worker thread
  (:class:`repro.runtime.ShardWorkerPool`) and every drain becomes an
  *epoch*: the scheduler callback snapshots, per shard, exactly the inbox
  segment the inline merge would have popped (same global-arrival order,
  same ``inbox_batch`` budgets), releases the workers to advance their
  own engines' evaluators in parallel — answers are *collected*, not
  fired — and joins them at a barrier before firing the merged answers
  serially in global ``(arrival seq, installation order)`` order.
  Simulated time cannot advance mid-epoch (the drain callback blocks in
  the join), conditions and actions only ever run on the scheduler
  thread, and cross-shard effects — wake-up registration, dedup
  counting, ``INSTALL``/``UNINSTALL`` re-partitions — are applied at the
  barrier, so answers and firing order are identical to ``"inline"``
  (property-tested, experiment E17).  ``sync_delivery=True`` forces the
  inline driver: a nested sync hand-off runs on the raising stack by
  definition.  The one visibility caveat is documented on
  :class:`~repro.core.engine.EngineConfig`: a rule installed by a fired
  action joins from the next event onward, because the events sharing
  the installing event's epoch were already matched when the action ran.
"""

from __future__ import annotations

import copy
import heapq
import itertools
import weakref
import zlib
from collections import deque
from dataclasses import fields, replace

from repro.core.engine import (
    EngineConfig,
    EngineStats,
    ReactiveEngine,
    derive_events,
)
from repro.core.rules import ECARule
from repro.core.rulesets import RuleSet, compile_group_specs
from repro.errors import RecursionRejected, RuleError
from repro.events.factory import resolve_evaluator
from repro.events.model import Event
from repro.events.queries import EventInterest, extract_axis_value, query_interest
from repro.runtime import ShardWorkerPool
from repro.terms.ast import canonical_str

__all__ = ["ShardRouter", "shard_of"]


def shard_of(label: str, n_shards: int) -> int:
    """Deterministic shard for routing keys no installed rule pins down.

    Used for events whose label (or split-axis value) no rule claims:
    they can only reach wildcard / residual replicas, which live on every
    shard, so any *stable* choice keeps exactly-once firing; a CRC spreads
    such traffic instead of hammering shard 0.  (``zlib.crc32``, not
    ``hash``: reproducible across processes regardless of hash seed.)
    """
    return zlib.crc32(label.encode("utf-8")) % n_shards


#: Routing sentinel for an event that exhibits a split label's axis
#: ambiguously (several same-label children, structured content): no single
#: fire shard exists, so the event is delivered to *every* shard and each
#: shard fires exactly the rules it is time-primary for (per-rule dedup).
_AMBIGUOUS = object()


class _Plan:
    """One deterministic partitioning of the rule base (pure data)."""

    def __init__(self) -> None:
        self.order: dict[str, int] = {}          # name -> global install seq
        self.placement: dict[str, tuple[int, ...]] = {}
        self.time_primary: dict[str, int] = {}   # name -> firing shard at wake-ups
        self.home: dict[str, int] = {}           # unsplit label -> shard
        # Trie-prefix partitioning: every hot label may split on its own
        # (kind, key) axis — label -> ((kind, key), value -> shard).
        self.splits: dict[str, tuple[tuple[str, str], dict]] = {}
        self.needs: dict[str, frozenset[int]] = {}  # label -> shards needing a copy
        self.has_wildcard = False
        # Per shard: the rule names whose time_primary it is — the fire set
        # stamped on each copy of an ambiguous event.
        self.primary_names: tuple[frozenset, ...] = ()


class ShardRouter:
    """Partitions one node's rules over N engines; routes and drains events.

    Created by the :class:`~repro.api.ReactiveNode` facade when
    ``EngineConfig(shards=N)`` has N > 1.  Implements the same rule- and
    procedure-management surface as :class:`ReactiveEngine`
    (``install_all`` / ``uninstall`` / ``rules`` / ``define_procedure`` /
    ``define_web_views``), so the facade delegates blindly; the engines
    stay reachable as :attr:`engines` for inspection.
    """

    def __init__(self, node, config: EngineConfig) -> None:
        if config.shards < 2:
            raise RuleError(
                f"ShardRouter needs shards >= 2, got {config.shards} "
                "(shards=1 is the plain single-engine path)"
            )
        if config.event_views is not None and config.event_views.is_recursive():
            raise RecursionRejected(
                "event-level deductive views must be non-recursive (Thesis 9)"
            )
        self.node = node
        self.config = config
        self.n_shards = config.shards
        self._factory = resolve_evaluator(config.evaluator)
        # Shards get the per-engine knobs only: node-level delivery is
        # applied once below, event views are expanded here (a derived
        # event's label may live on a different shard), and shards=1 so
        # each engine is a plain single shard.
        shard_config = replace(config, shards=1, event_views=None,
                               sync_delivery=None, inbox_batch=None)
        self.engines = tuple(
            ReactiveEngine(node, config=shard_config, attach=False)
            for _ in range(self.n_shards)
        )
        for engine in self.engines:
            engine.wakeup_via = self._request_wakeup
            engine.installer = self
        if config.sync_delivery is not None:
            node.configure_delivery(sync_delivery=config.sync_delivery)
        if config.inbox_batch is not None:
            node.configure_delivery(inbox_batch=config.inbox_batch)
        self._event_views = config.event_views
        self._coalesced = config.coalesced_wakeups
        self._inbox_batch = config.inbox_batch
        # Execution layer: "threads" pins one worker thread to each shard
        # and turns every drain into a snapshot/epoch/barrier round-trip
        # (see the module docstring).  Sync delivery is inherently inline
        # (the nested hand-off runs on the raising stack), so it keeps the
        # inline driver.  Worker threads start lazily at the first epoch;
        # the finalizer reclaims them when the router is garbage-collected
        # so short-lived nodes (tests, benchmarks) never leak threads.
        if config.executor == "threads" and config.sync_delivery is not True:
            self.pool: "ShardWorkerPool | None" = ShardWorkerPool(
                self.n_shards, name=f"{node.uri}#shard"
            )
            self._pool_finalizer = weakref.finalize(self, self.pool.shutdown)
        else:
            self.pool = None
        self.executor_name = "threads" if self.pool is not None else "inline"
        self.derived_events = 0
        self.inbox_drains = 0
        self.inbox_peaks = [0] * self.n_shards
        self._inboxes = tuple(deque() for _ in range(self.n_shards))
        self._seq = itertools.count()
        self._started_seq = -1  # highest seq whose first copy was processed
        self._dispatch_depth = 0  # shards mid-dispatch/advance (nested: sync)
        self._drain_scheduled = False
        self._pending_wakeups: set[float] = set()
        # Same rule-base bookkeeping shape as ReactiveEngine, so install /
        # uninstall semantics and error messages stay in lock-step.
        self._single_rules: dict[str, ECARule] = {}
        self._rulesets: list[RuleSet] = []
        self._named: list[tuple[str, ECARule]] = []
        self._validated: dict[str, ECARule] = {}
        self._group_specs: dict[str, tuple[str, str, float]] = {}
        self._plan = _Plan()
        node.on_event(self.handle_event)

    # -- rule management ------------------------------------------------------

    def install(self, item: "ECARule | RuleSet") -> None:
        """Install a rule or a whole rule set (re-partitions)."""
        self.install_all((item,))

    def install_all(self, items, procedures=()) -> None:
        """Install many rules / rule sets (and procedures) in one batch.

        Same contract as :meth:`ReactiveEngine.install_all`: atomic — a
        rejected item restores the previous rule base on every shard
        before the error propagates, and no procedure is defined.
        """
        procedures = tuple(procedures)
        pending: set[str] = set()
        for name, _params, _action in procedures:
            if name in self.engines[0]._procedures or name in pending:
                raise RuleError(f"procedure {name!r} already defined")
            pending.add(name)
        saved_rules = dict(self._single_rules)
        saved_sets = list(self._rulesets)
        try:
            for item in items:
                if isinstance(item, RuleSet):
                    self._rulesets.append(item)
                elif isinstance(item, ECARule):
                    if item.name in self._single_rules:
                        raise RuleError(f"rule {item.name!r} already installed")
                    self._single_rules[item.name] = item
                else:
                    raise RuleError(f"cannot install {item!r}")
            self._reroute()
        except Exception:
            self._single_rules = saved_rules
            self._rulesets = saved_sets
            self._reroute()
            raise
        for name, params, action in procedures:
            self.define_procedure(name, tuple(params), action)

    def uninstall(self, item: "str | ECARule | RuleSet") -> None:
        """Remove an installed rule or rule set, by object or by name.

        Mirrors :meth:`ReactiveEngine.uninstall` (same resolution branches
        and error messages); the re-partition drops the rule from *every*
        shard it was routed or replicated to.
        """
        if isinstance(item, RuleSet):
            if not any(existing is item for existing in self._rulesets):
                raise RuleError(
                    f"rule set {item.name!r} is not installed ({self._summary()})"
                )
            self._rulesets = [rs for rs in self._rulesets if rs is not item]
        elif isinstance(item, ECARule):
            # Structural equality, not identity (meta round-trips compare equal).
            if self._single_rules.get(item.name) != item:
                raise RuleError(
                    f"rule {item.name!r} is not installed ({self._summary()})"
                )
            del self._single_rules[item.name]
        elif isinstance(item, str):
            if item in self._single_rules:
                del self._single_rules[item]
            else:
                named_sets = [rs for rs in self._rulesets if rs.name == item]
                if not named_sets:
                    raise RuleError(
                        f"no installed rule or rule set {item!r} ({self._summary()})"
                    )
                self._rulesets.remove(named_sets[0])
        else:
            raise RuleError(f"cannot uninstall {item!r}")
        self._reroute()

    def rules(self) -> list[str]:
        """Names of the active rules, in global installation order."""
        return [name for name, _rule in self._named]

    def refresh(self) -> None:
        """Recompute the partitioning (e.g. after toggling a rule set)."""
        self._reroute()

    def define_procedure(self, name: str, params: tuple[str, ...], action) -> None:
        """Register a procedure on every shard (any shard's rule may CALL it)."""
        for engine in self.engines:
            engine.define_procedure(name, params, action)

    def define_web_views(self, uri: str, program) -> None:
        """Attach deductive views on every shard (conditions query them)."""
        for engine in self.engines:
            engine.define_web_views(uri, program)

    def _summary(self) -> str:
        rules = ", ".join(sorted(self._single_rules)) or "none"
        sets = ", ".join(ruleset.name for ruleset in self._rulesets) or "none"
        return f"installed rules: {rules}; installed rule sets: {sets}"

    # -- partitioning ---------------------------------------------------------

    def _decompose(self) -> list[tuple[str, ECARule]]:
        """Flatten installed items to (name, rule) in the engine's order.

        :meth:`ReactiveEngine.refresh` activates all single rules first
        (in installation order) and then every rule set's qualified rules
        (in rule-set installation order) — shards=1 firing order follows
        it, so the router's global order must match exactly, not the raw
        install interleaving.
        """
        named: list[tuple[str, ECARule]] = list(self._single_rules.items())
        seen: set[str] = set(self._single_rules)
        for ruleset in self._rulesets:
            for qualified, rule, _owner in ruleset.qualified():
                if qualified in seen:
                    raise RuleError(f"duplicate rule name {qualified!r}")
                seen.add(qualified)
                named.append((qualified, rule))
        return named

    def _reroute(self) -> None:
        """Re-partition the rule base and re-route queued events."""
        named = self._decompose()
        # Validate new rules' event queries *before* mutating any shard, so
        # install_all's restore path never faces a half-synced fleet.  The
        # probe builds through the configured factory: a custom mechanism
        # rejecting a query must reject it here, not mid-sync.
        for name, rule in named:
            if self._validated.get(name) is not rule:
                self._factory.build(rule.event)
        new_names = frozenset(
            name for name, _rule in named if name not in self._plan.order
        )
        self._group_specs = compile_group_specs(self._rulesets)
        # Rebalancing moves evaluators between shards, which is only sound
        # when every replica has consumed its whole stream — i.e. when no
        # event is in flight.  A re-partition triggered by a firing rule
        # (install mid-dispatch or mid-wake-up: `_dispatching`, with the
        # engine's entries snapshot still running over not-yet-advanced
        # evaluators) or while copies of an event are still queued
        # therefore freezes existing placements and only *adds* new rules,
        # whose fresh evaluators are safe anywhere.
        plan = self._compute_plan(
            named, frozen=self._dispatch_depth > 0 or any(self._inboxes)
        )
        self._apply_plan(named, plan)
        self._named = named
        self._plan = plan
        self._validated = dict(named)
        self._requeue_pending(new_names)

    def _compute_plan(self, named, frozen: bool = False) -> _Plan:
        """Pure, deterministic placement of *named* over the shards.

        ``frozen=True`` is the in-flight variant: surviving rules keep
        their current shards (no evaluator ever moves under a partially
        delivered event) and only new rules are placed, onto the existing
        label-home / split tables.
        """
        plan = _Plan()
        interests: dict[str, EventInterest] = {}
        for seq, (name, rule) in enumerate(named):
            plan.order[name] = seq
            interests[name] = query_interest(rule.event)
        # Combinator group members are planned with their group's *union*
        # interest: identical interests mean identical placements, so the
        # group's answering members always meet on the event's firing
        # shard and dispatch-time winner resolution stays engine-local.
        if self._group_specs:
            union: dict[str, EventInterest] = {}
            for name, interest in interests.items():
                spec = self._group_specs.get(name)
                if spec is not None:
                    gid = spec[0]
                    held = union.get(gid)
                    union[gid] = interest if held is None else held.union(interest)
            for name in interests:
                spec = self._group_specs.get(name)
                if spec is not None:
                    interests[name] = union[spec[0]]
        label_rules: dict[str, list[str]] = {}
        for name, _rule in named:
            interest = interests[name]
            if interest.by_label is None:
                plan.has_wildcard = True
                continue
            for label in sorted(interest.labels):
                label_rules.setdefault(label, []).append(name)
        if frozen:
            self._place_frozen(named, plan, interests)
        else:
            self._place_fresh(named, plan, interests, label_rules)

        # Which shards must *see* each label's events (beyond the firing
        # shard): every shard hosting an interested rule — except
        # single-label rules pinning a split label's axis, whose events
        # the value table already routes to exactly their shard.
        needs: dict[str, set[int]] = {label: set() for label in label_rules}
        for name, _rule in named:
            interest = interests[name]
            if interest.by_label is None:
                continue  # wildcards live everywhere; delivery covers all shards
            for label in interest.labels:
                split = plan.splits.get(label)
                if (split is not None
                        and interest.labels == frozenset((label,))
                        and _axis_value(interest, label, split[0]) is not None):
                    continue
                needs[label].update(plan.placement[name])
        plan.needs = {label: frozenset(shards) for label, shards in needs.items()}
        primary: list[set] = [set() for _ in range(self.n_shards)]
        for name, si in plan.time_primary.items():
            primary[si].add(name)
        plan.primary_names = tuple(frozenset(names) for names in primary)
        return plan

    def _place_fresh(self, named, plan: _Plan, interests, label_rules) -> None:
        """Full rebalance (quiescent inboxes): greedy homes + hot splits."""
        n = self.n_shards
        # Hot-label splits: every label holding more than a fair share of
        # the rule base, all its rules single-label, discriminating on a
        # shared axis with at least two constants, splits independently on
        # its own most selective axis (heaviest label first so the
        # heaviest value groups land on the least-loaded shards).
        total = sum(len(names) for names in label_rules.values())
        loads = [0] * n
        for label in sorted(label_rules,
                            key=lambda lab: (-len(label_rules[lab]), lab)):
            names = label_rules[label]
            if len(names) < 2 or len(names) * n <= total:
                continue
            if not all(interests[nm].labels == frozenset((label,)) for nm in names):
                continue
            axis = self._pick_axis(label, names, interests)
            if axis is None:
                continue
            by_value: dict = {}
            residual = 0
            for nm in names:
                value = _axis_value(interests[nm], label, axis)
                if value is None:
                    residual += 1
                else:
                    by_value.setdefault(value, []).append(nm)
            value_shard: dict = {}
            for value in sorted(by_value,
                                key=lambda v: (-len(by_value[v]), canonical_str(v))):
                shard = min(range(n), key=lambda i: (loads[i], i))
                value_shard[value] = shard
                loads[shard] += len(by_value[value])
            plan.splits[label] = (axis, value_shard)
            loads = [load + residual for load in loads]

        for label in sorted(
            (lab for lab in label_rules if lab not in plan.splits),
            key=lambda lab: (-len(label_rules[lab]), lab),
        ):
            shard = min(range(n), key=lambda i: (loads[i], i))
            plan.home[label] = shard
            loads[shard] += len(label_rules[label])

        for name, _rule in named:
            interest = interests[name]
            labels = interest.labels
            split = (plan.splits.get(next(iter(labels)))
                     if labels is not None and len(labels) == 1 else None)
            if labels is None:
                plan.placement[name] = tuple(range(n))
            elif split is not None:
                value = _axis_value(interest, next(iter(labels)), split[0])
                if value is not None:
                    plan.placement[name] = (split[1][value],)
                else:  # residual: must see every event of the split label
                    plan.placement[name] = tuple(range(n))
            else:
                # A split label never hosts multi-label rules (the
                # all-single guard above), so every label here has a home.
                plan.placement[name] = tuple(sorted(
                    {plan.home[label] for label in labels}
                ))
            plan.time_primary[name] = plan.placement[name][0]

    def _place_frozen(self, named, plan: _Plan, interests) -> None:
        """In-flight re-partition: nothing moves, new rules slot in.

        Surviving rules keep their exact shard sets (their evaluators may
        be mid-stream: some replicas have consumed the in-flight event,
        others still hold its queued copy, so migrating or copying any of
        them would fork state).  New rules have no state, so any placement
        is sound; they go onto the existing home/split tables, extending
        them greedily where a label or axis value is new.
        """
        n = self.n_shards
        old = self._plan
        plan.home = dict(old.home)
        plan.splits = {
            label: (axis, dict(value_shard))
            for label, (axis, value_shard) in old.splits.items()
        }
        loads = [0] * n
        surviving: dict[str, tuple[int, ...]] = {}
        for name, rule in named:
            if self._validated.get(name) is rule and name in old.placement:
                surviving[name] = old.placement[name]
                for si in surviving[name]:
                    loads[si] += 1
        for name, _rule in named:
            placement = surviving.get(name)
            if placement is None:
                interest = interests[name]
                labels = interest.labels
                if labels is None:
                    placement = tuple(range(n))
                elif labels & plan.splits.keys():
                    if len(labels) == 1:
                        label = next(iter(labels))
                        axis, value_shard = plan.splits[label]
                        value = _axis_value(interest, label, axis)
                        if value is None:  # residual: sees the whole label
                            placement = tuple(range(n))
                        else:
                            shard = value_shard.get(value)
                            if shard is None:
                                shard = min(range(n), key=lambda i: (loads[i], i))
                                value_shard[value] = shard
                            placement = (shard,)
                    else:
                        # A spanning rule on a split label must be able to
                        # fire on any of the label's per-value fire shards.
                        placement = tuple(range(n))
                else:
                    shards = set()
                    for label in sorted(interest.labels):
                        home = plan.home.get(label)
                        if home is None:
                            home = min(range(n), key=lambda i: (loads[i], i))
                            plan.home[label] = home
                        shards.add(home)
                    placement = tuple(sorted(shards))
                for si in placement:
                    loads[si] += 1
            plan.placement[name] = placement
            plan.time_primary[name] = placement[0]

    @staticmethod
    def _pick_axis(label, names, interests) -> "tuple[str, str] | None":
        """The most selective shared axis of one label's rules.

        Same tie-breaking as the engine trie's bucket split (rule count,
        then distinct values), preferring ``attr`` axes on full ties: an
        event carries an attribute value unambiguously or not at all,
        while a child axis can be ambiguous on the event side and then
        costs an all-shards delivery (see ``_AMBIGUOUS``).
        """
        counts: dict[tuple[str, str], int] = {}
        values: dict[tuple[str, str], set] = {}
        for nm in names:
            for disc in interests[nm].discriminators(label):
                axis = disc.axis
                counts[axis] = counts.get(axis, 0) + 1
                values.setdefault(axis, set()).add(disc.value)
        viable = [axis for axis in counts
                  if counts[axis] >= 2 and len(values[axis]) >= 2]
        if not viable:
            return None
        return max(viable, key=lambda axis: (
            counts[axis], len(values[axis]), axis[0] == "attr", axis[1]
        ))

    def _apply_plan(self, named, plan: _Plan) -> None:
        """Push each shard its slice, migrating evaluator state.

        A rule that stays installed keeps its evaluators: replicas hold
        identical state (they see identical relevant streams), so a shard
        gaining the rule takes a displaced evaluator when one is free and
        a deep copy of a surviving one otherwise.  Incoming evaluators are
        marked touched so pending absence deadlines re-register on their
        new shard.
        """
        current: dict[str, dict[int, tuple]] = {}
        for si, engine in enumerate(self.engines):
            for name, (rule, evaluator) in engine._active.items():
                current.setdefault(name, {})[si] = (rule, evaluator)
        seeds: list[dict] = [dict() for _ in range(self.n_shards)]
        arrivals: list[list] = [[] for _ in range(self.n_shards)]
        for name, rule in named:
            have = {
                si: evaluator
                for si, (old_rule, evaluator) in current.get(name, {}).items()
                if old_rule is rule
            }
            if not have:
                continue  # new rule: every shard builds a fresh evaluator
            targets = plan.placement[name]
            spare = deque(evaluator for si, evaluator in sorted(have.items())
                          if si not in targets)
            donor = have[min(have)]
            for si in targets:
                if si in have:
                    continue  # refresh keeps it by identity
                evaluator = spare.popleft() if spare else copy.deepcopy(donor)
                seeds[si][name] = (rule, evaluator)
                arrivals[si].append(evaluator)
        for si, engine in enumerate(self.engines):
            engine._active.update(seeds[si])
            engine.sync_rules(
                (name, rule) for name, rule in named
                if si in plan.placement[name]
            )
            # sync_rules rebuilt from bare (name, rule) pairs, so the
            # shard engine has no rule-set structure to compile combinator
            # specs from: push the router's qualified-name table instead.
            engine._groups = self._group_specs
            if arrivals[si]:
                engine._touched.update(arrivals[si])
                engine._schedule_wakeups()

    # -- event routing --------------------------------------------------------

    def handle_event(self, event: Event) -> None:
        """Node inbox entry point: route the event and its derivations."""
        self._route(event)
        for derived in derive_events(self._event_views, event, self.node.uri):
            self.derived_events += 1
            self._route(derived)

    def _route(self, event: Event) -> None:
        # The same rule WebNode._deliver applies: inline dispatch never
        # jumps a backlog.  Queued entries here include replica copies of
        # the event being dispatched right now — draining them nested
        # would hand replicas the in-flight and the raised event in
        # opposite orders on different shards, and a cross-shard rule
        # could then complete on two firing copies (double fire).  With a
        # backlog the raised event defers exactly like the single engine's
        # non-empty-inbox case: same firings, intra-instant interleaving
        # may differ (the sync-mode caveat the engine module documents).
        backlog = any(self._inboxes)
        self._enqueue(next(self._seq), event)
        if self.node.sync_delivery and not backlog:
            # Inline hand-off: the single engine dispatches a sync-raised
            # event nested inside the raising action, so the router drains
            # immediately (re-entrant: _dispatch_depth keeps the frozen
            # guard up through the nesting) instead of deferring.
            self._drain()
        elif not self._drain_scheduled:
            self._drain_scheduled = True
            self.node.clock.soon(self._drain)

    def _enqueue(self, seq: int, event: Event) -> None:
        fire = self._fire_shard(event.term)
        if fire is _AMBIGUOUS:
            # The event shows a split label's axis ambiguously: any value
            # shard might hold a matching rule, so every shard gets a copy
            # whose fire field *names* the rules that shard may fire — the
            # rules it is time-primary for.  Each interested rule is
            # time-primary on exactly one of its replicas, so it still
            # fires exactly once; the other copies count dedups.
            primary = self._plan.primary_names
            for si in range(self.n_shards):
                box = self._inboxes[si]
                box.append((seq, event, primary[si], frozenset()))
                if len(box) > self.inbox_peaks[si]:
                    self.inbox_peaks[si] = len(box)
            return
        if self._plan.has_wildcard:
            shards = range(self.n_shards)  # wildcard replicas see everything
        else:
            needs = self._plan.needs.get(event.term.label, frozenset())
            shards = sorted(needs | {fire})
        for si in shards:
            box = self._inboxes[si]
            box.append((seq, event, si == fire, frozenset()))
            if len(box) > self.inbox_peaks[si]:
                self.inbox_peaks[si] = len(box)

    def _fire_shard(self, term):
        """The one shard that executes actions for this event.

        All rules the event can fire live there (the label's home — or,
        for a split label, the shard owning the event's axis value, with
        residual replicas everywhere), so local installation order is
        global firing order.  Returns ``_AMBIGUOUS`` when the event shows
        a split label's axis ambiguously and no single shard suffices.
        """
        label = term.label
        split = self._plan.splits.get(label)
        if split is not None:
            (kind, key), value_shard = split
            value, ambiguous = extract_axis_value(term, kind, key)
            if ambiguous:
                return _AMBIGUOUS
            if value is None:
                return shard_of(label, self.n_shards)
            shard = value_shard.get(value)
            if shard is not None:
                return shard
            return shard_of(f"{label}={value}", self.n_shards)
        home = self._plan.home.get(label)
        if home is not None:
            return home
        return shard_of(label, self.n_shards)

    def _requeue_pending(self, new_names: frozenset) -> None:
        """Re-route queued events after a re-partition.

        A rule installed mid-run must see the events still queued when it
        arrived (the single engine's inbox guarantees exactly that), so
        *fully pending* events — no copy processed yet — are collapsed
        back to one event per sequence number and re-enqueued under the
        new tables.  An event whose processing already *started* (its
        firing copy may be consumed) keeps its remaining copies verbatim,
        tagged so rules installed by this re-partition never observe it —
        the same snapshot semantics the single engine's mid-dispatch
        install has, and the guarantee that nothing fires twice.
        """
        started: list[list] = [[] for _ in range(self.n_shards)]
        fresh: dict[int, Event] = {}
        for si, box in enumerate(self._inboxes):
            while box:
                seq, event, fire, exclude = box.popleft()
                if seq <= self._started_seq:
                    started[si].append((seq, event, fire, exclude | new_names))
                else:
                    fresh[seq] = event
        if not fresh and not any(started):
            return
        # Per-shard seq order is preserved: started entries predate every
        # fresh one, and _enqueue appends fresh seqs in ascending order.
        for si, entries in enumerate(started):
            self._inboxes[si].extend(entries)
        for seq in sorted(fresh):
            self._enqueue(seq, fresh[seq])
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self.node.clock.soon(self._drain)

    def _drain(self) -> None:
        """Drain the shard inboxes for this instant (inline or threaded).

        Both executors process the same events in the same observable
        order; they differ only in *which thread* advances each shard's
        evaluators.  Leftovers (fairness budgets) re-yield to the
        scheduler at the same instant either way.
        """
        self._drain_scheduled = False
        self.inbox_drains += 1
        if self.pool is not None and not self.node.sync_delivery:
            self._drain_threaded()
        else:
            self._drain_inline()
        if any(self._inboxes) and not self._drain_scheduled:
            self._drain_scheduled = True
            self.node.clock.soon(self._drain)

    def _drain_inline(self) -> None:
        """Merge-drain the shard inboxes in global arrival order.

        Always pops the globally oldest pending event (copies of one event
        share a sequence number; ties resolve lowest shard first), which
        is what keeps N-shard firing order identical to one engine.  With
        ``inbox_batch=k`` each shard consumes at most *k* events per
        drain; when the oldest event's shard is out of budget the router
        re-yields, so fairness never reorders.
        """
        budgets = [self._inbox_batch] * self.n_shards  # None = unbounded
        while True:
            best, best_seq = -1, None
            for si in range(self.n_shards):
                box = self._inboxes[si]
                if box and (best_seq is None or box[0][0] < best_seq):
                    best, best_seq = si, box[0][0]
            if best < 0:
                break
            if budgets[best] == 0:
                break  # oldest shard over budget: yield to the scheduler
            if isinstance(self._inboxes[best][0][2], frozenset):
                # Ambiguous event: several shards fire disjoint rule sets
                # for the *same* seq, so all its copies are consumed as
                # one unit and the answers fire merged in installation
                # order (popping shard-by-shard would fire shard-major).
                involved = [si for si in range(self.n_shards)
                            if self._inboxes[si]
                            and self._inboxes[si][0][0] == best_seq]
                if any(budgets[si] == 0 for si in involved):
                    break  # the whole unit defers to the next drain
                for si in involved:
                    if budgets[si] is not None:
                        budgets[si] -= 1
                if best_seq > self._started_seq:
                    self._started_seq = best_seq
                self._fire_ambiguous_inline(involved)
                continue
            if budgets[best] is not None:
                budgets[best] -= 1
            seq, event, fire, exclude = self._inboxes[best].popleft()
            if seq > self._started_seq:
                self._started_seq = seq
            self._dispatch_depth += 1
            try:
                self.engines[best].handle_event(event, fire=fire,
                                                exclude=exclude)
            finally:
                self._dispatch_depth -= 1

    def _fire_ambiguous_inline(self, involved: list) -> None:
        """Pop and dispatch one ambiguous event's copies, firing merged.

        Each involved shard advances its replicas with the copy's fire
        *set* (the rules it is time-primary for) under the engine's
        collector seam, then the collected answers fire in global
        installation order — grouped (combinator) winners after ungrouped
        answers, exactly as a single engine's dispatch resolves them.  On
        an engine failure the already-collected prefix still fires before
        the error propagates, mirroring the threaded barrier's error path.
        """
        rows: list = []
        order = self._plan.order
        group_specs = self._group_specs
        self._dispatch_depth += 1
        try:
            try:
                for si in involved:
                    _seq, event, fire_for, exclude = self._inboxes[si].popleft()
                    engine = self.engines[si]
                    collected: list = []
                    engine.collector = collected
                    try:
                        engine.handle_event(event, exclude=exclude,
                                            fire_for=fire_for)
                    finally:
                        engine.collector = None
                        for k, (name, rule, bindings) in enumerate(collected):
                            rows.append((name in group_specs,
                                         order.get(name, len(order)), k,
                                         si, rule, bindings))
            except BaseException:
                rows.sort(key=lambda row: row[:3])
                for _g, _o, _k, si, rule, bindings in rows:
                    self.engines[si]._fire(rule, bindings)
                raise
            rows.sort(key=lambda row: row[:3])
            for _g, _o, _k, si, rule, bindings in rows:
                self.engines[si]._fire(rule, bindings)
        finally:
            self._dispatch_depth -= 1
            for si in involved:
                engine = self.engines[si]
                if engine._touched:
                    engine._schedule_wakeups()

    # -- threaded execution (epoch/barrier, see repro.runtime) ----------------

    def _snapshot_segments(self):
        """Pop, per shard, exactly the entries the inline merge would pop.

        Replays the merge-drain's selection rule — globally oldest seq
        first, stop when the oldest shard's ``inbox_batch`` budget is
        spent — but keeps the popped entries grouped by shard, each
        segment in its own FIFO order.  Returns ``(segments, top_seq)``
        where *top_seq* is the highest sequence number popped (None when
        the inboxes were empty).
        """
        budgets = [self._inbox_batch] * self.n_shards  # None = unbounded
        segments: list[list] = [[] for _ in range(self.n_shards)]
        top = None
        while True:
            best, best_seq = -1, None
            for si in range(self.n_shards):
                box = self._inboxes[si]
                if box and (best_seq is None or box[0][0] < best_seq):
                    best, best_seq = si, box[0][0]
            if best < 0 or budgets[best] == 0:
                break
            if isinstance(self._inboxes[best][0][2], frozenset):
                # Ambiguous event: all copies enter the epoch together or
                # not at all (the barrier merge interleaves their answers
                # across shards, so a split unit would misorder firings).
                involved = [si for si in range(self.n_shards)
                            if self._inboxes[si]
                            and self._inboxes[si][0][0] == best_seq]
                if any(budgets[si] == 0 for si in involved):
                    break
                for si in involved:
                    if budgets[si] is not None:
                        budgets[si] -= 1
                    segments[si].append(self._inboxes[si].popleft())
                top = best_seq
                continue
            if budgets[best] is not None:
                budgets[best] -= 1
            segments[best].append(self._inboxes[best].popleft())
            top = best_seq
        return segments, top

    def _segment_job(self, si: int, segment: list, out: list,
                     failed_at: list):
        """The per-worker epoch job: advance shard *si* over its segment.

        Runs on the shard's pinned worker thread.  The engine's
        ``collector`` seam turns every would-be firing into a collected
        ``(seq, k, shard, name, rule, bindings)`` row — *k* is the
        answer's position within its event, so the barrier can restore
        the exact inline firing order — and defers wake-up scheduling
        (the clock is not thread-safe) to the barrier.  Replica
        deliveries (``fire=False`` or a fire *set* without the rule)
        count their dedup suppressions engine-locally, exactly as inline.
        An engine exception records the failing position in
        ``failed_at[si]`` before propagating, so the barrier can still
        fire everything that logically precedes the failure — including
        the failing event's *own* already-collected answers (inline fires
        each evaluator's answers as the dispatch loop reaches it, so
        answers produced before the raise have fired).
        """
        engine = self.engines[si]

        def job() -> None:
            for seq, event, fire, exclude in segment:
                collected: list = []
                engine.collector = collected
                try:
                    if isinstance(fire, frozenset):
                        engine.handle_event(event, exclude=exclude,
                                            fire_for=fire)
                    else:
                        engine.handle_event(event, fire=fire, exclude=exclude)
                except BaseException:
                    failed_at[si] = seq
                    raise
                finally:
                    engine.collector = None
                    # Flush even on failure: the pre-raise answers of the
                    # failing event are part of the inline prefix.
                    for k, (name, rule, bindings) in enumerate(collected):
                        out.append((seq, k, si, name, rule, bindings))

        return job

    def _drain_threaded(self) -> None:
        """One epoch: snapshot → parallel advance → barrier → serial fire.

        The scheduler thread blocks in :meth:`ShardWorkerPool.run_epoch`
        until every worker finishes, so simulated time never advances
        while a shard is mid-drain; all firing (conditions, actions,
        re-partitions) then happens back on this thread.
        """
        segments, top = self._snapshot_segments()
        if top is None:
            return
        if top > self._started_seq:
            self._started_seq = top
        buffers: list[list] = [[] for _ in range(self.n_shards)]
        failed_at: list = [None] * self.n_shards
        jobs = [
            self._segment_job(si, segment, buffers[si], failed_at)
            if segment else None
            for si, segment in enumerate(segments)
        ]
        self._dispatch_depth += 1  # barrier installs must freeze placements
        try:
            try:
                self.pool.run_epoch(jobs)
            except BaseException:
                # A shard failed mid-match.  Inline would have fired
                # everything preceding the failure before raising — every
                # earlier event, tie-broken copies of the failing event on
                # lower shards, and the failing event's own pre-raise
                # answers; do the same with the collected prefix, then
                # propagate.
                failures = [(seq, si) for si, seq in enumerate(failed_at)
                            if seq is not None]
                if failures:
                    self._fire_merged(buffers, before=min(failures))
                raise
            self._fire_merged(buffers)
        finally:
            self._dispatch_depth -= 1
            # Wake-up registration deferred from the workers: touched
            # evaluators accumulated per engine; register on this thread.
            for engine in self.engines:
                if engine._touched:
                    engine._schedule_wakeups()

    def _fire_merged(self, buffers: list, before=None) -> None:
        """Fire collected answers in global ``(arrival, install)`` order.

        Each worker's buffer is already sorted by ``(seq, k)``; within one
        event one shard fires — except ambiguous events, whose disjoint
        per-shard answers interleave by installation order, combinator
        winners after ungrouped answers, exactly as one engine's dispatch
        emits them (within one shard that *is* ``k`` order, so the richer
        key never reorders the single-shard case).  If a fired action
        *uninstalls* a rule, answers that rule collected for later events
        are skipped — inline, those events would have dispatched after
        the uninstall and never reached it (answers for the same event
        still fire: dispatch snapshots survive an uninstall inline too).
        ``before`` is the error path's failure point, a ``(seq, shard)``
        pair: rows of earlier events fire, rows of the failing event fire
        only when their shard processed it no later than the failing
        shard did in the inline tie-break (lowest shard first) — i.e. the
        exact inline pre-failure prefix.
        """
        removed: dict[str, int] = {}  # rule name -> seq it disappeared at
        names_before = self._named
        order = self._plan.order
        group_specs = self._group_specs
        fallback = len(order)

        def merge_key(row):
            seq, k, _si, name = row[0], row[1], row[2], row[3]
            return (seq, name in group_specs, order.get(name, fallback), k)

        for seq, _k, si, name, rule, bindings in heapq.merge(
                *buffers, key=merge_key):
            if before is not None:
                fseq, fsi = before
                if seq > fseq:
                    break
                if seq == fseq and si > fsi:
                    continue  # the failing event's not-yet-reached shards
            dropped_at = removed.get(name)
            if dropped_at is not None and seq > dropped_at:
                continue
            self.engines[si]._fire(rule, bindings)
            if self._named is not names_before:
                survivors = {have for have, _rule in self._named}
                for have, _old in names_before:
                    if have not in survivors:
                        removed.setdefault(have, seq)
                names_before = self._named

    # -- wake-ups -------------------------------------------------------------

    def _request_wakeup(self, deadline: float) -> None:
        """Shard engines register absence deadlines here (one callback per
        distinct instant across the whole fleet)."""
        if deadline not in self._pending_wakeups:
            self._pending_wakeups.add(deadline)
            self.node.clock.at(deadline, lambda d=deadline: self._on_time(d))

    def _on_time(self, when: float) -> None:
        """Advance expiring evaluators across shards in global rule order.

        Each engine's deadline owners are pulled and merged by global
        installation sequence (replicas of one rule sort adjacently, by
        shard), so absence answers at a shared deadline fire exactly as a
        single engine would; only each rule's designated shard fires, the
        other replicas dedup.  ``coalesced_wakeups=False`` advances every
        active evaluator on every shard instead — the E14 ablation.

        With the threaded executor the advances run as an epoch (each
        engine's slice on its own worker, answers collected) and the
        merged answers fire at the barrier in the same global order the
        inline path interleaves them.
        """
        self._pending_wakeups.discard(when)
        merged = self._due_rows(when)
        if self.pool is not None and not self.node.sync_delivery:
            advanced = self._advance_threaded(when, merged)
        else:
            advanced = self._advance_inline(when, merged)
        for engine in advanced:
            engine.stats.wakeups += 1
            engine._schedule_wakeups()

    def _due_rows(self, when: float) -> list:
        """The evaluators to advance at *when*, in global firing order.

        Rows are ``(global install seq, host shard, name, rule, evaluator,
        host engine)``, sorted by (seq, shard) — the order the inline path
        advances and fires them in.
        """
        order = self._plan.order
        merged = []
        seen: set[int] = set()
        for si, engine in enumerate(self.engines):
            owners = engine._deadline_owners.pop(when, set())
            if self._coalesced:
                candidates = owners
            else:
                candidates = [evaluator
                              for _rule, evaluator in engine._active.values()]
            for evaluator in candidates:
                # An in-flight re-partition may have moved the evaluator
                # since it registered this deadline: redirect to its
                # current host engine; truly uninstalled owners drop.
                host_idx, host = si, engine
                if evaluator not in host._eval_entry:
                    for sj, other in enumerate(self.engines):
                        if evaluator in other._eval_entry:
                            host_idx, host = sj, other
                            break
                    else:
                        continue
                if id(evaluator) in seen:
                    continue  # already collected via its own registration
                seen.add(id(evaluator))
                _local_seq, name, rule = host._eval_entry[evaluator]
                merged.append((order[name], host_idx, name, rule,
                               evaluator, host))
        merged.sort(key=lambda row: (row[0], row[1]))
        return merged

    def _advance_inline(self, when: float, merged: list) -> dict:
        advanced: dict = {}
        time_primary = self._plan.time_primary
        self._dispatch_depth += 1  # installs from absence firings must freeze
        try:
            if self._group_specs:
                # Combinator members may answer at a shared deadline on
                # different engines: buffer every engine's grouped answers
                # through the wake-up, then resolve the groups once,
                # globally, in installation order — a per-engine
                # resolution would fire different groups' winners in
                # engine order instead.
                buffered: dict = {}
                for _gseq, _si, _name, _rule, _evaluator, engine in merged:
                    if engine not in buffered:
                        buffered[engine] = []
                        engine._group_buffer = buffered[engine]
                try:
                    for _gseq, si, name, rule, evaluator, engine in merged:
                        engine.advance_evaluator(when, rule, evaluator,
                                                 fire=(si == time_primary[name]))
                        advanced[engine] = None
                finally:
                    for engine in buffered:
                        engine._group_buffer = None
                order = self._plan.order
                deferred = [
                    (order[row[0]], engine, row)
                    for engine, rows in buffered.items()
                    for row in rows
                ]
                deferred.sort(key=lambda item: item[0])
                if deferred:
                    best: dict = {}
                    for _gseq, _engine, (_name, _rule, _answers, spec) in deferred:
                        gid, _kind, prec = spec
                        if gid not in best or prec > best[gid]:
                            best[gid] = prec
                    for _gseq, engine, (name, rule, answers, spec) in deferred:
                        gid, _kind, prec = spec
                        if prec != best[gid]:
                            engine.stats.firings_suppressed += len(answers)
                            continue
                        for answer in answers:
                            engine._fire(rule, answer.bindings)
            else:
                for _gseq, si, name, rule, evaluator, engine in merged:
                    engine.advance_evaluator(when, rule, evaluator,
                                             fire=(si == time_primary[name]))
                    advanced[engine] = None
        finally:
            self._dispatch_depth -= 1
        return advanced

    def _advance_job(self, si: int, when: float, rows: list, out: list,
                     failed_at: list):
        """Per-worker wake-up job: advance shard *si*'s due evaluators.

        *rows* carries each evaluator's position in the merged global
        order so the barrier can interleave the collected absence answers
        exactly as the inline path fires them; a failing advance records
        its position in ``failed_at[si]`` (the error path fires the
        preceding prefix, as inline would have).
        """
        engine = self.engines[si]

        def job() -> None:
            for row_idx, rule, evaluator, fire in rows:
                collected: list = []
                engine.collector = collected
                try:
                    engine.advance_evaluator(when, rule, evaluator, fire=fire)
                except BaseException:
                    failed_at[si] = row_idx
                    raise
                finally:
                    engine.collector = None
                for k, (_name, r, b) in enumerate(collected):
                    out.append((row_idx, k, si, r, b))

        return job

    def _advance_threaded(self, when: float, merged: list) -> dict:
        if self._group_specs and any(
                name in self._group_specs
                for _gseq, _si, name, _rule, _evaluator, _host in merged):
            # A grouped rule is due: winner resolution must see every
            # engine's buffered answers for the instant, which the
            # per-worker collect model cannot provide — run the instant
            # inline (wake-ups are rare next to event dispatch, and
            # correctness beats parallelism for one instant).
            return self._advance_inline(when, merged)
        advanced: dict = {}
        time_primary = self._plan.time_primary
        per_shard: list[list] = [[] for _ in range(self.n_shards)]
        buffers: list[list] = [[] for _ in range(self.n_shards)]
        failed_at: list = [None] * self.n_shards
        for row_idx, (_gseq, si, name, rule, evaluator, host) in enumerate(merged):
            per_shard[si].append((row_idx, rule, evaluator,
                                  si == time_primary[name]))
            advanced[host] = None
        jobs = [
            self._advance_job(si, when, rows, buffers[si], failed_at)
            if rows else None
            for si, rows in enumerate(per_shard)
        ]

        def fire_rows(before=None):
            for row_idx, _k, si, rule, bindings in heapq.merge(
                    *buffers, key=lambda row: row[:3]):
                if before is not None and row_idx >= before:
                    break
                self.engines[si]._fire(rule, bindings)

        self._dispatch_depth += 1  # installs from absence firings must freeze
        try:
            try:
                self.pool.run_epoch(jobs)
            except BaseException:
                failures = [idx for idx in failed_at if idx is not None]
                if failures:
                    fire_rows(before=min(failures))
                raise
            fire_rows()
        finally:
            self._dispatch_depth -= 1
        return advanced

    # -- introspection --------------------------------------------------------

    def placement(self) -> dict[str, tuple[int, ...]]:
        """Rule name -> shard indices it is installed on (copy)."""
        return dict(self._plan.placement)

    def mechanism_report(self) -> dict[str, dict]:
        """Per-rule mechanism snapshot, merged across the fleet.

        For a replicated rule the first hosting shard's row is reported.
        Adaptive governors take decisions only from evaluator-local
        signals (decayed label masses in *simulated* time), and replicas
        of one rule see identical interested-event streams, so every
        replica runs the same mechanism with the same switch count —
        property-tested, so picking the first shard loses nothing.
        """
        report: dict[str, dict] = {}
        for engine in self.engines:
            for name, row in engine.mechanism_report().items():
                report.setdefault(name, row)
        return report

    def evaluator_switches(self) -> int:
        """Total mechanism switches across the fleet (replicas included,
        like every other aggregate counter: it measures fleet work)."""
        return sum(engine.evaluator_switches() for engine in self.engines)

    def aggregate_stats(self) -> EngineStats:
        """Sum of all shard counters, plus router-level derived events.

        Replication inflates the per-delivery counters relative to one
        engine (``events_processed`` counts each shard's copy) — that is
        the point: the aggregate measures total fleet work, while
        ``firings_deduped`` shows how much of it was replica upkeep.

        Safe to call from the scheduler thread at any time: with the
        threaded executor, workers only run while the scheduler thread is
        blocked inside an epoch's barrier, so reads from here never race
        a worker's writes.
        """
        total = EngineStats()
        for engine in self.engines:
            for field_ in fields(EngineStats):
                value = getattr(engine.stats, field_.name)
                if isinstance(value, (int, float)):
                    setattr(total, field_.name,
                            getattr(total, field_.name) + value)
        total.derived_events += self.derived_events
        total.executor = self.executor_name
        # Live switch counters sit on the evaluators, not in engine.stats
        # (the summed field is always 0) — stamp the snapshot here.
        total.evaluator_switches = self.evaluator_switches()
        if self.pool is not None:
            total.epochs = self.pool.epochs
            total.barrier_wait_s = self.pool.barrier_wait_s
        return total

    def shard_stats(self) -> tuple[EngineStats, ...]:
        """Per-shard counters with that shard's inbox depth/peak mirrored in."""
        return tuple(
            replace(engine.stats,
                    inbox_depth=len(self._inboxes[si]),
                    inbox_peak=self.inbox_peaks[si],
                    executor=self.executor_name,
                    evaluator_switches=engine.evaluator_switches())
            for si, engine in enumerate(self.engines)
        )


def _axis_value(interest: EventInterest, label: str, axis: "tuple[str, str]"):
    """The constant *interest* pins on (label, axis), or None (residual).

    *axis* is a ``(kind, key)`` pair.  Mirrors the engine trie's routing
    choice when a rule somehow pins several constants on one axis: the
    canonically smallest.
    """
    on_axis = sorted(
        (disc for disc in interest.discriminators(label)
         if disc.axis == axis),
        key=lambda disc: canonical_str(disc.value),
    )
    return on_axis[0].value if on_axis else None

"""ReWeb: reactive ECA rules for the Web.

A full reproduction of the system designed in Bry & Eckert, *Twelve Theses on
Reactive Rules for the Web* (EDBT 2006): an XChange-style reactive rule
language with an Xcerpt-style query substrate, a composite-event algebra with
incremental evaluation, a simulated Web messaging layer, an update language,
rule structuring, identity monitoring, meta-circular rule exchange, and AAA
support.

Quickstart::

    from repro.web import Simulation
    from repro.lang import parse_rule

    sim = Simulation()
    shop = sim.node("http://shop.example")
    shop.install(parse_rule('''
        RULE greet
        ON ping{{ sender{ var F } }}
        DO RAISE TO var F pong{}
    '''))

See ``examples/quickstart.py`` for a complete runnable scenario.
"""

from repro import errors
from repro.terms import (
    Bindings,
    Data,
    d,
    match,
    matches,
    parse_construct,
    parse_data,
    parse_query,
    to_text,
    u,
)

__version__ = "1.0.0"

__all__ = [
    "Bindings",
    "Data",
    "d",
    "errors",
    "match",
    "matches",
    "parse_construct",
    "parse_data",
    "parse_query",
    "to_text",
    "u",
    "__version__",
]

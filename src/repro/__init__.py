"""ReWeb: reactive ECA rules for the Web.

A full reproduction of the system designed in Bry & Eckert, *Twelve Theses on
Reactive Rules for the Web* (EDBT 2006): an XChange-style reactive rule
language with an Xcerpt-style query substrate, a composite-event algebra with
incremental evaluation, a simulated Web messaging layer, an update language,
rule structuring, identity monitoring, meta-circular rule exchange, and AAA
support.

Quickstart::

    from repro import Simulation, parse_data

    sim = Simulation()
    shop = sim.reactive_node("http://shop.example")
    shop.install('''
        RULE greet
        ON ping{{ sender[var F] }}
        DO RAISE TO var F pong{}
    ''')
    franz = sim.node("http://franz.example")
    franz.raise_event("http://shop.example",
                      parse_data('ping{ sender["http://franz.example"] }'))
    sim.run()
    assert franz.events_received == 1          # the pong came back
    assert shop.stats.rule_firings == 1

See ``examples/quickstart.py`` for a complete runnable scenario.
"""

from repro import errors
from repro.api import EngineConfig, NodeStats, ReactiveNode, RuleBuilder, rule
from repro.core.rulesets import (
    FirstMatchGroup,
    PriorityGroup,
    RuleSet,
    SpecificityGroup,
    first_match,
    priority_group,
    specificity_override,
)
from repro.errors import ReproError
from repro.events import (
    AdaptiveEvaluator,
    GovernorConfig,
    TreeEvaluator,
    adaptive,
    register_evaluator,
    resolve_evaluator,
)
from repro.ingest import IngestConfig, IngestGateway, IngestStats
from repro.sharding import ShardRouter
from repro.store import (
    DurableResourceStore,
    StoreConfig,
    open_store,
    register_backend,
)
from repro.terms import (
    Bindings,
    Data,
    d,
    match,
    matches,
    parse_construct,
    parse_data,
    parse_query,
    to_text,
    u,
)
from repro.web.node import Simulation

__version__ = "1.8.0"

__all__ = [
    "AdaptiveEvaluator",
    "Bindings",
    "Data",
    "DurableResourceStore",
    "EngineConfig",
    "FirstMatchGroup",
    "GovernorConfig",
    "IngestConfig",
    "IngestGateway",
    "IngestStats",
    "NodeStats",
    "PriorityGroup",
    "ReactiveNode",
    "ReproError",
    "RuleBuilder",
    "RuleSet",
    "ShardRouter",
    "Simulation",
    "SpecificityGroup",
    "StoreConfig",
    "TreeEvaluator",
    "adaptive",
    "d",
    "errors",
    "first_match",
    "match",
    "matches",
    "open_store",
    "parse_construct",
    "parse_data",
    "parse_query",
    "priority_group",
    "register_backend",
    "register_evaluator",
    "resolve_evaluator",
    "rule",
    "specificity_override",
    "to_text",
    "u",
    "__version__",
]

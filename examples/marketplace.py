"""Online marketplace: the paper's motivating application, end to end.

Combines most of the theses in one scenario:

- ECA rules with branching (ECAA) process orders (Theses 1, 9);
- rules run locally at the shop, the warehouse, and the bank; global
  behaviour is pure event choreography (Theses 2, 3);
- the shipping reaction is a *procedure* shared by the card-payment and
  invoice-payment rules (Thesis 9, procedural abstraction);
- rules are grouped into nested rule sets (Thesis 9, grouping);
- every served order is metered and billed (Thesis 12, accounting);
- a composite event watches for orders that were paid but not shipped
  within a deadline and escalates them (Thesis 5, absence).
"""

from repro import Simulation, parse_data, to_text
from repro.core.aaa import Accountant
from repro.lang import parse_rule

SHOP = "http://shop.example"
WAREHOUSE = "http://warehouse.example"
BANK = "http://bank.example"
CUSTOMER = "http://franz.example"


def main() -> None:
    sim = Simulation(latency=0.05)
    shop = sim.reactive_node(SHOP)
    warehouse = sim.reactive_node(WAREHOUSE)
    bank = sim.reactive_node(BANK)
    customer = sim.node(CUSTOMER)

    shop.put(f"{SHOP}/stock",
             'stock{ item{ id["ball"], qty[2] }, item{ id["shirt"], qty[1] } }')

    accountant = Accountant(shop.engine)
    accountant.attach()

    # The shared shipping procedure (Thesis 9).
    shop.define_procedure(
        "dispatch", ("ITEM", "WHO"),
        parse_rule('''
            RULE unused ON never DO
            SEQUENCE
              REPLACE item{ id[var ITEM], qty[var Q] }
                IN "http://shop.example/stock"
                BY item{ id[var ITEM], qty[sub(var Q, 1)] }
              ALSO RAISE TO "http://warehouse.example"
                     ship{ item[var ITEM], to[var WHO] }
            END
        ''').action,
    )

    # The shop's rule program: payments subset + escalation subset.
    shop.install(f'''
        RULESET shop
          RULESET payments
            RULE card-order
            ON order{{{{ item[var I], customer[var C], pay["card"] }}}}
            IF IN "{SHOP}/stock" : stock{{{{ item{{{{ id[var I], qty[var Q -> > 0] }}}} }}}}
            DO SEQUENCE
                 RAISE TO "{BANK}" charge{{ item[var I], customer[var C] }}
                 ALSO CALL dispatch(ITEM = var I, WHO = var C)
               END
            ELSE RAISE TO var C rejected{{ item[var I], reason["out of stock"] }}

            RULE invoice-order
            ON order{{{{ item[var I], customer[var C], pay["invoice"] }}}}
            IF IN "{SHOP}/stock" : stock{{{{ item{{{{ id[var I], qty[var Q -> > 0] }}}} }}}}
            DO CALL dispatch(ITEM = var I, WHO = var C)
            ELSE RAISE TO var C rejected{{ item[var I], reason["out of stock"] }}
          END

          RULESET monitoring
            # An order that is not shipped within 5s — lost, rejected, or
            # stuck — is escalated to customer service (absence, Thesis 5).
            RULE unfulfilled-order
            ON WITHIN 5.0 ( order{{{{ item[var I], customer[var C] }}}}
                            THEN NOT shipped{{{{ item[var I], to[var C] }}}} )
            DO PERSIST escalation{{ item[var I], customer[var C] }}
                 INTO "{SHOP}/escalations"
          END
        END
    ''')
    # Meter every order (Thesis 12).
    shop.install(f'''
        RULE meter-orders
        ON order{{{{ item[var I], customer[var C] }}}}
        DO RAISE TO "{SHOP}"
             service-request{{ principal[var C], service["order"], units[1] }}
    ''')

    # Warehouse: confirm shipments back to shop and customer.
    warehouse.install(f'''
        RULE handle-ship
        ON ship{{{{ item[var I], to[var C] }}}}
        DO SEQUENCE
             PERSIST shipment{{ item[var I], to[var C] }} INTO "{WAREHOUSE}/log"
             ALSO RAISE TO "{SHOP}" shipped{{ item[var I], to[var C] }}
             ALSO RAISE TO var C shipped{{ item[var I], to[var C] }}
           END
    ''')

    # Bank: acknowledge charges.
    bank.install(f'''
        RULE charge
        ON charge{{{{ item[var I], customer[var C] }}}}
        DO RAISE TO "{SHOP}" charge-ok{{ item[var I], customer[var C] }}
    ''')

    customer.on_event(lambda e: print(f"[{sim.now:5.2f}s] franz <- {to_text(e.term)}"))

    def order(item, pay):
        customer.raise_event(SHOP, parse_data(
            f'order{{ item["{item}"], customer["{CUSTOMER}"], pay["{pay}"] }}'))

    order("ball", "card")
    order("shirt", "invoice")
    order("ball", "card")
    order("mug", "card")           # not stocked: rejected, then escalated
    sim.run()

    print("\nstock after trading:", to_text(shop.get(f"{SHOP}/stock")))
    print("warehouse log:", to_text(warehouse.get(f"{WAREHOUSE}/log")))
    print("shop bill:", accountant.bill())
    escalations = (to_text(shop.get(f"{SHOP}/escalations"))
                   if f"{SHOP}/escalations" in shop.node.resources else "none")
    print("escalations:", escalations)
    print("inbox peaks:", {
        "shop": shop.stats.inbox_peak,
        "warehouse": warehouse.stats.inbox_peak,
        "bank": bank.stats.inbox_peak,
    })
    print("shop dispatch:", {
        "candidates": shop.stats.candidates_considered,
        "index probes": shop.stats.index_probes,
        "matcher calls": shop.stats.matcher_calls,
    })


if __name__ == "__main__":
    main()

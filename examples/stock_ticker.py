"""Stock ticker: event accumulation (Thesis 5, fourth dimension).

The paper's two accumulation examples in one scenario:

- "notification if the average over the last 5 reported stock prices
  raises by 5%" — a sliding aggregate with a rise predicate;
- "a reaction when 3 server outages have been reported within 1 hour" —
  a grouped sliding count (here: 3 trade halts for the same symbol).

A market node pushes ticks; the analyst's rules accumulate them.
"""

from repro import Simulation, parse_data, to_text


def main() -> None:
    sim = Simulation(latency=0.0)
    market = sim.node("http://market.example")
    analyst = sim.reactive_node("http://analyst.example")

    analyst.install('''
        RULE rally-alert
        ON AGG avg var P OF tick{{ symbol[var S], price[var P] }}
           LAST 5 INTO var A BY [S] RISE 5.0
        DO PERSIST rally{ symbol[var S], average[var A] }
             INTO "http://analyst.example/alerts" ROOT alerts

        RULE halt-storm
        ON COUNT 3 OF halt{{ symbol[var S] }} WITHIN 60.0 BY [S]
        DO PERSIST storm{ symbol[var S] }
             INTO "http://analyst.example/alerts" ROOT alerts
    ''')

    prices = {
        # flat, then a jump that lifts the 5-tick average by >5%.
        "ACME": [100, 101, 100, 99, 100, 100, 135, 140, 138, 139],
        # steady decline: never triggers.
        "EMCA": [100, 98, 96, 94, 92, 90, 88, 86, 84, 82],
    }
    clock = 0.0
    for i in range(10):
        for symbol, series in prices.items():
            clock += 1.0
            market.raise_event(
                "http://analyst.example",
                parse_data(f'tick{{ symbol["{symbol}"], price[{series[i]}] }}'),
            )
    # Three ACME trade halts in quick succession.
    for at in (25.0, 35.0, 50.0):
        sim.scheduler.at(at, lambda: market.raise_event(
            "http://analyst.example", parse_data('halt{ symbol["ACME"] }')))
    sim.run()

    alerts = analyst.get("http://analyst.example/alerts")
    print("alerts raised:")
    for alert in alerts.children:
        print("  ", to_text(alert))
    stats = analyst.stats
    print("ticks processed:", stats.events_processed,
          "| inbox peak:", stats.inbox_peak)
    print("dispatch: candidates considered:", stats.candidates_considered,
          "| index probes:", stats.index_probes,
          "| matcher calls:", stats.matcher_calls)


if __name__ == "__main__":
    main()

"""Semantic-Web reactivity: the paper's e-learning scenario.

    "an e-learning system might refer to inference rules expressed in terms
    of RDF triples, RDF Schema, and OWL [...] e-learning systems that
    select and deliver teaching materials depending on a student's test
    performances" (Sections 1-2)

A tutor node keeps its course catalogue as RDF (with RDFS/OWL semantics:
prerequisite chains are transitive, ``teaches``/``taughtBy`` are inverses).
Students push ``test-result`` events; reactive rules

1. persist the result,
2. consult the *inferred* catalogue to find what the student unlocked, and
3. push a recommendation for the next unit back to the student.

The RDF graph is stored as an ordinary resource (its term encoding), so
rule conditions query it with the same query language as everything else —
Thesis 7's language coherency on Semantic Web data.
"""

from repro import Simulation, parse_data, parse_query, rule, to_text
from repro.core.actions import PyAction
from repro.events.queries import EAtom
from repro.terms.owl import OWL_INVERSE_OF, OWL_TRANSITIVE, semantic_closure
from repro.terms.rdf import Graph, RDF_TYPE


def build_catalogue() -> Graph:
    g = Graph()
    g.assert_("ex:requires", RDF_TYPE, OWL_TRANSITIVE)
    g.assert_("ex:teaches", OWL_INVERSE_OF, "ex:taughtBy")
    # algebra2 requires algebra1; calculus requires algebra2 (so, by
    # transitivity, also algebra1).
    g.assert_("ex:algebra2", "ex:requires", "ex:algebra1")
    g.assert_("ex:calculus", "ex:requires", "ex:algebra2")
    g.assert_("ex:kim", "ex:teaches", "ex:calculus")
    return g


def main() -> None:
    sim = Simulation(latency=0.02)
    tutor = sim.reactive_node("http://tutor.example")
    student = sim.node("http://student.example")

    catalogue = semantic_closure(build_catalogue())
    tutor.put("http://tutor.example/catalogue", catalogue.to_term())

    def recommend(node, bindings):
        passed = str(bindings["UNIT"])
        student_uri = str(bindings["WHO"])
        graph = Graph.from_term(node.get("http://tutor.example/catalogue"))
        # Record the pass as a triple and re-close the graph.
        graph.assert_(student_uri, "ex:passed", f"ex:{passed}")
        graph = semantic_closure(graph)
        node.put("http://tutor.example/catalogue", graph.to_term())
        # A unit is unlocked when every (transitively) required unit is passed.
        passed_units = {t.object for t in graph.triples(student_uri, "ex:passed")}
        for candidate in ("ex:algebra1", "ex:algebra2", "ex:calculus"):
            if candidate in passed_units:
                continue
            requirements = {t.object for t in graph.triples(candidate, "ex:requires")}
            if requirements <= passed_units:
                teacher = [t.subject for t in graph.triples(None, "ex:teaches", candidate)]
                note = f', taught by {teacher[0]}' if teacher else ""
                node.raise_event(student_uri, parse_data(
                    f'recommendation{{ unit["{candidate}"], note["unlocked{note}"] }}'))
                return

    tutor.install(
        rule("on-test-result")
        .on(EAtom(parse_query("test-result{{ unit[var UNIT], student[var WHO], "
                              "score[var S -> >= 50] }}")))
        .do(PyAction(recommend)),
        rule("on-failed-test")
        .on(EAtom(parse_query("test-result{{ unit[var UNIT], student[var WHO], "
                              "score[var S -> < 50] }}")))
        .do(PyAction(lambda n, b: n.raise_event(str(b["WHO"]), parse_data(
            f'recommendation{{ unit["ex:{b["UNIT"]}"], note["repeat this unit"] }}')))),
    )

    student.on_event(lambda e: print(f"[{sim.now:4.2f}s] student <- {to_text(e.term)}"))

    def submit(at, unit, score):
        sim.scheduler.at(at, lambda: student.raise_event(
            "http://tutor.example",
            parse_data(f'test-result{{ unit["{unit}"], '
                       f'student["http://student.example"], score[{score}] }}')))

    submit(0.0, "algebra1", 40)   # fail: repeat
    submit(1.0, "algebra1", 80)   # pass: unlocks algebra2
    submit(2.0, "algebra2", 75)   # pass: unlocks calculus (requires both,
    #                               satisfied via the transitive closure)
    sim.run()
    print("tutor processed", tutor.stats.events_processed,
          "events | rule firings:", tutor.stats.rule_firings,
          "| inbox peak:", tutor.stats.inbox_peak)


if __name__ == "__main__":
    main()

"""Trust negotiation: meta-circular rule exchange (Thesis 11).

The paper's scenario, step by step: Franz wants ten soccer balls from
fussbaelle.biz, a shop he has never dealt with.

1. Franz sends a purchase request.
2. The shop replies with its *payment policy* — an ECA rule, shipped as an
   ordinary data term (rules are data: meta-circularity).
3. Franz installs the policy locally and, unwilling to reveal his card to
   an untrusted shop, asks for a certificate.
4. The shop sends its Better Business Bureau membership certificate.
5. Franz verifies it, then offers credit-card payment — to his *own* node,
   where the shop's installed policy rule evaluates the offer and answers
   the shop with the acceptance.  Deal closed.

Only the relevant policy rule ever crosses the wire; the shop's other
(sensitive) rules stay home — the two advantages the paper claims.
"""

from repro import Simulation, parse_construct, parse_data, parse_query, rule
from repro.core import eca
from repro.core.aaa import Authenticator, Certificate
from repro.core.actions import InstallRule, PyAction, Raise
from repro.core.meta import rule_to_term
from repro.events.queries import EAtom
from repro.terms import Var, to_text


def main() -> None:
    sim = Simulation(latency=0.05)
    shop = sim.reactive_node("http://fussbaelle.biz")
    franz = sim.reactive_node("http://franz.example")

    def log(who, what):
        print(f"[{sim.now:5.2f}s] {who}: {what}")

    # The shop's payment policy, to be shipped as data (step 2).
    payment_policy = eca(
        "payment-policy",
        EAtom(parse_query('payment-offer{{ method["credit-card"] }}')),
        Raise("http://fussbaelle.biz",
              parse_construct('payment-accepted{ method["credit-card"] }')),
    )
    shop.install(eca(
        "on-purchase-request",
        EAtom(parse_query("purchase-request{{ customer[var C] }}")),
        Raise(Var("C"), rule_to_term(payment_policy)),
    ))

    # Franz: install received policies, then ask for credentials (step 3).
    franz.install(
        rule("install-policy")
        .on(EAtom(parse_query("eca-rule"), alias="R"))
        .do(InstallRule(Var("R"))),
        rule("request-certificate")
        .on(EAtom(parse_query("eca-rule")))
        .do(PyAction(lambda n, b: (
            log("franz", "policy received and installed; asking for certificate"),
            n.raise_event("http://fussbaelle.biz", parse_data(
                'certificate-request{ customer["http://franz.example"] }')),
        ))),
    )

    # The shop answers with its BBB certificate (step 4).
    certificate = Certificate("fussbaelle.biz", "http://bbb.example")
    shop.install(eca(
        "send-certificate",
        EAtom(parse_query("certificate-request{{ customer[var C] }}")),
        Raise(Var("C"), certificate.to_term()),
    ))

    # Franz verifies and pays (step 5).
    authenticator = Authenticator()
    authenticator.trust_authority("http://bbb.example")

    def verify_and_pay(node, bindings):
        subject = authenticator.authenticate_certificate(
            Certificate.from_term(bindings["CERT"]))
        log("franz", f"certificate of {subject!r} verified; offering credit card")
        node.raise_event(node.uri, parse_data(
            'payment-offer{ method["credit-card"] }'))

    franz.install(eca(
        "verify-certificate", EAtom(parse_query("certificate"), alias="CERT"),
        PyAction(verify_and_pay),
    ))
    shop.install(eca(
        "close-deal", EAtom(parse_query("payment-accepted{{}}")),
        PyAction(lambda n, b: log("shop", "payment accepted — deal closed, "
                                          "shipping ten soccer balls")),
    ))

    log("franz", "requesting ten soccer balls")
    franz.raise_event("http://fussbaelle.biz", parse_data(
        'purchase-request{ customer["http://franz.example"], '
        'item["soccer-ball"], qty[10] }'))
    sim.run()

    print("\nrules now active on franz's node:", franz.rules())
    print("messages exchanged:", sim.stats.messages,
          f"({sim.stats.bytes} bytes)")
    print("events through franz's inbox:", franz.stats.events_processed,
          "| peak queued:", franz.stats.inbox_peak)


if __name__ == "__main__":
    main()

"""Quickstart: two Web sites, one reactive rule, one update.

Run with::

    python examples/quickstart.py

Demonstrates the core loop of the paper's design: an event message is
pushed from one node to another (Thesis 3), where a locally processed ECA
rule (Thesis 2) matches it (Thesis 5, data extraction), checks a condition
against a persistent resource (Thesis 7), and reacts by updating the
resource and raising a reply event (Thesis 8).

Nodes are created through the :class:`ReactiveNode` facade
(``sim.reactive_node``), which bundles the Web node and its rule engine and
accepts surface-syntax strings everywhere.
"""

from repro import Simulation, to_text


def main() -> None:
    sim = Simulation(latency=0.05)
    shop = sim.reactive_node("http://shop.example")
    customer = sim.reactive_node("http://franz.example")

    # Persistent Web data: the shop's stock document.
    shop.put("http://shop.example/stock",
             'stock{ item{ id["ball"], qty[3] } }')

    # The shop's reactive rule, written in the surface language.
    shop.install('''
        RULE take-order
        ON order{{ item[var I], reply-to[var C] }}
        IF IN "http://shop.example/stock"
             : stock{{ item{{ id[var I], qty[var Q] }} }}
           AND var Q > 0
        DO SEQUENCE
             REPLACE item{ id[var I], qty[var Q] }
               IN "http://shop.example/stock"
               BY item{ id[var I], qty[sub(var Q, 1)] }
             ALSO RAISE TO var C confirmation{ item[var I], left[sub(var Q, 1)] }
           END
        ELSE RAISE TO var C out-of-stock{ item[var I] }
    ''')

    # The customer just prints whatever comes back.
    customer.on_event(lambda e: print(f"[{sim.now:5.2f}s] franz received: {to_text(e.term)}"))

    for _ in range(4):  # four orders against a stock of three
        customer.raise_event(
            "http://shop.example",
            'order{ item["ball"], reply-to["http://franz.example"] }',
        )
    sim.run()

    print("\nfinal stock:", to_text(shop.get("http://shop.example/stock")))
    print("shop fired", shop.stats.rule_firings, "rules;",
          "network:", sim.stats.messages, "messages,", sim.stats.bytes, "bytes")
    # The four orders arrive in one burst: they queue in the shop's inbox
    # (delivery is asynchronous) and drain in arrival order.
    print("shop inbox peak:", shop.stats.inbox_peak, "queued events")


if __name__ == "__main__":
    main()

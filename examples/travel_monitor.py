"""Travel monitor: composite events with absence (the paper's example).

    "if a flight has been canceled, and there is no notification within the
    next two hours that the passenger is put onto another flight, this
    might well require a reaction."  (Thesis 5)

An airline pushes cancellation/rebooking events to a travel agent whose
rule detects *stranded passengers* — a cancellation NOT followed by a
rebooking within two hours — and reacts by booking a hotel and notifying
the traveller.  Absence is confirmed by the engine's deadline wake-ups;
no polling is involved.
"""

from repro import Simulation, parse_data, to_text

HOUR = 1.0  # simulated hours


def main() -> None:
    sim = Simulation(latency=0.01)
    airline = sim.node("http://airline.example")
    agent = sim.reactive_node("http://agent.example")
    traveller = sim.node("http://traveller.example")

    agent.install('''
        RULE stranded-passenger
        ON WITHIN 2.0 ( cancellation{{ flight[var F], passenger[var P] }}
                        THEN NOT rebooking{{ flight[var F], passenger[var P] }} )
        DO SEQUENCE
             PERSIST stranded{ flight[var F], passenger[var P] }
               INTO "http://agent.example/cases" ROOT cases
             ALSO RAISE TO "http://traveller.example"
                    hotel-booked{ flight[var F], passenger[var P] }
           END
    ''')

    traveller.on_event(lambda e: print(
        f"[{sim.now:5.2f}h] traveller notified: {to_text(e.term)}"))

    def push(at, text):
        sim.scheduler.at(at, lambda: airline.raise_event(
            "http://agent.example", parse_data(text)))

    # LH07 is cancelled but rebooked after 1.5h: no reaction.
    push(0.0, 'cancellation{ flight["LH07"], passenger["franz"] }')
    push(1.5, 'rebooking{ flight["LH07"], passenger["franz"] }')
    # LH99 is cancelled and never rebooked: hotel at the 2h deadline.
    push(0.5, 'cancellation{ flight["LH99"], passenger["ida"] }')
    # A rebooking for a DIFFERENT passenger does not help ida.
    push(1.0, 'rebooking{ flight["LH99"], passenger["someone-else"] }')

    sim.run()
    print("\ncase file:", to_text(agent.get("http://agent.example/cases")))
    # ida's hotel was booked by an absence *wake-up* (no event carried the
    # deadline): the engine woke only the owning evaluator, not every rule.
    print("deadline wake-ups:", agent.stats.wakeups,
          "| evaluators advanced:", agent.stats.evaluator_advances)


if __name__ == "__main__":
    main()

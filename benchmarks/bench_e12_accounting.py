"""E12 (Thesis 12): accounting as orthogonal "double reactivity".

Paper claim: accounting reacts to uses of the reactive service without
containing it or reasoning about its interior — a second, orthogonal axis
of reactivity — and language support should keep it cheap.  Measured:
service throughput with accounting off vs on (the overhead of the second
reactive layer), and that the bill matches the requests exactly.
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, seeded

from repro.core import PyAction, ReactiveEngine, eca
from repro.core.aaa import Accountant
from repro.events.queries import EAtom
from repro.terms import parse_data, parse_query
from repro.web import Simulation


def run_service(accounting: bool, requests: int = 300, seed: int = 17) -> dict:
    sim = Simulation(latency=0.0)
    node = sim.node("http://api.example")
    engine = ReactiveEngine(node)
    served = []
    accountant = Accountant(engine)
    if accounting:
        accountant.attach()

    def serve(n, b):
        served.append(b["P"])
        if accounting:
            accountant.meter(b["P"], "compute", float(b["U"]))

    engine.install(eca(
        "service",
        EAtom(parse_query("request{{ principal[var P], units[var U] }}")),
        PyAction(serve),
    ))
    rng = seeded(seed)
    principals = [f"user{k}" for k in range(5)]
    expected: dict[str, float] = {}
    started = time.perf_counter()
    for _ in range(requests):
        who = rng.choice(principals)
        units = rng.randrange(1, 4)
        expected[who] = expected.get(who, 0.0) + units
        node.raise_event(node.uri, parse_data(
            f'request{{ principal["{who}"], units[{units}] }}'))
        sim.run()
    elapsed = time.perf_counter() - started
    bill = accountant.bill()
    return {
        "accounting": "on" if accounting else "off",
        "requests": requests,
        "served": len(served),
        "log entries": accountant.entries(),
        "bill correct": bill == expected if accounting else "-",
        "us/request": elapsed / requests * 1e6,
    }


def table() -> list[dict]:
    requests = pick(300, 20)
    off = run_service(False, requests)
    on = run_service(True, requests)
    overhead = (on["us/request"] / off["us/request"] - 1.0) * 100.0
    return [off, on, {
        "accounting": f"overhead: {overhead:.0f}%",
        "requests": "-", "served": "-", "log entries": "-",
        "bill correct": "-", "us/request": "-",
    }]


def test_e12_service_without_accounting(benchmark):
    row = benchmark(run_service, False, 100)
    assert row["served"] == 100


def test_e12_service_with_accounting(benchmark):
    row = benchmark(run_service, True, 100)
    assert row["served"] == 100
    assert row["log entries"] == 100
    assert row["bill correct"] is True


def test_e12_accounting_orthogonal():
    # Same service results with and without the accounting layer.
    assert run_service(False, 80)["served"] == run_service(True, 80)["served"]


def main() -> None:
    parse_cli()
    print_table(
        "E12 — accounting as a second reactive layer (300 requests)",
        table(),
        "accounting reacts to service-request events orthogonally; the bill "
        "is exact and the overhead modest",
    )


if __name__ == "__main__":
    main()

"""E10 (Thesis 10): surrogate vs extensional identity under updates.

Paper claim: "For monitoring changes of objects, surrogate identity is
advantageous" — extensional identity is lost whenever the value changes, so
a modification can only be reported as delete+insert.  Measured: over a
random stream of item edits, how many modifications each mode reports as a
genuine change (identity preserved) vs as a delete/insert pair (lost).
"""

import sys

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, seeded

from repro.core.identity import ChangeMonitor
from repro.terms import parse_data, parse_query
from repro.web import Simulation

URI = "http://news.example/articles"


def _render(items: dict[int, int]) -> str:
    rows = ", ".join(
        f'article{{ id["a{key}"], revision[{rev}] }}' for key, rev in sorted(items.items())
    )
    return f"articles{{ {rows} }}"


def run_mode(mode: str, edits: int = 300, seed: int = 31) -> dict:
    sim = Simulation(latency=0.0)
    node = sim.node("http://news.example")
    rng = seeded(seed)
    items = {k: 0 for k in range(10)}
    next_key = 10
    node.put(URI, parse_data(_render(items)))
    monitor = ChangeMonitor(node, URI, parse_query("article"), mode=mode)
    true_modifications = 0
    for _ in range(edits):
        operation = rng.random()
        if operation < 0.70 and items:            # edit an article's text
            key = rng.choice(list(items))
            items[key] += 1
            true_modifications += 1
        elif operation < 0.85:                     # publish a new article
            items[next_key] = 0
            next_key += 1
        elif items:                                # retract an article
            del items[rng.choice(list(items))]
        node.put(URI, parse_data(_render(items)))
    stats = monitor.stats
    return {
        "identity": mode,
        "true modifications": true_modifications,
        "reported as change": stats.changed,
        "reported as delete+insert": stats.identities_lost,
        "preservation rate": stats.changed / max(1, true_modifications),
    }


def table() -> list[dict]:
    edits = pick(300, 20)
    return [run_mode("surrogate", edits), run_mode("extensional", edits)]


def test_e10_surrogate_preserves_identity(benchmark):
    row = benchmark(run_mode, "surrogate", 100)
    assert row["preservation rate"] > 0.95


def test_e10_extensional_loses_identity():
    row = run_mode("extensional", 100)
    assert row["reported as change"] == 0
    assert row["reported as delete+insert"] > 0


def main() -> None:
    parse_cli()
    print_table(
        "E10 — identity of monitored items over 300 random edits",
        table(),
        "surrogate identity reports modifications as changes of the same "
        "object; extensional identity degrades every modification to "
        "delete+insert",
    )


if __name__ == "__main__":
    main()

"""Shared helpers for the experiment harnesses (E1-E16, A1).

Every ``bench_eNN_*.py`` module exposes:

- ``table() -> list[dict]`` — runs the experiment sweep and returns the
  rows the paper-style table would contain;
- ``main()`` — prints that table (``python benchmarks/bench_eNN_*.py``);
- one or more ``test_*`` functions using pytest-benchmark to time the
  hot path of the experiment.

Rows are plain dicts so EXPERIMENTS.md can quote them verbatim.

Running any harness with ``--smoke`` (the CI benchmark job does) switches
to tiny workload sizes via :func:`pick` and disables :func:`write_json`,
so the sweep exercises every code path in seconds without overwriting the
committed ``BENCH_*.json`` results.
"""

from __future__ import annotations

import json
import os
import random
import sys
from typing import Callable

SMOKE = False


def parse_cli(argv: "list[str] | None" = None) -> None:
    """Process benchmark CLI flags (call first in every ``main()``)."""
    args = sys.argv[1:] if argv is None else argv
    if "--smoke" in args:
        global SMOKE
        SMOKE = True


def smoke_mode() -> bool:
    return SMOKE


def pick(full, tiny):
    """*full* in a real run, *tiny* under ``--smoke``."""
    return tiny if SMOKE else full


def print_table(title: str, rows: list[dict], claim: str = "") -> None:
    """Render rows as an aligned text table."""
    print(f"\n== {title} ==")
    if claim:
        print(f"   paper claim: {claim}")
    if not rows:
        print("   (no rows)")
        return
    columns = list(rows[0])
    widths = {
        column: max(len(column), *(len(_fmt(row[column])) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    print("   " + header)
    print("   " + "-" * len(header))
    for row in rows:
        print("   " + "  ".join(_fmt(row[column]).ljust(widths[column]) for column in columns))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def seeded(seed: int = 42) -> random.Random:
    """A deterministic RNG for workload generation."""
    return random.Random(seed)


def require_columns(bench: str, rows: list[dict], columns) -> list[dict]:
    """Fail loudly when a sweep drops a required (ablation) column.

    Every comparative bench names its ablation columns here, so a refactor
    that silently stops producing one of the comparisons (e.g. only runs
    the fast mode) turns into an immediate, explicit failure instead of a
    table that quietly lost its baseline.  Returns *rows* unchanged for
    inline use.
    """
    if not rows:
        raise SystemExit(f"{bench}: sweep produced no rows")
    missing = sorted({
        column for row in rows for column in columns if column not in row
    })
    if missing:
        raise SystemExit(
            f"{bench}: ablation column(s) {missing} missing from the sweep "
            f"(have: {sorted(rows[0])}); every ablation must stay in every "
            f"row so regressions cannot hide"
        )
    return rows


def run_main(table_fn: Callable[[], list[dict]], title: str, claim: str) -> None:
    print_table(title, table_fn(), claim)


def write_json(filename: str, payload) -> "str | None":
    """Write a benchmark result file next to this harness (``BENCH_*.json``).

    Returns the absolute path written, so callers can print it; in smoke
    mode nothing is written (tiny-size rows must not overwrite real
    results) and ``None`` is returned.
    """
    if SMOKE:
        return None
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), filename)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path

"""E1 (Thesis 1): ECA rules vs production (CA) rules.

Paper claim: ECA rules fire once per event; production rules either re-fire
while the condition holds (naive) or need refractory bookkeeping, and they
*miss* conditions that become true and false between evaluation cycles.
CA->ECA derivation fixes both.  We also compare condition-evaluation cost.
"""

import sys

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, seeded

from repro.core import (
    ProductionEngine,
    ProductionRule,
    PyAction,
    QueryCond,
    ReactiveEngine,
    derive_eca,
    eca,
)
from repro.events.queries import EAtom
from repro.terms import parse_data, parse_query
from repro.web import Simulation

URI = "http://shop.example/basket"
CONDITION = QueryCond(URI, parse_query("basket{{ total[var T -> > 100] }}"))


def _world():
    sim = Simulation(latency=0.0)
    node = sim.node("http://shop.example")
    node.put(URI, parse_data("basket{ total[0] }"))
    return sim, node


def _drive(node, sim, events, rng, pulse_width):
    """Totals pulse above the threshold for `pulse_width` sim-seconds."""
    times = []
    for i in range(events):
        at = float(i + 1)
        times.append(at)
        sim.scheduler.at(at, lambda: node.put(URI, parse_data("basket{ total[500] }")))
        sim.scheduler.at(at, lambda: node.raise_local(
            parse_data(f'resource-changed{{ uri["{URI}"] }}')))
        sim.scheduler.at(at + pulse_width, lambda: node.put(
            URI, parse_data("basket{ total[0] }")))
        sim.scheduler.at(at + pulse_width, lambda: node.raise_local(
            parse_data(f'resource-changed{{ uri["{URI}"] }}')))
    return times


def run_variant(variant: str, events: int = 50, poll_interval: float = 0.4,
                pulse_width: float = 0.25) -> dict:
    sim, node = _world()
    fired = []
    action = PyAction(lambda n, b: fired.append(n.now))
    production_rule = ProductionRule("discount", CONDITION, action)
    production = None
    engine = None
    if variant == "production-naive":
        production = ProductionEngine(node, lambda a, b: a.fn(node, b), refractory=False)
        production.install(production_rule)
        production.run_every(poll_interval, until=events + 2.0)
    elif variant == "production-refractory":
        production = ProductionEngine(node, lambda a, b: a.fn(node, b), refractory=True)
        production.install(production_rule)
        production.run_every(poll_interval, until=events + 2.0)
    else:  # eca (derived from the CA rule, Thesis 1)
        engine = ReactiveEngine(node)
        engine.install(derive_eca(production_rule, ["resource-changed"]))
    _drive(node, sim, events, seeded(), pulse_width)
    sim.run_until(events + 3.0)
    evaluations = (production.condition_evaluations if production is not None
                   else engine.stats.condition_evaluations)
    return {
        "variant": variant,
        "true pulses": events,
        "firings": len(fired),
        "missed": max(0, events - len(set(int(t) for t in fired))),
        "cond evals": evaluations,
    }


def table() -> list[dict]:
    events = pick(50, 6)
    return [
        run_variant("production-naive", events),
        run_variant("production-refractory", events),
        run_variant("eca", events),
    ]


def test_e01_eca_exactly_once(benchmark):
    row = benchmark(run_variant, "eca")
    assert row["firings"] == row["true pulses"]
    assert row["missed"] == 0


def test_e01_production_refractory(benchmark):
    row = benchmark(run_variant, "production-refractory")
    # Polling at 0.4 with 0.25 pulses: some pulses fall between polls.
    assert row["missed"] > 0


def test_e01_production_naive_overfires():
    naive = run_variant("production-naive", events=20, poll_interval=0.1,
                        pulse_width=0.35)
    # Several polls per pulse: strictly more firings than pulses.
    assert naive["firings"] > naive["true pulses"]


def test_e01_eca_fewer_evaluations():
    eca_row = run_variant("eca")
    prod_row = run_variant("production-refractory")
    assert eca_row["cond evals"] <= prod_row["cond evals"]


def main() -> None:
    parse_cli()
    print_table(
        "E1 — ECA vs production rules (50 condition pulses)",
        table(),
        "ECA fires exactly once per event; production rules re-fire or miss "
        "transient conditions and evaluate conditions on every cycle",
    )


if __name__ == "__main__":
    main()

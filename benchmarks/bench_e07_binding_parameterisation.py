"""E7 (Thesis 7): event bindings parameterise the condition query.

Paper claim: embedding one query language lets values delivered by the
event query be used in the condition query.  The alternative — a condition
that cannot be parameterised — must fetch *all* candidates and join in the
rule engine (or re-query per candidate).  Measured: candidate answers the
condition evaluation produces per event, and evaluation time, as the
resource grows; the parameterised condition stays selective and flat.
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, seeded

from repro.core.conditions import QueryCond, evaluate
from repro.terms import Bindings, parse_data, parse_query
from repro.web import Simulation

URI = "http://shop.example/stock"


def setup_store(items: int):
    sim = Simulation(latency=0.0)
    node = sim.node("http://shop.example")
    rows = ", ".join(f'item{{ id["i{k}"], qty[{k % 7}] }}' for k in range(items))
    node.put(URI, parse_data(f"stock{{ {rows} }}"))
    return node


PARAMETERISED = QueryCond(URI, parse_query("stock{{ item{{ id[var I], qty[var Q] }} }}"))
UNPARAMETERISED = QueryCond(URI, parse_query("stock{{ item{{ id[var J], qty[var Q] }} }}"))


def run_variant(variant: str, items: int, lookups: int = 50) -> dict:
    node = setup_store(items)
    rng = seeded(13)
    answers = 0
    started = time.perf_counter()
    for _ in range(lookups):
        event_bindings = Bindings.of(I=f"i{rng.randrange(items)}")
        if variant == "parameterised":
            # The event's I flows into the condition query (Thesis 7).
            result = evaluate(PARAMETERISED, node, event_bindings)
        else:
            # Join variable renamed: the condition cannot use the event's
            # binding and enumerates every item; the engine joins after.
            result = [
                b for b in evaluate(UNPARAMETERISED, node, event_bindings)
                if b.get("J") == event_bindings["I"]
            ]
        answers += len(result)
    elapsed = time.perf_counter() - started
    return {
        "condition": variant,
        "stock items": items,
        "lookups": lookups,
        "answers": answers,
        "ms/lookup": (elapsed / lookups) * 1e3,
    }


def table() -> list[dict]:
    rows = []
    lookups = pick(50, 5)
    for items in pick((10, 100, 400), (5, 10)):
        rows.append(run_variant("parameterised", items, lookups))
        rows.append(run_variant("unparameterised", items, lookups))
    return rows


def test_e07_parameterised(benchmark):
    benchmark(run_variant, "parameterised", 100, 20)


def test_e07_unparameterised(benchmark):
    benchmark(run_variant, "unparameterised", 100, 20)


def test_e07_same_answers_cheaper():
    fast = run_variant("parameterised", 200)
    slow = run_variant("unparameterised", 200)
    assert fast["answers"] == slow["answers"]
    assert fast["ms/lookup"] < slow["ms/lookup"]


def main() -> None:
    parse_cli()
    print_table(
        "E7 — condition parameterised by event bindings vs engine-side join",
        table(),
        "passing event bindings into the condition query keeps evaluation "
        "selective; without it, cost grows with the resource size",
    )


if __name__ == "__main__":
    main()

"""E20: what durability costs — volatile vs WAL vs sqlite resource stores.

PR 8 puts a pluggable persistence layer behind the resource store
(:mod:`repro.store`): committed outermost transactions become durable as
one CRC-framed WAL record (group commit: one fsync per transaction) or
one sqlite transaction, and reopening a store recovers the committed
state by replaying the log onto the latest snapshot.  E20 measures the
three costs that layer introduces:

- **Commit throughput** — the same put workload against ``memory`` (the
  volatile baseline every node always had), ``wal``, ``wal-nofsync``
  (``fsync=False``: the OS-page-cache ablation that isolates the fsync
  cost from the append/serialisation cost), and ``sqlite``.
- **Group commit** — the ``tx5`` workload packs 5 puts per transaction:
  the ops/s of a durable backend should *rise* relative to singles,
  because five ops share one record and one fsync.
- **Recovery** — wall time to reopen each durable store and replay its
  retained commits, at two checkpoint cadences (``snapshot_every`` high:
  replay everything; low: replay almost nothing — the knob trades write
  amplification for recovery time).

Emits ``BENCH_e20.json`` (skipped under ``--smoke``); the backend
ablation columns are guarded by ``require_columns``.
"""

import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, "benchmarks")
from _harness import (
    parse_cli,
    pick,
    print_table,
    require_columns,
    smoke_mode,
    write_json,
)

from repro import d
from repro.store import StoreConfig, open_store
from repro.updates import Transaction

URI_POOL = 64
TX_SIZE = 5

BACKENDS = (
    ("memory", dict(backend="memory")),
    ("wal", dict(backend="wal", fsync=True)),
    ("wal-nofsync", dict(backend="wal", fsync=False)),
    ("sqlite", dict(backend="sqlite", fsync=True)),
)


def make_config(name: str, spec: dict, root: str,
                snapshot_every=None) -> StoreConfig:
    path = None
    if spec["backend"] == "wal":
        path = os.path.join(root, name, "store")
    elif spec["backend"] == "sqlite":
        os.makedirs(os.path.join(root, name), exist_ok=True)
        path = os.path.join(root, name, "store.db")
    return StoreConfig(path=path, snapshot_every=snapshot_every,
                       **{k: v for k, v in spec.items()})


def body(i: int):
    return d("doc", d("n", i), d("tag", f"payload-{i % 7}"))


def run_singles(store, ops: int) -> None:
    for i in range(ops):
        store.put(f"http://bench.example/r{i % URI_POOL}", body(i))


def run_tx5(store, ops: int) -> None:
    for start in range(0, ops, TX_SIZE):
        with Transaction(store):
            for i in range(start, start + TX_SIZE):
                store.put(f"http://bench.example/r{i % URI_POOL}", body(i))


def timed(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def throughput_rows(ops: int, root: str) -> list[dict]:
    rows = []
    for workload_name, workload in (("singles", run_singles),
                                    ("tx5", run_tx5)):
        row = {"workload": workload_name, "ops": ops}
        for name, spec in BACKENDS:
            config = make_config(f"tp-{workload_name}-{name}", spec, root)
            store = open_store(config)
            elapsed = timed(workload, store, ops)
            row[f"{name} ops/s"] = ops / elapsed
            getattr(store, "close", lambda: None)()
        rows.append(row)
    return rows


def recovery_rows(ops: int, root: str) -> list[dict]:
    rows = []
    for cadence_name, snapshot_every in (("replay-all", None),
                                         ("checkpointed", 64)):
        row = {"cadence": cadence_name, "commits": ops}
        for name, spec in BACKENDS:
            if spec["backend"] == "memory":
                continue
            config = make_config(f"rec-{cadence_name}-{name}", spec, root,
                                 snapshot_every=snapshot_every)
            store = open_store(config)
            run_singles(store, ops)
            store.close()
            t0 = time.perf_counter()
            reopened = open_store(config)
            elapsed = time.perf_counter() - t0
            row[f"{name} recovery ms"] = elapsed * 1e3
            row[f"{name} replayed"] = reopened.replay_pending
            reopened.close()
        rows.append(row)
    return rows


def table() -> "tuple[list[dict], list[dict]]":
    ops = pick(2_000, 60)
    root = tempfile.mkdtemp(prefix="bench-e20-")
    try:
        throughput = require_columns(
            "e20", throughput_rows(ops, root),
            tuple(f"{name} ops/s" for name, _spec in BACKENDS))
        recovery = require_columns(
            "e20", recovery_rows(ops, root),
            ("wal recovery ms", "wal replayed",
             "sqlite recovery ms", "sqlite replayed"))
        return throughput, recovery
    finally:
        shutil.rmtree(root, ignore_errors=True)


# -- pytest-benchmark hooks ---------------------------------------------------


def test_e20_wal_commit_throughput(benchmark, tmp_path):
    counter = [0]

    def run():
        counter[0] += 1
        config = StoreConfig(backend="wal",
                             path=str(tmp_path / f"b{counter[0]}"),
                             snapshot_every=None)
        store = open_store(config)
        run_singles(store, 200)
        store.close()
        return store.commits

    assert benchmark(run) == 200


def test_e20_recovery_replays_the_log(tmp_path):
    config = StoreConfig(backend="wal", path=str(tmp_path / "store"),
                         snapshot_every=None)
    store = open_store(config)
    run_singles(store, 100)
    store.close()
    reopened = open_store(config)
    assert reopened.replay_pending == 100
    assert reopened.get("http://bench.example/r0") is not None
    reopened.close()


def test_e20_group_commit_amortises_the_fsync(tmp_path):
    """5-op transactions must not cost 5x a single-op commit's records."""
    config = StoreConfig(backend="wal", path=str(tmp_path / "store"),
                         snapshot_every=None)
    store = open_store(config)
    run_tx5(store, 100)
    assert store.commits == 100 // TX_SIZE
    store.close()


def main() -> None:
    parse_cli()
    throughput, recovery = table()
    print_table(
        "E20 — commit throughput by backend (ops/s; higher is better)",
        throughput,
        "durability is opt-in: memory stays the volatile baseline; "
        "group commit amortises the fsync across a transaction",
    )
    print_table(
        "E20 — recovery time by checkpoint cadence",
        recovery,
        "snapshot_every bounds replay length: checkpointed recovery "
        "replays (almost) nothing",
    )
    path = write_json("BENCH_e20.json", {
        "experiment": "e20_durable_store",
        "ops": pick(2_000, 60),
        "uri_pool": URI_POOL,
        "tx_size": TX_SIZE,
        "throughput_rows": throughput,
        "recovery_rows": recovery,
    })
    print(f"\nwrote {path}" if path else "\n(smoke mode: no JSON written)")
    if not smoke_mode():
        for row in throughput:
            assert row["memory ops/s"] > row["wal ops/s"], \
                "durability cannot be free"
        singles, tx5 = throughput
        # Group commit: packing 5 ops per fsync must beat 1 op per fsync.
        assert tx5["wal ops/s"] > singles["wal ops/s"] * 1.5, (
            singles["wal ops/s"], tx5["wal ops/s"])
        checkpointed = recovery[1]
        assert checkpointed["wal replayed"] <= 64


if __name__ == "__main__":
    main()

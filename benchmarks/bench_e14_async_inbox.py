"""E14: queued per-node inboxes and owner-indexed (coalesced) wake-ups.

The ROADMAP's async-inbox item decouples event *delivery* from event
*processing*: `WebNode` enqueues incoming events in a FIFO inbox and the
scheduler drains them, so a slow rule no longer stalls the sender's stack.
The same PR owner-indexes absence deadlines: `_on_time` advances only the
evaluators whose windows actually expire, instead of every active rule.
This experiment measures both halves and pins the non-negotiable
invariant — identical rule-firing counts across all four modes.

Workloads (R rules, disjoint labels, the many-tenants shape):

- *delivery*: plain `EAtom` rules fed bursts of same-instant events
  through the node; `EngineConfig(sync_delivery=True)` is the inline
  ablation.  Queued delivery pays one scheduler callback per burst, so
  throughput should be within a small constant of inline — the inbox
  buys decoupling and backpressure accounting (peak depth = burst size),
  not raw speed.
- *wakeups*: absence rules `start-i .. NOT stop-i WITHIN w`; every event
  plants a deadline, every deadline is a wake-up.
  `EngineConfig(coalesced_wakeups=False)` is the broadcast ablation that
  advances all R evaluators at each wake-up.  Coalesced wake-ups advance
  only the owner, so the speedup grows with R (>= 1 at 100 rules is the
  acceptance bar; in practice it is several-fold).

Emits ``BENCH_e14.json`` for CI tracking (skipped under ``--smoke``).
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, require_columns, smoke_mode, write_json

from repro.core import EngineConfig, ReactiveEngine, eca
from repro.core.actions import PyAction
from repro.events import EAtom, ENot, ESeq, EWithin
from repro.terms import Var, d, q
from repro.web import Simulation

RULE_GRID = (25, 50, 100, 200)
N_EVENTS = 800
BURST = 40          # same-instant events per burst (delivery workload)
WINDOW = 5.0        # absence window (wake-up workload)

NOOP = PyAction(lambda n, b: None, "noop")


def _sizes() -> tuple[tuple[int, ...], int]:
    return pick(RULE_GRID, (4, 8)), pick(N_EVENTS, 40)


def run_delivery(n_rules: int, n_events: int, sync: bool):
    """Bursts of same-instant events through the node's inbox.

    Returns (events/s, rule firings, peak inbox depth)."""
    sim = Simulation(latency=0.0)
    node = sim.node("http://bench.example")
    engine = ReactiveEngine(node, config=EngineConfig(sync_delivery=sync))
    engine.install_all(
        eca(f"r{i}", EAtom(q(f"evt-{i}", Var("X"))), NOOP)
        for i in range(n_rules)
    )
    for j in range(n_events):
        at = float(j // BURST)  # BURST events per simulated second
        sim.scheduler.at(
            at, lambda i=j % n_rules: node.raise_local(d(f"evt-{i}", d("x", 1)))
        )
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return n_events / elapsed, engine.stats.rule_firings, node.inbox_peak


def run_wakeups(n_rules: int, n_events: int, coalesced: bool):
    """Every event plants an absence deadline; every deadline wakes up.

    Returns (events/s, rule firings, evaluator advance_time calls)."""
    sim = Simulation(latency=0.0)
    node = sim.node("http://bench.example")
    engine = ReactiveEngine(node, config=EngineConfig(coalesced_wakeups=coalesced))
    engine.install_all(
        eca(
            f"quiet-{i}",
            EWithin(ESeq(EAtom(q(f"start-{i}", q("x", Var("X")))),
                         ENot(q(f"stop-{i}"))), WINDOW),
            NOOP,
        )
        for i in range(n_rules)
    )
    for j in range(n_events):
        # Distinct instants (k/16, binary-exact) so every deadline is its
        # own wake-up.  Exactness is no longer load-bearing: absence
        # answers carry their planted window as the span, so a rounded-up
        # start + window cannot make EWithin drop them anymore.
        sim.scheduler.at(
            0.0625 + j * 0.125,
            lambda i=j % n_rules: node.raise_local(d(f"start-{i}", d("x", 1))),
        )
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return n_events / elapsed, engine.stats.rule_firings, engine.stats.evaluator_advances


def table() -> list[dict]:
    grid, n_events = _sizes()
    rows = []
    for n_rules in grid:
        queued_rate, queued_firings, peak = run_delivery(n_rules, n_events, sync=False)
        sync_rate, sync_firings, _ = run_delivery(n_rules, n_events, sync=True)
        assert queued_firings == sync_firings, (
            f"delivery modes disagree at {n_rules} rules: "
            f"{queued_firings} != {sync_firings}"
        )
        coal_rate, coal_firings, coal_adv = run_wakeups(n_rules, n_events, True)
        bcast_rate, bcast_firings, bcast_adv = run_wakeups(n_rules, n_events, False)
        assert coal_firings == bcast_firings, (
            f"wake-up modes disagree at {n_rules} rules: "
            f"{coal_firings} != {bcast_firings}"
        )
        rows.append({
            "rules": n_rules,
            "firings": queued_firings,
            "queued ev/s": queued_rate,
            "sync ev/s": sync_rate,
            "inbox peak": peak,
            "coalesced ev/s": coal_rate,
            "broadcast ev/s": bcast_rate,
            "wakeup speedup": coal_rate / bcast_rate,
            "advances": coal_adv,
            "advances (bcast)": bcast_adv,
        })
    return require_columns(
        "e14", rows,
        ("queued ev/s", "sync ev/s", "coalesced ev/s", "broadcast ev/s"),
    )


def test_e14_firing_counts_invariant():
    _, queued_firings, peak = run_delivery(50, 400, sync=False)
    _, sync_firings, _ = run_delivery(50, 400, sync=True)
    assert queued_firings == sync_firings == 400
    assert peak == BURST  # whole burst queues before the drain runs
    _, coal_firings, coal_adv = run_wakeups(50, 200, coalesced=True)
    _, bcast_firings, bcast_adv = run_wakeups(50, 200, coalesced=False)
    assert coal_firings == bcast_firings == 200  # one absence answer per start
    assert coal_adv < bcast_adv / 10  # owners only vs whole rule base


def test_e14_coalesced_beats_broadcast_at_scale():
    coal_rate, coal_firings, _ = run_wakeups(100, 400, coalesced=True)
    bcast_rate, bcast_firings, _ = run_wakeups(100, 400, coalesced=False)
    assert coal_firings == bcast_firings == 400
    assert coal_rate > bcast_rate


def test_e14_inbox_throughput(benchmark):
    def run():
        run_delivery(100, 400, sync=False)

    benchmark(run)


def main() -> None:
    parse_cli()
    rows = table()
    _grid, n_events = _sizes()
    print_table(
        f"E14 — queued inbox and coalesced wake-ups vs rule count ({n_events} events)",
        rows,
        "queued delivery matches inline firing-for-firing; coalesced wake-ups "
        "advance only deadline owners, so their advantage grows with the rule "
        "count (>= 1x at 100 rules, identical firing counts everywhere)",
    )
    path = write_json("BENCH_e14.json", {
        "experiment": "e14_async_inbox",
        "n_events": n_events,
        "burst": BURST,
        "window": WINDOW,
        "rows": rows,
    })
    print(f"\nwrote {path}" if path else "\n(smoke mode: no JSON written)")
    if not smoke_mode():
        at_scale = [r for r in rows if r["rules"] >= 100]
        assert all(r["wakeup speedup"] > 1.0 for r in at_scale), (
            "coalesced wake-ups must beat broadcast at >= 100 rules"
        )


if __name__ == "__main__":
    main()

"""E13: label-indexed event dispatch vs the broadcast baseline.

The ROADMAP's north star ("fast as the hardware allows, millions of
users") dies first at dispatch: a node with *R* installed rules that
broadcasts every incoming event to every rule's evaluator pays O(R) per
event even when only one rule cares.  The engine therefore routes events
through the first level of its discrimination net — the root-label index
built from each evaluator's ``interest()``
(:class:`~repro.events.queries.EventInterest`; wildcard queries keep
seeing everything).  This experiment measures what that first level buys
on disjoint labels; E15 measures the second, discriminating level on one
hot label, and E16 the shard partitioning built on the same keys.

Workload: *R* rules, each subscribed to its own disjoint event label
(``evt-i``), and a stream of events cycling through those labels — the
many-tenants shape where broadcast hurts most.  The ablation switch is
``EngineConfig(indexed_dispatch=False)``, which restores the old broadcast
``_dispatch``.  Both modes must produce identical rule-firing counts
(identical semantics — only the routing changes); the run emits
``BENCH_e13.json`` for CI tracking.

Shape to reproduce: broadcast throughput decays ~1/R; indexed throughput
stays flat, so the speedup grows linearly with the rule count (>= 2x at
200 rules is the acceptance bar; in practice it is orders of magnitude).
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, require_columns, write_json

from repro.core import EngineConfig, ReactiveEngine, eca
from repro.core.actions import PyAction
from repro.events import EAtom
from repro.events.model import make_event
from repro.terms import Var, d, q
from repro.web import Simulation

N_EVENTS = 2000
RULE_GRID = (25, 50, 100, 200)


def build_engine(n_rules: int, indexed: bool) -> ReactiveEngine:
    sim = Simulation(latency=0.0)
    node = sim.node("http://bench.example")
    engine = ReactiveEngine(node, config=EngineConfig(indexed_dispatch=indexed))
    noop = PyAction(lambda n, b: None, "noop")
    for i in range(n_rules):
        engine.install(eca(f"r{i}", EAtom(q(f"evt-{i}", Var("X"))), noop))
    return engine


def make_stream(n_events: int, n_labels: int):
    return [
        make_event(d(f"evt-{i % n_labels}", d("x", i)), float(i))
        for i in range(n_events)
    ]


def run_once(n_rules: int, indexed: bool, n_events: int = N_EVENTS) -> tuple[float, int]:
    """Feed the stream straight into the engine; (events/s, rule firings)."""
    engine = build_engine(n_rules, indexed)
    stream = make_stream(n_events, n_rules)
    started = time.perf_counter()
    for event in stream:
        engine.handle_event(event)
    elapsed = time.perf_counter() - started
    return n_events / elapsed, engine.stats.rule_firings


def table() -> list[dict]:
    rows = []
    n_events = pick(N_EVENTS, 50)
    for n_rules in pick(RULE_GRID, (4, 8)):
        indexed_rate, indexed_firings = run_once(n_rules, indexed=True, n_events=n_events)
        broadcast_rate, broadcast_firings = run_once(n_rules, indexed=False, n_events=n_events)
        assert indexed_firings == broadcast_firings, (
            f"dispatch modes disagree at {n_rules} rules: "
            f"{indexed_firings} != {broadcast_firings}"
        )
        rows.append({
            "rules": n_rules,
            "firings": indexed_firings,
            "indexed ev/s": indexed_rate,
            "broadcast ev/s": broadcast_rate,
            "speedup": indexed_rate / broadcast_rate,
        })
    return require_columns("e13", rows, ("indexed ev/s", "broadcast ev/s"))


def test_e13_indexed_beats_broadcast_at_scale():
    indexed_rate, indexed_firings = run_once(200, indexed=True)
    broadcast_rate, broadcast_firings = run_once(200, indexed=False)
    assert indexed_firings == broadcast_firings == N_EVENTS
    assert indexed_rate >= 2 * broadcast_rate


def test_e13_dispatch_throughput(benchmark):
    stream = make_stream(500, 100)

    def run():
        engine = build_engine(100, indexed=True)
        for event in stream:
            engine.handle_event(event)

    benchmark(run)


def main() -> None:
    parse_cli()
    rows = table()
    print_table(
        "E13 — dispatch throughput vs installed rule count "
        f"({pick(N_EVENTS, 50)} events, disjoint labels)",
        rows,
        "indexed dispatch is flat in the rule count; broadcast decays ~1/R "
        "(>= 2x at 200 rules, identical firing counts)",
    )
    path = write_json("BENCH_e13.json", {
        "experiment": "e13_dispatch_scaling",
        "n_events": N_EVENTS,
        "rows": rows,
    })
    print(f"\nwrote {path}" if path else "\n(smoke mode: no JSON written)")


if __name__ == "__main__":
    main()

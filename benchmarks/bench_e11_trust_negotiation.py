"""E11 (Thesis 11): reactive rule exchange vs all-at-once policy dump.

Paper claims for exchanging policies reactively during negotiation:
(1) "more efficient since only small sets of relevant rules are exchanged";
(2) "policies themselves can be sensitive information and thus only given
out when a certain stage in the negotiation has been reached".

Measured: bytes and rules shipped, and sensitive rules exposed to an
untrusted peer, for (a) reactive step-by-step exchange vs (b) sending the
whole policy base up front — sweeping the size of the shop's policy base.
"""

import sys

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table

from repro.core import Raise, eca
from repro.core.meta import rule_to_term
from repro.events.queries import EAtom
from repro.terms import parse_construct, parse_query, to_text


def build_policy_base(total_rules: int) -> list:
    """A shop policy base; one rule is relevant to a credit-card purchase,
    a fixed fraction is sensitive (internal pricing, fraud heuristics)."""
    rules = [eca(
        "payment-credit-card",
        EAtom(parse_query('payment-offer{{ method["credit-card"] }}')),
        Raise("http://shop.example", parse_construct("payment-accepted{}")),
    )]
    for i in range(total_rules - 1):
        sensitive = i % 3 == 0
        name = f"{'internal-fraud-heuristic' if sensitive else 'policy'}-{i}"
        rules.append(eca(
            name,
            EAtom(parse_query(f"situation-{i}{{{{ x[var X] }}}}")),
            Raise("http://shop.example",
                  parse_construct(f"reaction-{i}{{ var X }}")),
        ))
    return rules


def _is_sensitive(rule) -> bool:
    return rule.name.startswith("internal-")


def run_exchange(strategy: str, base_size: int) -> dict:
    rules = build_policy_base(base_size)
    if strategy == "reactive":
        # Steps of the paper's scenario: only the rule relevant to the
        # customer's situation is shipped, after trust is established.
        shipped = [rules[0]]
        rounds = 3  # request -> policy, certificate-request -> certificate,
        #             offer -> acceptance
    else:
        shipped = rules
        rounds = 1
    payload_bytes = sum(len(to_text(rule_to_term(rule))) for rule in shipped)
    return {
        "strategy": strategy,
        "policy base": base_size,
        "rules shipped": len(shipped),
        "bytes shipped": payload_bytes,
        "sensitive rules exposed": sum(1 for rule in shipped if _is_sensitive(rule)),
        "negotiation rounds": rounds,
    }


def table() -> list[dict]:
    rows = []
    for base_size in pick((10, 50, 200), (5, 10)):
        rows.append(run_exchange("reactive", base_size))
        rows.append(run_exchange("all-at-once", base_size))
    return rows


def test_e11_reactive_ships_less(benchmark):
    reactive = benchmark(run_exchange, "reactive", 100)
    dump = run_exchange("all-at-once", 100)
    assert reactive["bytes shipped"] < dump["bytes shipped"] / 10
    assert reactive["rules shipped"] == 1


def test_e11_no_sensitive_exposure():
    reactive = run_exchange("reactive", 100)
    dump = run_exchange("all-at-once", 100)
    assert reactive["sensitive rules exposed"] == 0
    assert dump["sensitive rules exposed"] > 0


def test_e11_reactive_cost_independent_of_base():
    small = run_exchange("reactive", 10)
    large = run_exchange("reactive", 200)
    assert small["bytes shipped"] == large["bytes shipped"]


def main() -> None:
    parse_cli()
    print_table(
        "E11 — reactive policy exchange vs all-at-once dump",
        table(),
        "reactive exchange ships only the relevant rules (constant in the "
        "policy-base size) and exposes no sensitive policies pre-trust",
    )


if __name__ == "__main__":
    main()

"""E15: two-level discriminating dispatch vs root-label-only vs broadcast.

E13 fixed the many-tenants shape (disjoint labels), but a *high-fanout*
label defeats a root-label index: 100 rules all watching ``stock`` events
— each for its own symbol — still broadcast to the whole bucket, and each
candidate pays an interpreted pattern match.  The engine therefore
sub-indexes each label bucket by the rules' shared constant discriminator
(attribute value or constant-scalar child; OpenCEP-style tree routing),
and compiles each rule's pattern once at install time.

Workload: *R* rules on one hot root label, each discriminated by an
attribute (``stock[sym: "SYM-i"]``), and a stream cycling through the
symbols — every event is relevant to exactly one rule.  Modes:

- ``discriminating`` — the full two-level net (the default config);
- ``root-label`` — ``EngineConfig(discriminating_index=False)``, the
  pre-E15 behaviour (first level only);
- ``broadcast`` — ``EngineConfig(indexed_dispatch=False)``, no index.

The headline metric is **candidates per event** (``EngineStats.
candidates_considered / events_processed``): root-label considers the
whole bucket (R), discriminating considers ~1.  The acceptance bar is a
>= 5x reduction at 100 rules.  A second sweep times the compiled pattern
matcher (:func:`repro.terms.simulation.compile_pattern`) against the
interpreted tree-walk on the same patterns — the cost paid by candidates
that *do* reach a rule.  All modes must agree firing-for-firing.

Emits ``BENCH_e15.json`` for CI tracking (skipped under ``--smoke``).
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, require_columns, smoke_mode, write_json

from repro.core import EngineConfig, ReactiveEngine, eca
from repro.core.actions import PyAction
from repro.events import EAtom
from repro.events.model import make_event
from repro.terms import Data, Var, q
from repro.terms.simulation import compile_pattern, match
from repro.web import Simulation

N_EVENTS = 2000
RULE_GRID = (1, 10, 50, 100, 200)
LABEL = "stock"

NOOP = PyAction(lambda n, b: None, "noop")

MODES = {
    "discriminating": EngineConfig(),
    "root-label": EngineConfig(discriminating_index=False),
    "broadcast": EngineConfig(indexed_dispatch=False),
}


def rule_pattern(i: int):
    """One tenant's pattern: hot label, constant symbol attribute."""
    return q(LABEL, q("price", Var("P")), sym=f"SYM-{i}")


def event_term(i: int, n_rules: int) -> Data:
    sym = f"SYM-{i % n_rules}"
    return Data(LABEL, (Data("price", (float(i),)),), False, (("sym", sym),))


def build_engine(n_rules: int, mode: str) -> ReactiveEngine:
    sim = Simulation(latency=0.0)
    node = sim.node("http://bench.example")
    engine = ReactiveEngine(node, config=MODES[mode])
    engine.install_all(
        eca(f"r{i}", EAtom(rule_pattern(i)), NOOP) for i in range(n_rules)
    )
    return engine


def run_once(n_rules: int, mode: str, n_events: int) -> dict:
    engine = build_engine(n_rules, mode)
    stream = [make_event(event_term(i, n_rules), float(i)) for i in range(n_events)]
    started = time.perf_counter()
    for event in stream:
        engine.handle_event(event)
    elapsed = time.perf_counter() - started
    stats = engine.stats
    return {
        "rate": n_events / elapsed,
        "firings": stats.rule_firings,
        "candidates_per_event": stats.candidates_considered / n_events,
        "matcher_calls": stats.matcher_calls,
    }


def matcher_speedup(n_rules: int, n_events: int) -> float:
    """Compiled vs interpreted matching of the sweep's own patterns.

    Times the exact per-candidate work dispatch cannot avoid: probing one
    event against one rule's pattern.  The stream is the sweep's, so one
    probe in n_rules matches and the rest are the guard-rejected majority.
    """
    patterns = [rule_pattern(i) for i in range(n_rules)]
    compiled = [compile_pattern(p) for p in patterns]
    terms = [event_term(i, n_rules) for i in range(n_events)]

    started = time.perf_counter()
    for term in terms:
        for pattern in patterns:
            match(pattern, term)
    interpreted_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    for term in terms:
        for matcher in compiled:
            matcher(term)
    compiled_elapsed = time.perf_counter() - started
    return interpreted_elapsed / compiled_elapsed


def table() -> list[dict]:
    rows = []
    n_events = pick(N_EVENTS, 50)
    matcher_events = pick(200, 10)
    for n_rules in pick(RULE_GRID, (2, 4)):
        results = {mode: run_once(n_rules, mode, n_events) for mode in MODES}
        firings = {r["firings"] for r in results.values()}
        assert len(firings) == 1, (
            f"dispatch modes disagree at {n_rules} rules: "
            f"{ {m: r['firings'] for m, r in results.items()} }"
        )
        disc, root, bcast = (
            results["discriminating"], results["root-label"], results["broadcast"],
        )
        rows.append({
            "rules": n_rules,
            "firings": disc["firings"],
            "disc cand/ev": disc["candidates_per_event"],
            "root cand/ev": root["candidates_per_event"],
            "bcast cand/ev": bcast["candidates_per_event"],
            "cand reduction": root["candidates_per_event"] / disc["candidates_per_event"],
            "disc ev/s": disc["rate"],
            "root ev/s": root["rate"],
            "bcast ev/s": bcast["rate"],
            "matcher speedup": matcher_speedup(n_rules, matcher_events),
        })
    return require_columns(
        "e15", rows,
        ("disc cand/ev", "root cand/ev", "bcast cand/ev",
         "disc ev/s", "root ev/s", "bcast ev/s", "matcher speedup"),
    )


def test_e15_candidate_reduction_at_scale():
    disc = run_once(100, "discriminating", 1000)
    root = run_once(100, "root-label", 1000)
    assert disc["firings"] == root["firings"] == 1000
    assert root["candidates_per_event"] >= 5 * disc["candidates_per_event"]


def test_e15_modes_agree_and_matchers_thin_out():
    results = {mode: run_once(50, mode, 500) for mode in MODES}
    assert len({r["firings"] for r in results.values()}) == 1
    # Fewer candidates must mean fewer matcher invocations too.
    assert results["discriminating"]["matcher_calls"] < \
        results["root-label"]["matcher_calls"]


def test_e15_dispatch_throughput(benchmark):
    stream = [make_event(event_term(i, 100), float(i)) for i in range(500)]

    def run():
        engine = build_engine(100, "discriminating")
        for event in stream:
            engine.handle_event(event)

    benchmark(run)


def main() -> None:
    parse_cli()
    rows = table()
    n_events = pick(N_EVENTS, 50)
    print_table(
        f"E15 — discriminating dispatch on one hot label ({n_events} events)",
        rows,
        "root-label-only considers the whole bucket (R candidates/event); "
        "the discriminating net considers ~1 (>= 5x reduction at 100 rules, "
        "identical firing counts everywhere)",
    )
    path = write_json("BENCH_e15.json", {
        "experiment": "e15_discriminating_dispatch",
        "n_events": N_EVENTS,
        "label": LABEL,
        "rows": rows,
    })
    print(f"\nwrote {path}" if path else "\n(smoke mode: no JSON written)")
    if not smoke_mode():
        at_scale = [r for r in rows if r["rules"] >= 100]
        assert all(r["cand reduction"] >= 5.0 for r in at_scale), (
            "discriminating dispatch must cut candidates >= 5x at >= 100 rules"
        )


if __name__ == "__main__":
    main()

"""E19: tree-based evaluation with frequency-ordered join plans vs prefix
extension.

PR 7 adds :class:`repro.events.tree.TreeEvaluator`
(``EngineConfig(evaluator="tree")``): each positive member of a sequence
buffers its matches at a leaf, and a left-deep join chain combines the
leaves **rarest first**, seeded from per-label event rates.  The
incremental evaluator extends prefixes strictly left to right, so a
sequence whose *early* members are frequent makes it materialise every
hot prefix — and every hot×mid combination — for a full window, even
when the closing member almost never arrives.  The tree pays for a
combination only once the rare side of the plan actually produces one.

Measured, per pattern length (positive sequence members) × stream skew:

- ``incremental us/ev`` / ``tree us/ev`` — mean per-event processing
  time over the whole stream (identical Event objects fed to both);
- ``speedup`` — incremental/tree time ratio (>1 means the tree wins);
- ``inc peak state`` / ``tree peak state`` — the largest
  ``state_size()`` either mechanism held (live prefixes and buffered
  combinations; the memory story behind the time story);
- ``answers`` — emitted by *both* mechanisms, asserted identical cell by
  cell (the equivalence the property suite proves on random streams).

Skews:

- *uniform*: every pattern label equally likely — the plans coincide
  (textual order is already rarest-first-ish), so this column prices the
  tree's bookkeeping overhead honestly;
- *skewed*: the first member takes most of the stream, middle members
  are moderate, the closing member is rare (~0.4%) — the adversarial
  placement for prefix extension and the case join re-ordering is for.

Emits ``BENCH_e19.json`` for CI tracking (skipped under ``--smoke``);
the incremental/tree ablation pair is guarded by ``require_columns``.
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, require_columns, seeded, smoke_mode, write_json

from repro.events import EAtom, ESeq, EWithin, IncrementalEvaluator, TreeEvaluator
from repro.events.model import make_event
from repro.terms import Var, d, q

N_EVENTS = 4000
LENGTH_GRID = (2, 4, 6, 8)
SKEWS = ("uniform", "skewed")
WINDOW = 2.0
MEAN_GAP = 0.05          # ~40 events per window
NOISE_SHARE = 0.08       # never-matching label, as in E6
RARE_SHARE = 0.004       # the closing member: what makes completions rare
MID_MASS = 0.35          # stream share split among the middle members...
MID_FLOOR = 0.07         # ...but no middle member rarer than this
STATE_PROBE = 100        # sample state_size() every N events


def build_query(length: int) -> EWithin:
    members = [EAtom(q(f"m{i}", Var(f"V{i}"))) for i in range(length)]
    return EWithin(ESeq(*members), WINDOW)


def label_weights(length: int, skew: str) -> dict[str, float]:
    labels = [f"m{i}" for i in range(length)]
    if skew == "uniform":
        weights = {label: (1.0 - NOISE_SHARE) / length for label in labels}
    else:
        middles = labels[1:-1]
        weights = {labels[-1]: RARE_SHARE}
        for label in middles:
            weights[label] = max(MID_MASS / len(middles), MID_FLOOR)
        # The first member is the hot one: everything left over.
        weights[labels[0]] = 1.0 - NOISE_SHARE - sum(weights.values())
    weights["x"] = NOISE_SHARE
    return weights


def make_stream(length: int, skew: str, n: int, seed: int = 19):
    rng = seeded(seed)
    weights = label_weights(length, skew)
    labels = list(weights)
    shares = [weights[label] for label in labels]
    clock = 0.0
    out = []
    for i in range(n):
        clock += rng.expovariate(1.0 / MEAN_GAP)
        out.append(make_event(d(rng.choices(labels, shares)[0], i), clock))
    return out


def stream_rates(stream) -> dict[str, float]:
    rates: dict[str, float] = {}
    for event in stream:
        label = event.term.label
        rates[label] = rates.get(label, 0.0) + 1.0
    return rates


def run_once(evaluator, stream) -> dict:
    answers = 0
    peak = 0
    started = time.perf_counter()
    for i, event in enumerate(stream):
        answers += len(evaluator.on_event(event))
        if i % STATE_PROBE == 0:
            peak = max(peak, evaluator.state_size())
    answers += len(evaluator.advance_time(stream[-1].time + WINDOW + 1.0))
    elapsed = time.perf_counter() - started
    return {
        "us_per_event": elapsed / len(stream) * 1e6,
        "answers": answers,
        "peak_state": max(peak, evaluator.state_size()),
    }


def table() -> list[dict]:
    rows = []
    n_events = pick(N_EVENTS, 200)
    for length in pick(LENGTH_GRID, (2, 4)):
        for skew in SKEWS:
            query = build_query(length)
            stream = make_stream(length, skew, n_events)
            rates = stream_rates(stream)
            incremental = run_once(IncrementalEvaluator(query), stream)
            tree = run_once(TreeEvaluator(query, rates), stream)
            assert tree["answers"] == incremental["answers"], (
                f"mechanisms disagree at length={length} skew={skew}: "
                f"tree={tree['answers']} incremental={incremental['answers']}"
            )
            rows.append({
                "pattern length": length,
                "skew": skew,
                "answers": tree["answers"],
                "incremental us/ev": incremental["us_per_event"],
                "tree us/ev": tree["us_per_event"],
                "speedup": incremental["us_per_event"] / tree["us_per_event"],
                "inc peak state": incremental["peak_state"],
                "tree peak state": tree["peak_state"],
            })
    return require_columns(
        "e19", rows, ("incremental us/ev", "tree us/ev", "speedup"))


def test_e19_mechanisms_agree_on_answers():
    query = build_query(4)
    stream = make_stream(4, "skewed", 600)
    tree = TreeEvaluator(query, stream_rates(stream))
    incremental = IncrementalEvaluator(query)
    for event in stream:
        assert tree.on_event(event) == incremental.on_event(event)
    horizon = stream[-1].time + WINDOW + 1.0
    assert tree.advance_time(horizon) == incremental.advance_time(horizon)


def test_e19_rates_order_the_plan_rarest_first():
    query = build_query(4)
    stream = make_stream(4, "skewed", 600)
    plan = TreeEvaluator(query, stream_rates(stream)).plan()
    assert plan["op"] == "seq"
    # The hot first member joins last; the rare closing member first.
    assert plan["order"][0] == 3
    assert plan["order"][-1] == 0


def test_e19_tree_processing(benchmark):
    query = build_query(4)
    stream = make_stream(4, "skewed", 600)
    rates = stream_rates(stream)

    def run():
        evaluator = TreeEvaluator(query, rates)
        for event in stream:
            evaluator.on_event(event)

    benchmark(run)


def test_e19_incremental_processing(benchmark):
    query = build_query(4)
    stream = make_stream(4, "skewed", 600)

    def run():
        evaluator = IncrementalEvaluator(query)
        for event in stream:
            evaluator.on_event(event)

    benchmark(run)


def main() -> None:
    parse_cli()
    rows = table()
    n_events = pick(N_EVENTS, 200)
    print_table(
        f"E19 — tree joins (frequency-ordered) vs prefix extension "
        f"({n_events} events, window {WINDOW})",
        rows,
        "identical answers on every cell; rarest-first join plans keep "
        "skewed long patterns cheap where prefix extension materialises "
        "every hot prefix for a window",
    )
    path = write_json("BENCH_e19.json", {
        "experiment": "e19_tree_evaluation",
        "n_events": N_EVENTS,
        "window": WINDOW,
        "mean_gap": MEAN_GAP,
        "length_grid": list(LENGTH_GRID),
        "skews": list(SKEWS),
        "rows": rows,
    })
    print(f"\nwrote {path}" if path else "\n(smoke mode: no JSON written)")
    if not smoke_mode():
        best = max(r["speedup"] for r in rows if r["skew"] == "skewed")
        assert best >= 2.0, (
            f"tree evaluation should win >=2x on some skewed cell, best {best:.2f}"
        )


if __name__ == "__main__":
    main()

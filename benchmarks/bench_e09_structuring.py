"""E9 (Thesis 9): structuring pays — ECAA vs two ECA rules; deductive views.

Paper claims: (a) "the condition C is only tested once in an ECAA rule"
versus twice for the rule pair with C and NOT C; (b) deductive rules (views)
avoid replicating complicated queries across rules.  Measured: condition
evaluations per event for both encodings, and per-event work when a shared
event classification is factored into one deductive event view versus
repeated inside every rule.
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table

from repro.core import NotCond, PyAction, QueryCond, ReactiveEngine, eca, ecaa
from repro.deductive import DeductiveRule, Match, Program
from repro.events.queries import EAtom
from repro.terms import Var, c, parse_data, parse_query
from repro.web import Simulation

URI = "http://n.example/flags"
CONDITION = QueryCond(URI, parse_query("flags{{ enabled }}"))
TRIGGER = EAtom(parse_query("go{{ n[var N] }}"))


def _world():
    sim = Simulation(latency=0.0)
    node = sim.node("http://n.example")
    node.put(URI, parse_data("flags{ enabled }"))
    return sim, node


def run_branching(variant: str, events: int = 200) -> dict:
    sim, node = _world()
    engine = ReactiveEngine(node)
    hits = []
    then_action = PyAction(lambda n, b: hits.append("then"))
    else_action = PyAction(lambda n, b: hits.append("else"))
    if variant == "ecaa":
        engine.install(ecaa("branch", TRIGGER, CONDITION, then_action, else_action))
    else:
        engine.install(eca("pos", TRIGGER, then_action, if_=CONDITION))
        engine.install(eca("neg", TRIGGER, else_action, if_=NotCond(CONDITION)))
    for i in range(events):
        node.raise_local(parse_data(f"go{{ n[{i}] }}"))
    sim.run()
    return {
        "encoding": variant,
        "events": events,
        "firings": len(hits),
        "condition evals": engine.stats.condition_evaluations,
        "evals/event": engine.stats.condition_evaluations / events,
    }


# A realistically expensive classification: a descendant search with a
# join over a bulky order document.
CLASSIFIER = parse_query(
    "order{{ desc line{{ sku[var S], price[var P -> > 50] }}, region[var R] }}"
)


def _order_term(i: int) -> str:
    lines = ", ".join(
        f'line{{ sku["s{k}"], price[{10 + ((i + k) % 9) * 10}] }}' for k in range(12)
    )
    return f'order{{ meta{{ batch{{ {lines} }} }}, region["r{i % 4}"] }}'


def run_views(variant: str, rules: int = 16, events: int = 150) -> dict:
    """`rules` subscriber rules all need the same 'high-value order' class."""
    sim, node = _world()
    if variant == "deductive view":
        views = Program(
            [DeductiveRule(c("high-value", Var("S"), Var("R")), (Match(CLASSIFIER),))],
            allow_recursion=False,
        )
        engine = ReactiveEngine(node, event_views=views)
        trigger = EAtom(parse_query("high-value[[ var S, var R ]]"))
    else:
        engine = ReactiveEngine(node)
        trigger = EAtom(CLASSIFIER)
    hits = []
    for i in range(rules):
        engine.install(eca(f"subscriber-{i}", trigger,
                           PyAction(lambda n, b: hits.append(1))))
    started = time.perf_counter()
    for i in range(events):
        node.raise_local(parse_data(_order_term(i)))
        sim.run()
    elapsed = time.perf_counter() - started
    return {
        "encoding": variant,
        "events": events,
        "firings": len(hits),
        "condition evals": "-",
        "evals/event": f"{elapsed / events * 1e6:.0f} us/event",
    }


def table() -> list[dict]:
    events = pick(200, 12)
    view_rules, view_events = pick(16, 4), pick(150, 10)
    return [
        run_branching("ecaa", events),
        run_branching("two-rules", events),
        run_views("deductive view", view_rules, view_events),
        run_views("replicated query", view_rules, view_events),
    ]


def test_e09_ecaa_halves_condition_evaluations(benchmark):
    ecaa_row = benchmark(run_branching, "ecaa", 50)
    pair_row = run_branching("two-rules", 50)
    assert ecaa_row["firings"] == pair_row["firings"]
    assert ecaa_row["condition evals"] * 2 == pair_row["condition evals"]


def test_e09_view_same_answers():
    view = run_views("deductive view", rules=4, events=40)
    replicated = run_views("replicated query", rules=4, events=40)
    assert view["firings"] == replicated["firings"]


def main() -> None:
    parse_cli()
    print_table(
        "E9 — structuring: ECAA vs 2xECA; shared view vs replicated query",
        table(),
        "ECAA tests the shared condition once (half the evaluations); a "
        "deductive event view factors a shared classification out of N rules",
    )


if __name__ == "__main__":
    main()

"""E6 (Thesis 6): incremental vs query-driven (re-evaluate history).

The paper's headline efficiency claim: "work done in one evaluation step of
an event query should not be redone in future evaluation [...] a
non-incremental, query-driven evaluation would have to check the entire
history of events for an A when a B is detected."

Measured: per-event processing time as the history grows.  Shape to
reproduce: incremental is flat; naive grows with history length (the same
query, the same answers — checked by the equivalence property suite).
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, seeded

from repro.events import EAnd, EAtom, EWithin, IncrementalEvaluator, NaiveEvaluator
from repro.events.model import make_event
from repro.terms import Var, d, q

QUERY = EWithin(EAnd(EAtom(q("a", Var("X"))), EAtom(q("b", Var("Y")))), 5.0)


def make_stream(n: int, seed: int = 5):
    rng = seeded(seed)
    clock = 0.0
    out = []
    for i in range(n):
        clock += rng.expovariate(2.0)
        out.append(make_event(d(rng.choice(["a", "b", "c"]), i), clock))
    return out


def time_per_event(evaluator_cls, history_length: int) -> float:
    """Mean time to process one more event after `history_length` events."""
    probes = 10
    stream = make_stream(history_length + probes)
    evaluator = evaluator_cls(QUERY)
    if evaluator_cls is NaiveEvaluator:
        # Load the history directly: replaying it through on_event would
        # itself cost O(n^2) warm-up and is not what we measure.
        evaluator._history.extend(stream[:history_length])
        evaluator._last_time = stream[history_length - 1].time
        evaluator._delta(evaluator._last_time)
    else:
        for event in stream[:history_length]:
            evaluator.on_event(event)
    started = time.perf_counter()
    for event in stream[history_length:]:
        evaluator.on_event(event)
    return (time.perf_counter() - started) / probes


def table() -> list[dict]:
    rows = []
    for history in pick((100, 300, 900), (20, 40)):
        incremental = time_per_event(IncrementalEvaluator, history)
        naive = time_per_event(NaiveEvaluator, history)
        rows.append({
            "history length": history,
            "incremental us/event": incremental * 1e6,
            "naive us/event": naive * 1e6,
            "speedup": naive / incremental,
        })
    return rows


def test_e06_incremental_processing(benchmark):
    stream = make_stream(500)

    def run():
        evaluator = IncrementalEvaluator(QUERY)
        for event in stream:
            evaluator.on_event(event)

    benchmark(run)


def test_e06_naive_processing(benchmark):
    stream = make_stream(120)

    def run():
        evaluator = NaiveEvaluator(QUERY)
        for event in stream:
            evaluator.on_event(event)

    benchmark(run)


def test_e06_shape_incremental_flat_naive_grows():
    inc_small = time_per_event(IncrementalEvaluator, 100)
    inc_large = time_per_event(IncrementalEvaluator, 900)
    nav_small = time_per_event(NaiveEvaluator, 100)
    nav_large = time_per_event(NaiveEvaluator, 900)
    assert inc_large < 5 * inc_small       # flat-ish in history
    assert nav_large > 5 * nav_small       # grows with history
    assert nav_large > 10 * inc_large      # and the gap is wide


def main() -> None:
    parse_cli()
    print_table(
        "E6 — per-event cost vs history length (within-5 conjunction)",
        table(),
        "incremental: flat per-event cost; query-driven re-evaluation grows "
        "with the history it must re-check",
    )


if __name__ == "__main__":
    main()

"""E16: sharded reactive nodes — one facade, N engine shards.

The ROADMAP's "millions of users on one URI" route: with
``EngineConfig(shards=N)`` the :class:`~repro.api.ReactiveNode` facade
fronts N engines behind a :class:`~repro.sharding.ShardRouter` that
partitions the rule base by root label and — for one hot label — by its
discriminator-attribute axis (the PR-3 ``(label, constant)`` key), giving
each shard its own FIFO inbox drained in global arrival order.  All shard
counts are observationally equivalent (property-tested); what changes is
how the *work* spreads.

Workloads (the two shapes that stress opposite partition levels):

- *hot*: R rules on one root label ``stock``, each pinning its own
  ``sym`` attribute constant — the shape only the (label, constant) split
  can shard; a stream cycling the symbols through the node's inbox.
- *mixed*: R rules on R disjoint labels (many tenants) — the shape the
  root-label home assignment shards; a stream cycling the labels.

Headline metrics, per shard count:

- ``sN ev/s`` — end-to-end throughput through node inbox + router +
  shard inboxes (one process, so this measures router overhead, not
  parallel speedup — the shards are the seam real threads would use);
- ``share s4`` — the largest shard's fraction of per-shard events at 4
  shards (perfect split: 0.25).  This is the scaling headroom: each
  engine sees ~1/N of the traffic and holds ~1/N of the rules.

Firing counts must be identical across every shard count.  Emits
``BENCH_e16.json`` for CI tracking (skipped under ``--smoke``).
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, require_columns, smoke_mode, write_json

from repro import EngineConfig, Simulation
from repro.core import eca
from repro.core.actions import PyAction
from repro.events import EAtom
from repro.terms import Data, Var, d, q

N_EVENTS = 2000
RULE_GRID = (50, 100, 200)
SHARD_GRID = (1, 2, 4, 8)
BURST = 40  # same-instant events per burst, like E14's delivery workload

NOOP = PyAction(lambda n, b: None, "noop")


def build_node(n_rules: int, shards: int, workload: str):
    sim = Simulation(latency=0.0)
    node = sim.reactive_node("http://bench.example",
                             config=EngineConfig(shards=shards))
    if workload == "hot":
        rules = [
            eca(f"r{i}", EAtom(q("stock", q("price", Var("P")), sym=f"SYM-{i}")),
                NOOP)
            for i in range(n_rules)
        ]
    else:
        rules = [
            eca(f"r{i}", EAtom(q(f"evt-{i}", Var("X"))), NOOP)
            for i in range(n_rules)
        ]
    node.install(*rules)
    return sim, node


def event_term(j: int, n_rules: int, workload: str) -> Data:
    if workload == "hot":
        return Data("stock", (Data("price", (float(j),)),), False,
                    (("sym", f"SYM-{j % n_rules}"),))
    return d(f"evt-{j % n_rules}", d("x", j))


def run_once(n_rules: int, shards: int, workload: str, n_events: int) -> dict:
    """Drive the full node path; throughput, firings, and shard balance."""
    sim, node = build_node(n_rules, shards, workload)
    for j in range(n_events):
        term = event_term(j, n_rules, workload)
        sim.scheduler.at(float(j // BURST), lambda t=term: node.raise_local(t))
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    per_shard = [s.events_processed for s in node.shard_stats]
    return {
        "rate": n_events / elapsed,
        "firings": node.stats.rule_firings,
        "share": max(per_shard) / max(1, sum(per_shard)),
        "rules_per_shard": [len(engine.rules()) for engine in node.shards],
    }


def table() -> list[dict]:
    rows = []
    n_events = pick(N_EVENTS, 40)
    for workload in ("hot", "mixed"):
        for n_rules in pick(RULE_GRID, (8,)):
            results = {
                shards: run_once(n_rules, shards, workload, n_events)
                for shards in SHARD_GRID
            }
            firings = {r["firings"] for r in results.values()}
            assert len(firings) == 1, (
                f"shard counts disagree on {workload}/{n_rules}: "
                f"{ {s: r['firings'] for s, r in results.items()} }"
            )
            row = {
                "workload": workload,
                "rules": n_rules,
                "firings": results[1]["firings"],
            }
            for shards in SHARD_GRID:
                row[f"s{shards} ev/s"] = results[shards]["rate"]
            row["share s4"] = results[4]["share"]
            row["max rules/shard s4"] = max(results[4]["rules_per_shard"])
            rows.append(row)
    return require_columns(
        "e16", rows,
        tuple(f"s{shards} ev/s" for shards in SHARD_GRID) + ("share s4",),
    )


def test_e16_firings_and_balance_at_scale():
    single = run_once(100, 1, "hot", 1000)
    sharded = run_once(100, 4, "hot", 1000)
    assert single["firings"] == sharded["firings"] == 1000
    # The hot label splits on the sym axis: traffic and rules spread ~1/4.
    assert sharded["share"] <= 0.35
    assert max(sharded["rules_per_shard"]) <= 30


def test_e16_mixed_workload_spreads_labels():
    sharded = run_once(100, 4, "mixed", 1000)
    assert sharded["firings"] == 1000
    assert sharded["share"] <= 0.35
    assert max(sharded["rules_per_shard"]) == 25  # greedy label homes


def test_e16_sharded_throughput(benchmark):
    def run():
        run_once(100, 4, "hot", 400)

    benchmark(run)


def main() -> None:
    parse_cli()
    rows = table()
    n_events = pick(N_EVENTS, 40)
    print_table(
        f"E16 — sharded nodes: throughput and balance vs shard count "
        f"({n_events} events)",
        rows,
        "identical firings at every shard count; at 4 shards the largest "
        "shard carries ~25% of per-shard events on both the hot-label "
        "(attribute split) and mixed (label homes) workloads",
    )
    path = write_json("BENCH_e16.json", {
        "experiment": "e16_sharded_nodes",
        "n_events": N_EVENTS,
        "burst": BURST,
        "shard_grid": list(SHARD_GRID),
        "rows": rows,
    })
    print(f"\nwrote {path}" if path else "\n(smoke mode: no JSON written)")
    if not smoke_mode():
        at_scale = [r for r in rows if r["rules"] >= 100]
        assert all(r["share s4"] <= 0.35 for r in at_scale), (
            "4-shard fleets must spread traffic (max shard share <= 0.35)"
        )


if __name__ == "__main__":
    main()

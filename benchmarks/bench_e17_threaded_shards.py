"""E17: threaded shard execution — epoch/barrier workers vs inline drains.

PR 5 moves the shard engines of a sharded :class:`ReactiveNode` onto real
worker threads (``EngineConfig(executor="threads")``,
:mod:`repro.runtime`): every drain becomes an epoch — snapshot the
per-shard inbox segments, advance all shards in parallel on pinned
threads, join at a barrier, fire the collected answers serially in global
order.  Both executors are observationally identical (property-tested in
``tests/properties/test_shard_equivalence.py``); what E17 measures is the
*cost of the coordination*:

- ``<executor> sN ev/s`` — end-to-end wall-clock throughput through node
  inbox → router → shard engines at N shards;
- ``thr/inl s4`` — the threads/inline throughput ratio at 4 shards
  (>1 means the epoch protocol pays for itself on that workload);
- ``barrier overhead us/epoch`` — (threads wall − inline wall) divided
  by the epochs taken: the per-barrier price of the snapshot, the thread
  hand-off, and the join.

Workloads:

- *hot*: one label split across shards on its ``sym`` attribute, cheap
  single-child events — the adversarial case where per-event work is
  tiny and the barrier dominates;
- *weighted*: the same split but with CPU-weighted matching — every
  event carries a wide unordered payload and every rule's compiled
  matcher probes several children, with multiple rules per symbol — the
  case the epoch protocol is built for, where per-shard match batches
  are the bulk of the wall-clock.

Honesty note: under CPython's GIL, pure-Python matcher work does not run
truly concurrently, so ``thr/inl`` hovers near (and usually below) 1.0;
the table quantifies the barrier price rather than claiming a speedup.
The epoch/barrier seam is exactly where free-threaded builds, or
matchers that release the GIL, turn the same numbers into real scaling —
see docs/BENCHMARKS.md.

Firing counts must be identical across every cell.  Emits
``BENCH_e17.json`` for CI tracking (skipped under ``--smoke``); the
inline/threads ablation pair is guarded by ``require_columns``.
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, require_columns, smoke_mode, write_json

from repro import EngineConfig, Simulation
from repro.core import eca
from repro.core.actions import PyAction
from repro.events import EAtom
from repro.terms import Data, Var, q

N_EVENTS = 2000
RULE_GRID = (48, 96)
SHARD_GRID = (1, 2, 4)
EXECUTORS = ("inline", "threads")
SYMBOLS = 24         # distinct split-axis values (rules_per_sym share each)
BURST = 40           # same-instant events per burst, as in E14/E16
WIDE_CHILDREN = 8    # payload width of the weighted workload's events

NOOP = PyAction(lambda n, b: None, "noop")


def build_node(n_rules: int, shards: int, executor: str, workload: str):
    sim = Simulation(latency=0.0)
    node = sim.reactive_node(
        "http://bench.example",
        config=EngineConfig(shards=shards, executor=executor))
    if workload == "hot":
        rules = [
            eca(f"r{i}", EAtom(q("stock", q("price", Var("P")),
                                 sym=f"SYM-{i % SYMBOLS}")), NOOP)
            for i in range(n_rules)
        ]
    else:  # weighted: several constrained children per pattern
        rules = [
            eca(f"r{i}",
                EAtom(q("stock",
                        q("price", Var("P")), q("vol", Var("V")),
                        q("bid", Var("B")), q("ask", Var("A")),
                        sym=f"SYM-{i % SYMBOLS}")),
                NOOP)
            for i in range(n_rules)
        ]
    node.install(*rules)
    return sim, node


def event_term(j: int, workload: str) -> Data:
    attrs = (("sym", f"SYM-{j % SYMBOLS}"),)
    if workload == "hot":
        return Data("stock", (Data("price", (float(j),)),), False, attrs)
    children = tuple(
        Data(label, (float(j + k),))
        for k, label in enumerate(
            ("price", "vol", "bid", "ask", "last", "open", "high", "low")
        )
    )[:WIDE_CHILDREN]
    return Data("stock", children, False, attrs)


def run_once(n_rules: int, shards: int, executor: str, workload: str,
             n_events: int) -> dict:
    sim, node = build_node(n_rules, shards, executor, workload)
    for j in range(n_events):
        term = event_term(j, workload)
        sim.scheduler.at(float(j // BURST), lambda t=term: node.raise_local(t))
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    stats = node.stats
    return {
        "rate": n_events / elapsed,
        "elapsed": elapsed,
        "firings": stats.rule_firings,
        "epochs": stats.epochs,
        "barrier_wait_s": stats.barrier_wait_s,
        "executor_reported": stats["executor"],
    }


def table() -> list[dict]:
    rows = []
    n_events = pick(N_EVENTS, 40)
    for workload in ("hot", "weighted"):
        for n_rules in pick(RULE_GRID, (12,)):
            results = {}
            for executor in EXECUTORS:
                for shards in SHARD_GRID:
                    if executor == "threads" and shards == 1:
                        continue  # no fleet to drive: shards=1 is inline
                    results[(executor, shards)] = run_once(
                        n_rules, shards, executor, workload, n_events)
            firings = {r["firings"] for r in results.values()}
            assert len(firings) == 1, (
                f"executors disagree on {workload}/{n_rules}: "
                f"{ {k: r['firings'] for k, r in results.items()} }"
            )
            row = {
                "workload": workload,
                "rules": n_rules,
                "firings": results[("inline", 1)]["firings"],
            }
            for shards in SHARD_GRID:
                row[f"inline s{shards} ev/s"] = results[("inline", shards)]["rate"]
            for shards in SHARD_GRID[1:]:
                row[f"threads s{shards} ev/s"] = \
                    results[("threads", shards)]["rate"]
            threaded = results[("threads", 4)]
            inline = results[("inline", 4)]
            row["thr/inl s4"] = threaded["rate"] / inline["rate"]
            epochs = max(1, threaded["epochs"])
            row["barrier overhead us/epoch"] = \
                (threaded["elapsed"] - inline["elapsed"]) / epochs * 1e6
            row["epochs s4"] = threaded["epochs"]
            rows.append(row)
    return require_columns(
        "e17", rows,
        ("inline s4 ev/s", "threads s4 ev/s", "thr/inl s4",
         "barrier overhead us/epoch"),
    )


def test_e17_threaded_firings_match_inline():
    inline = run_once(48, 4, "inline", "weighted", 400)
    threaded = run_once(48, 4, "threads", "weighted", 400)
    # 48 rules over 24 symbols = 2 rules match every event.
    assert inline["firings"] == threaded["firings"] == 800
    assert threaded["executor_reported"] == "threads"
    assert inline["executor_reported"] == "inline"
    assert threaded["epochs"] > 0
    assert inline["epochs"] == 0


def test_e17_threaded_throughput(benchmark):
    def run():
        run_once(48, 4, "threads", "weighted", 400)

    benchmark(run)


def main() -> None:
    parse_cli()
    rows = table()
    n_events = pick(N_EVENTS, 40)
    print_table(
        f"E17 — threaded shard execution: inline vs epoch/barrier workers "
        f"({n_events} events)",
        rows,
        "identical firings on every cell; threads pay one barrier per "
        "drain (quantified per epoch) and track inline throughput under "
        "the GIL — the seam real parallel matchers scale through",
    )
    path = write_json("BENCH_e17.json", {
        "experiment": "e17_threaded_shards",
        "n_events": N_EVENTS,
        "burst": BURST,
        "shard_grid": list(SHARD_GRID),
        "executors": list(EXECUTORS),
        "rows": rows,
    })
    print(f"\nwrote {path}" if path else "\n(smoke mode: no JSON written)")
    if not smoke_mode():
        # The protocol must stay in the same performance class inline is
        # in — a barrier that cost an order of magnitude would show here.
        assert all(r["thr/inl s4"] > 0.1 for r in rows), (
            "threaded execution fell out of inline's performance class"
        )


if __name__ == "__main__":
    main()

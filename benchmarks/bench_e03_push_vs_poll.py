"""E3 (Thesis 3): push vs poll.

Paper claim: polling "causes more network traffic, increases reaction time,
and requires more local resources" than push.  Sweep: poll interval at a
fixed event rate.  Push traffic equals the number of events and detects
immediately (one latency); poll traffic grows with 1/interval and detection
delay with interval/2 — the crossover (poll cheaper than push) appears only
when events are much more frequent than polls, at the price of missing
intermediate changes.
"""

import sys

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, seeded

from repro.terms import parse_data
from repro.web import PollingWatcher, Simulation

HORIZON = 200.0
LATENCY = 0.05


def _changes(rng, rate: float) -> list[float]:
    times, t = [], 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= HORIZON:
            return times
        times.append(t)


def run_push(event_rate: float, seed: int = 7) -> dict:
    sim = Simulation(latency=LATENCY)
    source = sim.node("http://source.example")
    sink = sim.node("http://sink.example")
    detections = []
    sink.on_event(lambda e: detections.append(sim.now - e.occurrence))
    changes = _changes(seeded(seed), event_rate)
    for i, at in enumerate(changes):
        sim.scheduler.at(at, lambda i=i: source.raise_event(
            sink.uri, parse_data(f"changed{{ seq[{i}] }}")))
    sim.run_until(HORIZON + 1.0)
    return {
        "mode": "push",
        "event rate": event_rate,
        "poll interval": "-",
        "messages": sim.stats.messages,
        "mean delay": sum(detections) / len(detections) if detections else 0.0,
        "detected": len(detections),
        "changes": len(changes),
    }


def run_poll(event_rate: float, interval: float, seed: int = 7) -> dict:
    sim = Simulation(latency=LATENCY)
    source = sim.node("http://source.example")
    sink = sim.node("http://sink.example")
    uri = "http://source.example/doc"
    source.put(uri, parse_data("doc{ seq[-1] }"))
    watcher = PollingWatcher(sink, uri, interval, until=HORIZON)
    changes = _changes(seeded(seed), event_rate)
    for i, at in enumerate(changes):
        def change(i=i):
            source.put(uri, parse_data(f"doc{{ seq[{i}] }}"))
            watcher.record_change(sim.now)
        sim.scheduler.at(at, change)
    sim.run_until(HORIZON + 1.0)
    return {
        "mode": "poll",
        "event rate": event_rate,
        "poll interval": interval,
        "messages": sim.stats.messages,
        "mean delay": watcher.mean_detection_delay,
        "detected": watcher.changes_detected,
        "changes": len(changes),
    }


def table() -> list[dict]:
    rows = [run_push(0.2)]
    for interval in pick((0.5, 1.0, 5.0, 20.0), (5.0, 20.0)):
        rows.append(run_poll(0.2, interval))
    rows.append(run_push(5.0))
    rows.append(run_poll(5.0, 5.0))
    return rows


def test_e03_push_less_traffic_lower_latency(benchmark):
    push = benchmark(run_push, 0.2)
    poll = run_poll(0.2, 1.0)
    assert push["messages"] < poll["messages"]
    assert push["mean delay"] < poll["mean delay"]
    assert push["detected"] == push["changes"]


def test_e03_poll_delay_scales_with_interval():
    fast = run_poll(0.2, 1.0)
    slow = run_poll(0.2, 10.0)
    assert slow["mean delay"] > 3 * fast["mean delay"]
    assert slow["messages"] < fast["messages"]


def test_e03_crossover_at_high_event_rate():
    # When events are far more frequent than polls, polling transfers
    # fewer messages — by missing intermediate changes.
    push = run_push(5.0)
    poll = run_poll(5.0, 5.0)
    assert poll["messages"] < push["messages"]
    assert poll["detected"] < poll["changes"]


def main() -> None:
    parse_cli()
    print_table(
        "E3 — push vs poll (horizon 200 s, change rate in events/s)",
        table(),
        "push: less traffic, immediate reaction; poll traffic ~ 1/interval, "
        "delay ~ interval/2; crossover only when events >> polls (and then "
        "polling misses changes)",
    )


if __name__ == "__main__":
    main()

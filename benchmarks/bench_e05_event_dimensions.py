"""E5 (Thesis 5): the four dimensions of event queries, all detectable on-line.

Paper claim: an event query language needs data extraction, event
composition, temporal conditions, and event accumulation.  Measured:
detection throughput (events/s through the incremental evaluator) for one
representative query per dimension, plus answers found, on the same stream.
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, seeded

from repro.events import (
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    ESeq,
    EWithin,
    IncrementalEvaluator,
)
from repro.events.model import make_event
from repro.terms import Var, d, parse_query, q

QUERIES = {
    "data extraction": EAtom(parse_query("order{{ item[var I], qty[var Q] }}")),
    "composition (and)": EWithin(
        EAnd(EAtom(parse_query("order{{ item[var I] }}")),
             EAtom(parse_query("payment{{ item[var I] }}"))), 20.0),
    "composition (seq+neg)": EWithin(
        ESeq(EAtom(parse_query("order{{ item[var I] }}")),
             ENot(parse_query("cancel{{ item[var I] }}")),
             EAtom(parse_query("payment{{ item[var I] }}"))), 20.0),
    "temporal (within)": EWithin(
        ESeq(EAtom(parse_query("order{{ item[var I] }}")),
             EAtom(parse_query("payment{{ item[var I] }}"))), 5.0),
    "accumulation (count)": ECount(parse_query("outage{{ host[var H] }}"), 3, 30.0,
                                   group_by=("H",)),
    "accumulation (agg)": EAggregate(parse_query("price{{ value[var P] }}"),
                                     "P", "avg", "A", size=5,
                                     predicate=("rise%", 2.0)),
}


def make_stream(n: int, seed: int = 11):
    rng = seeded(seed)
    stream = []
    clock = 0.0
    for i in range(n):
        clock += rng.expovariate(1.0)
        kind = rng.choice(["order", "payment", "cancel", "outage", "price", "noise"])
        item = f"i{rng.randrange(20)}"
        if kind in ("order", "payment", "cancel"):
            term = d(kind, d("item", item), d("qty", rng.randrange(1, 5)))
        elif kind == "outage":
            term = d("outage", d("host", f"h{rng.randrange(5)}"))
        elif kind == "price":
            term = d("price", d("value", 100 + rng.random() * 20))
        else:
            term = d("noise", i)
        stream.append(make_event(term, clock))
    return stream


def run_query(name: str, events: int = 2_000) -> dict:
    stream = make_stream(events)
    evaluator = IncrementalEvaluator(QUERIES[name])
    answers = 0
    started = time.perf_counter()
    for event in stream:
        answers += len(evaluator.on_event(event))
    elapsed = time.perf_counter() - started
    return {
        "dimension": name,
        "events": events,
        "answers": answers,
        "events/s": int(events / elapsed),
        "peak state": evaluator.state_size(),
    }


def table() -> list[dict]:
    events = pick(2_000, 60)
    return [run_query(name, events) for name in QUERIES]


def test_e05_all_dimensions_detect(benchmark):
    rows = benchmark(lambda: [run_query(name, 500) for name in QUERIES])
    by_name = {row["dimension"]: row for row in rows}
    assert by_name["data extraction"]["answers"] > 0
    assert by_name["composition (and)"]["answers"] > 0
    assert by_name["accumulation (count)"]["answers"] > 0
    assert by_name["accumulation (agg)"]["answers"] > 0


def main() -> None:
    parse_cli()
    print_table(
        "E5 — event-query dimensions on one 2000-event stream",
        table(),
        "all four dimensions (extraction, composition, temporal, "
        "accumulation) expressible and detectable on-line",
    )


if __name__ == "__main__":
    main()

"""E4 (Thesis 4): volatile event data must be disposed of in finite time.

Paper claim: without disposal, event storage grows without bound (the
"shadow Web"); with windows + garbage collection, state is bounded by
event rate x window.  Measured: live state of the incremental evaluator
(windowed, GC'd) vs the naive evaluator's full history, as the stream grows.
"""

import sys

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, seeded

from repro.events import EAnd, EAtom, EWithin, IncrementalEvaluator, NaiveEvaluator
from repro.events.model import make_event
from repro.terms import Var, d, q

QUERY = EWithin(EAnd(EAtom(q("a", Var("X"))), EAtom(q("b", Var("Y")))), 10.0)


def run_stream(evaluator, events: int, seed: int = 3) -> list[int]:
    rng = seeded(seed)
    sizes = []
    clock = 0.0
    for i in range(events):
        clock += rng.expovariate(1.0)
        label = rng.choice(["a", "b", "c"])
        evaluator.on_event(make_event(d(label, i), clock))
        sizes.append(evaluator.state_size())
    return sizes


def table() -> list[dict]:
    rows = []
    for events in pick((100, 1_000, 5_000), (20, 60)):
        incremental = IncrementalEvaluator(QUERY)
        inc_sizes = run_stream(incremental, events)
        # The naive evaluator's state is the history itself (verified in
        # test_e04_naive_history_unbounded); computing it for large streams
        # needs no O(n^2) run.
        naive_history = events
        rows.append({
            "stream length": events,
            "incremental peak state": max(inc_sizes),
            "incremental final state": inc_sizes[-1],
            "naive history": naive_history,
            "ratio": naive_history / max(1, max(inc_sizes)),
        })
    return rows


def test_e04_windowed_state_bounded(benchmark):
    def run():
        evaluator = IncrementalEvaluator(QUERY)
        return max(run_stream(evaluator, 1_000))

    peak = benchmark(run)
    assert peak < 100  # ~ rate x window, far below stream length


def test_e04_naive_history_unbounded():
    naive = NaiveEvaluator(QUERY)
    assert run_stream(naive, 300)[-1] == 300


def test_e04_growth_shape():
    incremental = IncrementalEvaluator(QUERY)
    sizes = run_stream(incremental, 2_000)
    early_peak = max(sizes[:1_000])
    late_peak = max(sizes[1_000:])
    # Flat: the later half does not outgrow the earlier half materially.
    assert late_peak <= 2 * early_peak


def main() -> None:
    parse_cli()
    print_table(
        "E4 — event state: windowed GC vs unbounded history",
        table(),
        "volatile data is disposed of in finite time: incremental state is "
        "flat in stream length; keeping history grows linearly (shadow Web)",
    )


if __name__ == "__main__":
    main()

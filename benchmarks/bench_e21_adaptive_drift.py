"""E21: adaptive mechanism selection under mid-run skew drift.

E19 showed the evaluation-mechanism choice is workload-dependent: join
trees win multiples on hot-first skew, prefix extension wins on uniform
and rare-first streams.  PR 9's :class:`repro.events.AdaptiveEvaluator`
(``EngineConfig(evaluator="adaptive")``) makes the choice at runtime and
*revises* it when the workload drifts.  This experiment drives one
persistent evaluator of each mechanism through the same three-phase
stream:

- **uniform** — every pattern label equally likely: the mechanisms'
  plans coincide, so the tree only pays its bookkeeping overhead and
  incremental evaluation is the right choice;
- **hot-first** — a zipf-style skew with the sequence's *first* member
  taking most of the stream and the closing member rare: the adversarial
  case for prefix extension, where rarest-first joins win;
- **reversed** — the mirrored zipf: textual order is already
  rarest-first, so incremental wins again and a tree planned for the
  previous phase is maximally wrong.

The adaptive evaluator should ride the drift — incremental, switch to
tree, switch back — with a switch count bounded by its hysteresis
(dwell + margin), and land within 15%% of whichever *fixed* mechanism is
best on every phase while beating the worst by >=1.5x where the phases
disagree.  The fixed tree is seeded with the full stream's aggregate
rates (the best any static configuration could know).

Measured per phase × mechanism: mean per-event processing time (best of
``PASSES`` runs — the uniform phase is allocation-heavy and noisy),
answers (asserted identical across mechanisms cell by cell), the
mechanism the adaptive evaluator ends the phase on, and its cumulative
switch count.  Emits ``BENCH_e21.json`` (skipped under ``--smoke``);
the three-way ablation is guarded by ``require_columns``.
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, require_columns, seeded, smoke_mode, write_json

from repro.events import (
    AdaptiveEvaluator,
    EAtom,
    ESeq,
    EWithin,
    GovernorConfig,
    IncrementalEvaluator,
    TreeEvaluator,
)
from repro.events.model import make_event
from repro.terms import Var, d, q

N_EVENTS = 6000          # per phase
PASSES = 5               # timing passes; per-phase best-of is reported
LENGTH = 4               # positive sequence members
WINDOW = 1.0
MEAN_GAP = 0.05          # ~40 events per window
PHASES = ("uniform", "hot-first", "reversed")
NOISE_SHARE = 0.08       # never-matching label, as in E19
# The governor tuned for this drift cadence: ~3 simulated seconds of
# rate memory against 300-second phases, deciding every 16 events with
# two epochs of dwell.  The entry margin is high (the asymmetric
# hysteresis makes that free: leaving the tree needs no margin, so a
# stale plan is abandoned as soon as the scores flip), and min_mass
# keeps the governor from reading a hot-first signature into the first
# few dozen events before every member has shown up.
GOVERNOR = dict(epoch_events=16, dwell_epochs=2, margin=0.5, halflife=3.0,
                period=10.0, tree_overhead=1.5, min_mass=40.0)


def build_query() -> EWithin:
    members = [EAtom(q(f"m{i}", Var(f"V{i}"))) for i in range(LENGTH)]
    return EWithin(ESeq(*members), WINDOW)


def label_weights(phase: str) -> dict[str, float]:
    labels = [f"m{i}" for i in range(LENGTH)]
    if phase == "uniform":
        weights = {label: (1.0 - NOISE_SHARE) / LENGTH for label in labels}
    else:
        zipf = [0.60, 0.20, 0.11, 0.01]
        if phase == "reversed":
            zipf = zipf[::-1]
        weights = dict(zip(labels, zipf))
    weights["x"] = 1.0 - sum(weights.values())
    return weights


def make_phases(n: int, seed: int = 21):
    """The drift stream: one list of events per phase, one shared clock."""
    rng = seeded(seed)
    clock = 0.0
    phases = []
    for phase in PHASES:
        weights = label_weights(phase)
        labels, shares = list(weights), list(weights.values())
        events = []
        for i in range(n):
            clock += rng.expovariate(1.0 / MEAN_GAP)
            events.append(make_event(d(rng.choices(labels, shares)[0], i), clock))
        phases.append((phase, events))
    return phases


def aggregate_rates(phases) -> dict[str, float]:
    """Whole-stream label counts: the fixed tree's (static) best guess."""
    rates: dict[str, float] = {}
    for _phase, events in phases:
        for event in events:
            label = event.term.label
            rates[label] = rates.get(label, 0.0) + 1.0
    return rates


def run_drift(evaluator, phases) -> list[dict]:
    """One persistent evaluator through all phases; per-phase readings."""
    out = []
    for phase, events in phases:
        answers = 0
        started = time.perf_counter()
        for event in events:
            answers += len(evaluator.on_event(event))
        elapsed = time.perf_counter() - started
        out.append({
            "phase": phase,
            "us_per_event": elapsed / len(events) * 1e6,
            "answers": answers,
            "mechanism": getattr(evaluator, "mechanism", "fixed"),
            "switches": getattr(evaluator, "switches", 0),
        })
    # Drain trailing pendings so every pass starts from nothing live.
    evaluator.advance_time(phases[-1][1][-1].time + WINDOW + 1.0)
    return out


def _mechanisms(query, rates):
    return {
        "incremental": lambda: IncrementalEvaluator(query),
        "tree": lambda: TreeEvaluator(query, dict(rates)),
        "adaptive": lambda: AdaptiveEvaluator(
            query, config=GovernorConfig(**GOVERNOR)),
    }


def table() -> list[dict]:
    n_events = pick(N_EVENTS, 200)
    phases = make_phases(n_events)
    query = build_query()
    rates = aggregate_rates(phases)
    results = {}
    for _ in range(pick(PASSES, 1)):
        for name, build in _mechanisms(query, rates).items():
            readings = run_drift(build(), phases)
            best = results.get(name)
            if best is None:
                results[name] = readings
            else:
                for slot, fresh in zip(best, readings):
                    slot["us_per_event"] = min(slot["us_per_event"],
                                               fresh["us_per_event"])
    rows = []
    for i, phase in enumerate(PHASES):
        answers = {name: results[name][i]["answers"] for name in results}
        assert len(set(answers.values())) == 1, (
            f"mechanisms disagree on phase {phase!r}: {answers}"
        )
        fixed_best = min(results["incremental"][i]["us_per_event"],
                         results["tree"][i]["us_per_event"])
        rows.append({
            "phase": phase,
            "answers": results["adaptive"][i]["answers"],
            "incremental us/ev": results["incremental"][i]["us_per_event"],
            "tree us/ev": results["tree"][i]["us_per_event"],
            "adaptive us/ev": results["adaptive"][i]["us_per_event"],
            "adaptive vs best": results["adaptive"][i]["us_per_event"] / fixed_best,
            "adaptive mechanism": results["adaptive"][i]["mechanism"],
            "switches": results["adaptive"][i]["switches"],
        })
    return require_columns(
        "e21", rows,
        ("incremental us/ev", "tree us/ev", "adaptive us/ev"))


def test_e21_mechanisms_agree_batch_by_batch():
    phases = make_phases(200)
    adaptive_ev = AdaptiveEvaluator(build_query(),
                                    config=GovernorConfig(**GOVERNOR))
    fixed = IncrementalEvaluator(build_query())
    for _phase, events in phases:
        for event in events:
            assert adaptive_ev.on_event(event) == fixed.on_event(event)
    horizon = phases[-1][1][-1].time + WINDOW + 1.0
    assert adaptive_ev.advance_time(horizon) == fixed.advance_time(horizon)
    assert adaptive_ev.switches >= 1  # the drift really provoked a switch


def test_e21_adaptive_rides_the_drift():
    # Phase-end mechanisms: incremental on uniform, tree on hot-first,
    # incremental again on reversed — two switches, no thrash.
    evaluator = AdaptiveEvaluator(build_query(),
                                  config=GovernorConfig(**GOVERNOR))
    trajectory = []
    for phase, events in make_phases(600):
        for event in events:
            evaluator.on_event(event)
        trajectory.append((phase, evaluator.mechanism))
    assert trajectory == [("uniform", "incremental"), ("hot-first", "tree"),
                          ("reversed", "incremental")]
    assert evaluator.switches == 2


def test_e21_adaptive_processing(benchmark):
    phases = make_phases(300)
    query = build_query()

    def run():
        run_drift(AdaptiveEvaluator(query, config=GovernorConfig(**GOVERNOR)),
                  phases)

    benchmark(run)


def main() -> None:
    parse_cli()
    rows = table()
    n_events = pick(N_EVENTS, 200)
    print_table(
        f"E21 — adaptive mechanism selection under skew drift "
        f"({n_events} events/phase, window {WINDOW})",
        rows,
        "one evaluator rides uniform -> hot-first -> reversed skew, "
        "switching mechanisms to stay near the per-phase best fixed "
        "choice, with hysteresis bounding the switch count",
    )
    path = write_json("BENCH_e21.json", {
        "experiment": "e21_adaptive_drift",
        "n_events_per_phase": N_EVENTS,
        "passes": PASSES,
        "pattern_length": LENGTH,
        "window": WINDOW,
        "mean_gap": MEAN_GAP,
        "phases": list(PHASES),
        "governor": GOVERNOR,
        "rows": rows,
    })
    print(f"\nwrote {path}" if path else "\n(smoke mode: no JSON written)")
    if not smoke_mode():
        for row in rows:
            assert row["adaptive vs best"] <= 1.15, (
                f"adaptive should stay within 15% of the best fixed "
                f"mechanism on {row['phase']!r}, got "
                f"{row['adaptive vs best']:.3f}x"
            )
        beats_worst = max(
            max(row["incremental us/ev"], row["tree us/ev"])
            / row["adaptive us/ev"]
            for row in rows
        )
        assert beats_worst >= 1.5, (
            f"adaptive should beat the worst fixed mechanism >=1.5x on "
            f"some phase, best ratio {beats_worst:.2f}"
        )
        assert rows[-1]["switches"] <= 4, (
            f"hysteresis should bound the drift to ~2 switches, got "
            f"{rows[-1]['switches']}"
        )


if __name__ == "__main__":
    main()

"""E18: the ingestion tier — overflow policies under load, and what they cost.

PR 6 adds a real front door (:mod:`repro.ingest`): a framed wire
protocol, an admission controller with a high-water mark and pluggable
overflow policies, per-sender token-bucket rate limiting, weighted-fair
service into the node inbox, and enqueue-to-fire latency accounting in
simulated seconds.  E18 drives it with :class:`tools.loadgen.LoadGen` —
10 000 clients with zipf-skewed rates, a million events per cell in the
full run — under two arrival regimes:

- *steady*: service capacity comfortably above the arrival rate
  (``pump_batch`` 1.5x the per-tick arrivals).  The backlog never
  reaches the high-water mark, no policy sheds anything, and every
  policy's latency is the service quantum — the baseline that shows the
  admission stage itself is cheap.
- *overload*: capacity pinned at 0.8x arrivals.  The backlog hits the
  mark and the policies diverge, which is the point of the experiment:
  ``reject`` and ``drop-oldest`` keep the queue — and therefore p99
  enqueue-to-fire latency — bounded while shedding the excess
  (``shed`` counts it; drop-oldest sheds *old* events, reject sheds
  *new* ones), whereas ``spill`` sheds nothing, parks the excess on
  disk, and pays for completeness with a latency max that includes the
  spill-file residency.

Per policy the table reports wall-clock throughput (``ev/s``), the
enqueue-to-fire percentiles in simulated seconds (``p50`` / ``p99`` /
``max``), and ``shed``; the ``disabled`` column is the
``EngineConfig(ingest=None)`` ablation — the untouched hand-delivery
path — whose firings must equal the steady no-shed cells exactly.
A second table isolates the wire codec: the same workload through
``LoopbackClient`` with ``codec="wire"`` (serialise → frame → unframe →
parse per event) vs ``codec="object"`` (terms handed over directly).

Emits ``BENCH_e18.json`` (skipped under ``--smoke``); the policy
ablation columns are guarded by ``require_columns``.
"""

import sys
import time

sys.path.insert(0, "benchmarks")
sys.path.insert(0, "tools")
from _harness import (
    parse_cli,
    pick,
    print_table,
    require_columns,
    seeded,
    smoke_mode,
    write_json,
)
from loadgen import LoadGen

from repro import EngineConfig, IngestConfig, Simulation
from repro.core import eca
from repro.core.actions import PyAction
from repro.events import EAtom
from repro.ingest.transport import LoopbackClient
from repro.terms import Var, q

N_EVENTS = 1_000_000
N_CLIENTS = 10_000
PER_TICK = 1_000     # arrivals per tick; dt below makes that 100k ev/s simulated
DT = 0.01
POLICIES = ("reject", "drop-oldest", "spill")
REGIMES = {
    # service capacity = pump_batch / DT vs arrival = PER_TICK / DT
    "steady": {"pump_batch": 1_500, "high_water": 5_000},    # 1.5x arrivals
    "overload": {"pump_batch": 800, "high_water": 2_000},    # 0.8x arrivals
}

NOOP = PyAction(lambda n, b: None, "noop")


def build_node(policy: "str | None", regime: str):
    sim = Simulation(latency=0.0)
    if policy is None:  # the ablation: no gateway at all
        config = EngineConfig()
    else:
        knobs = REGIMES[regime]
        # Smoke shrinks the whole system /100 (arrivals, service, mark),
        # so the overload regime still engages the policies.
        config = EngineConfig(ingest=IngestConfig(
            policy=policy,
            high_water=pick(knobs["high_water"],
                            knobs["high_water"] // 100 or 1),
            pump_batch=pick(knobs["pump_batch"],
                            knobs["pump_batch"] // 100 or 1),
            drain_interval=DT,
        ))
    node = sim.reactive_node("http://sink.example", config=config)
    node.install(eca("count-orders",
                     EAtom(q("order", q("seq", Var("S")))), NOOP))
    return sim, node


def run_once(policy: "str | None", regime: str, n_events: int,
             n_clients: int) -> dict:
    sim, node = build_node(policy, regime)
    gen = LoadGen(n_clients=n_clients)
    if policy is None:
        bare = node.node
        offer = (lambda sender, term, now:
                 bare.deliver(bare.stamp_event(term, source=sender,
                                               sent_at=now)) or True)
    else:
        gateway = node.ingest
        offer = (lambda sender, term, now:
                 gateway.offer(term, sender=sender, sent_at=now))
    gen.schedule(sim.scheduler, offer, events=n_events,
                 per_tick=pick(PER_TICK, PER_TICK // 100 or 1), dt=DT)
    started = time.perf_counter()
    sim.run(max_callbacks=100_000_000)
    elapsed = time.perf_counter() - started
    row = {
        "rate": n_events / elapsed,
        "elapsed": elapsed,
        "offered": gen.offered,
        "firings": node.stats.rule_firings,
    }
    if policy is not None:
        ingest = node.ingest_stats
        # Conservation: everything offered was admitted, shed, or spilled,
        # and everything that survived fired exactly once.
        assert (ingest.admitted + ingest.rejected + ingest.rate_limited
                + ingest.spilled == gen.offered)
        assert ingest.fired == (ingest.admitted - ingest.dropped
                                + ingest.spill_replayed) == row["firings"]
        assert ingest.spill_replayed == ingest.spilled, "spill lost events"
        assert node.ingest.backlog == 0 and node.ingest.spill_backlog == 0
        row.update({
            "p50": ingest.latency.percentile(50.0),
            "p99": ingest.latency.percentile(99.0),
            "max": ingest.latency.max,
            "shed": ingest.shed,
            "dropped": ingest.dropped,
            "spilled": ingest.spilled,
            "backlog_peak": ingest.backlog_peak,
        })
    return row


def codec_table(n_events: int, n_clients: int) -> list[dict]:
    """Wire codec vs object hand-off, same admission configuration."""
    rows = []
    for codec in ("object", "wire"):
        sim, node = build_node("reject", "steady")
        client_cache: dict[str, LoopbackClient] = {}
        gateway = node.ingest

        def offer(sender, term, now, _cache=client_cache, _gw=gateway,
                  _codec=codec):
            client = _cache.get(sender)
            if client is None:
                client = _cache[sender] = LoopbackClient(_gw, sender=sender,
                                                         codec=_codec)
            return client.send(term, sent_at=now)

        gen = LoadGen(n_clients=n_clients)
        gen.schedule(sim.scheduler, offer, events=n_events,
                     per_tick=pick(PER_TICK, PER_TICK // 100 or 1), dt=DT)
        started = time.perf_counter()
        sim.run(max_callbacks=100_000_000)
        elapsed = time.perf_counter() - started
        rows.append({
            "codec": codec,
            "ev/s": n_events / elapsed,
            "fired": node.ingest_stats.fired,
            "malformed": node.ingest_stats.malformed,
        })
    wire_row = next(r for r in rows if r["codec"] == "wire")
    object_row = next(r for r in rows if r["codec"] == "object")
    for row in rows:
        row["wire/object"] = wire_row["ev/s"] / object_row["ev/s"]
    return rows


def table() -> list[dict]:
    n_events = pick(N_EVENTS, 2_000)
    n_clients = pick(N_CLIENTS, 200)
    rows = []
    for regime in REGIMES:
        row = {"regime": regime, "events": n_events, "clients": n_clients}
        for policy in POLICIES:
            result = run_once(policy, regime, n_events, n_clients)
            row[f"{policy} ev/s"] = result["rate"]
            row[f"{policy} p50"] = result["p50"]
            row[f"{policy} p99"] = result["p99"]
            row[f"{policy} max"] = result["max"]
            row[f"{policy} shed"] = result["shed"]
            row[f"{policy} firings"] = result["firings"]
            if policy == "drop-oldest":
                row["dropped"] = result["dropped"]
            if policy == "spill":
                row["spilled"] = result["spilled"]
        disabled = run_once(None, regime, n_events, n_clients)
        row["disabled ev/s"] = disabled["rate"]
        row["disabled firings"] = disabled["firings"]
        rows.append(row)
    columns = tuple(f"{policy} {metric}" for policy in POLICIES
                    for metric in ("ev/s", "p50", "p99", "max", "shed"))
    return require_columns("e18", rows, columns + ("disabled ev/s",))


def check_claims(rows: list[dict]) -> None:
    """The acceptance claims, asserted on real (non-smoke) sizes."""
    steady = next(r for r in rows if r["regime"] == "steady")
    overload = next(r for r in rows if r["regime"] == "overload")
    service_quantum = DT  # one drain interval
    # The simulated clock accumulates DT-sized float ticks, so a latency
    # of exactly two quanta can sit a few ulps above 2*DT.
    eps = 1e-9
    # Steady state: nothing shed, and the gateway is behaviourally
    # invisible — every policy fires exactly what hand delivery fires.
    for policy in POLICIES:
        assert steady[f"{policy} shed"] == 0, f"steady {policy} shed events"
        assert steady[f"{policy} firings"] == steady["disabled firings"]
        assert steady[f"{policy} p99"] <= 2 * service_quantum + eps
    # Overload: reject and drop-oldest bound the queue, so p99 stays
    # within a few high-water marks' worth of service time regardless of
    # run length (the x10 headroom covers the weighted-fair tail: a hot
    # sender's own queue drains at its fair share, not the full pump
    # rate); drop-oldest actually dropped; spill shed nothing but paid
    # in a latency max that grows with the backlog parked on disk.
    queue_bound = (REGIMES["overload"]["high_water"]
                   / (REGIMES["overload"]["pump_batch"] / DT))
    for policy in ("reject", "drop-oldest"):
        assert overload[f"{policy} shed"] > 0
        assert overload[f"{policy} p99"] <= 10 * queue_bound + eps, (
            f"{policy} p99 {overload[f'{policy} p99']} not bounded by the "
            f"high-water queue ({queue_bound}s of service)")
    assert overload["dropped"] > 0
    assert overload["spill shed"] == 0
    assert overload["spilled"] > 0
    assert overload["spill max"] > overload["reject max"]


def test_e18_policies_diverge_under_overload():
    # 20k events at 0.8x capacity: the backlog crosses the 2000-event
    # high-water mark around tick 10 and the policies start to diverge.
    reject = run_once("reject", "overload", 20_000, 200)
    drop = run_once("drop-oldest", "overload", 20_000, 200)
    spill = run_once("spill", "overload", 20_000, 200)
    assert reject["shed"] > 0 and drop["dropped"] > 0
    assert spill["shed"] == 0 and spill["spilled"] > 0
    assert spill["firings"] == 20_000         # spill keeps everything
    assert reject["firings"] < 20_000         # reject sheds arrivals
    # Completeness costs queueing: spilled events sit out the overload on
    # disk, so even the median waits, while reject's median fires at once.
    assert spill["p50"] > reject["p50"]


def test_e18_disabled_matches_hand_delivery():
    gated = run_once("reject", "steady", 2_000, 100)
    disabled = run_once(None, "steady", 2_000, 100)
    assert gated["shed"] == 0
    assert gated["firings"] == disabled["firings"] == 2_000


def test_e18_ingestion_throughput(benchmark):
    benchmark(lambda: run_once("reject", "overload", 2_000, 200))


def main() -> None:
    parse_cli()
    rows = table()
    n_events = pick(N_EVENTS, 2_000)
    print_table(
        f"E18 — ingestion under load: overflow policies at steady vs "
        f"overload arrivals ({n_events} events, "
        f"{pick(N_CLIENTS, 200)} clients, latencies in simulated s)",
        rows,
        "reject/drop-oldest bound p99 enqueue-to-fire latency by shedding; "
        "spill sheds nothing and pays in worst-case latency; at steady "
        "state every policy is invisible (firings == hand delivery)",
    )
    codec_rows = codec_table(pick(100_000, 1_000), pick(N_CLIENTS, 200))
    print_table(
        "E18b — wire codec cost (serialise/frame/parse per event vs "
        "object hand-off)",
        codec_rows,
        "the full wire round-trip stays within an order of magnitude of "
        "the in-process path",
    )
    if not smoke_mode():
        check_claims(rows)
        assert codec_rows[0]["fired"] == codec_rows[1]["fired"]
    path = write_json("BENCH_e18.json", {
        "experiment": "e18_ingestion",
        "n_events": N_EVENTS,
        "n_clients": N_CLIENTS,
        "per_tick": PER_TICK,
        "dt": DT,
        "policies": list(POLICIES),
        "regimes": {name: dict(knobs) for name, knobs in REGIMES.items()},
        "rows": rows,
        "codec_rows": codec_rows,
    })
    print(f"\nwrote {path}" if path else "\n(smoke mode: no JSON written)")


if __name__ == "__main__":
    main()

"""E8 (Thesis 8): compound actions — sequences with atomicity, alternatives.

Paper claim: complex reactions are compounds of primitive actions; the most
common compound is the sequence, and alternatives are needed too.  Measured:
consistency under failure injection (atomic sequences never leave partial
state; non-atomic ones do) and the cost of transactional protection.
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, seeded

from repro.core import ReactiveEngine
from repro.core.actions import Alternative, PyAction, Sequence, Update
from repro.errors import ActionError
from repro.terms import Bindings, parse_construct, parse_data, parse_query
from repro.web import Simulation

URI = "http://n.example/ledger"


def _setup():
    sim = Simulation(latency=0.0)
    node = sim.node("http://n.example")
    node.put(URI, parse_data("ledger{ debit[0], credit[0] }"))
    return node, ReactiveEngine(node)


def _transfer(fail: bool) -> Sequence:
    steps = [
        Update(URI, "replace", parse_query("debit[var D]"),
               parse_construct("debit[add(var D, 1)]")),
        Update(URI, "replace", parse_query("credit[var C]"),
               parse_construct("credit[add(var C, 1)]")),
    ]
    if fail:
        steps.insert(1, PyAction(
            lambda n, b: (_ for _ in ()).throw(ActionError("injected")), "inject"))
    return steps


def run_consistency(atomic: bool, operations: int = 200, failure_rate: float = 0.3,
                    seed: int = 23) -> dict:
    node, engine = _setup()
    rng = seeded(seed)
    inconsistent = 0
    failures = 0
    for _ in range(operations):
        fail = rng.random() < failure_rate
        action = Sequence(*_transfer(fail), atomic=atomic)
        try:
            engine.execute(action, Bindings())
        except ActionError:
            failures += 1
        ledger = node.get(URI)
        if ledger.first("debit").value != ledger.first("credit").value:
            inconsistent += 1
    return {
        "mode": "atomic" if atomic else "non-atomic",
        "operations": operations,
        "injected failures": failures,
        "inconsistent states seen": inconsistent,
        "rollbacks": engine.stats.rollbacks,
    }


def run_overhead(atomic: bool, operations: int = 300) -> float:
    node, engine = _setup()
    action = Sequence(*_transfer(False), atomic=atomic)
    started = time.perf_counter()
    for _ in range(operations):
        engine.execute(action, Bindings())
    return (time.perf_counter() - started) / operations * 1e6


def run_alternatives(seed: int = 9, operations: int = 100) -> dict:
    node, engine = _setup()
    rng = seeded(seed)
    fallbacks = 0

    def flaky(n, b):
        if rng.random() < 0.5:
            raise ActionError("primary failed")

    def fallback(n, b):
        nonlocal fallbacks
        fallbacks += 1

    action = Alternative(PyAction(flaky, "primary"), PyAction(fallback, "fallback"))
    for _ in range(operations):
        engine.execute(action, Bindings())
    return {"mode": "alternative", "operations": operations,
            "injected failures": fallbacks, "inconsistent states seen": 0,
            "rollbacks": 0}


def table() -> list[dict]:
    operations = pick(200, 15)
    overhead_ops = pick(300, 15)
    rows = [run_consistency(True, operations), run_consistency(False, operations),
            run_alternatives(operations=pick(100, 10))]
    rows.append({
        "mode": f"atomicity overhead: {run_overhead(True, overhead_ops):.1f} vs "
                f"{run_overhead(False, overhead_ops):.1f} us/op",
        "operations": "-", "injected failures": "-",
        "inconsistent states seen": "-", "rollbacks": "-",
    })
    return rows


def test_e08_atomic_never_inconsistent(benchmark):
    row = benchmark(run_consistency, True, 50)
    assert row["inconsistent states seen"] == 0
    assert row["rollbacks"] == row["injected failures"] > 0


def test_e08_nonatomic_leaks_partial_state():
    row = run_consistency(False, 50)
    assert row["inconsistent states seen"] > 0


def test_e08_alternative_absorbs_failures():
    row = run_alternatives()
    assert row["injected failures"] > 0  # fallbacks taken, none escaped


def main() -> None:
    parse_cli()
    print_table(
        "E8 — compound actions under failure injection (30% failure rate)",
        table(),
        "atomic sequences keep persistent state consistent (all-or-nothing); "
        "alternatives absorb failures; atomicity costs little",
    )


if __name__ == "__main__":
    main()

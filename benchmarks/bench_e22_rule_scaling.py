"""E22: rule-base scaling — the discrimination trie at 100k rules.

E15's two-level net discriminates one axis per label.  A hot label whose
rules pin *two* axes — an attribute constant and a constant child — still
collapses: 100k ``stock`` rules over ~316 symbols and ~316 venues leave
~316 rules per symbol bucket, and every one is probed per event.  The
multi-level trie (PR 10) recurses: within the ``sym`` bucket it splits
again on the ``venue`` child, so candidates per event stay ~1 at any
rule count.

Workload: *N* rules on one hot label, rule *i* pinning ``sym`` attribute
``S-(i mod s)`` and constant ``venue[...]`` child ``V-(i div s mod s)``
with ``s = isqrt(N)`` — both axes carry √N distinct values, so one axis
alone narrows an event to ~√N candidates and only the second axis gets
to ~1.  The stream cycles through the rules; every event is relevant to
exactly one.  Modes:

- ``trie`` — the multi-level trie (the default config);
- ``twolevel`` — ``EngineConfig(trie_depth=1)``, E15's two-level net:
  one split, ~√N candidates per event;
- ``rootlabel`` — ``EngineConfig(discriminating_index=False)``: the
  whole bucket, N candidates per event.

Headline claims: **ev/s stays flat** for the trie from 100 to 100k rules
(<= 2x degradation) while the ablations collapse in the same grid, and
**per-install latency is amortised O(trie depth)**, not O(rules) — the
incremental install edit (``install_ms_trie``) stays flat while a
rebuild-per-install policy (``install_ms_rebuild``, one full
:meth:`refresh`) grows linearly with the base.

Slow modes get proportionally shorter streams (rates normalise this);
``firings == events`` is asserted per mode so the ablations can never
drift semantically.  Emits ``BENCH_e22.json`` for CI tracking (skipped
under ``--smoke``).
"""

import math
import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, require_columns, smoke_mode, write_json

from repro.core import EngineConfig, ReactiveEngine, eca
from repro.core.actions import PyAction
from repro.events import EAtom
from repro.events.model import make_event
from repro.terms import Data, Var, q
from repro.web import Simulation

RULE_GRID = (100, 1_000, 10_000, 100_000)
LABEL = "stock"
# Per-mode candidate-probe budget: slow modes run shorter streams so the
# 100k root-label point stays minutes-not-hours while ev/s stays honest.
PROBE_BUDGET = 1_500_000
MAX_EVENTS = 1_500
N_PROBE_INSTALLS = 50

NOOP = PyAction(lambda n, b: None, "noop")


def grid_side(n_rules: int) -> int:
    """Ceiling sqrt: side*side >= n_rules, so every rule's (sym, venue)
    pair is unique and each event answers exactly one rule."""
    return max(1, math.isqrt(max(0, n_rules - 1)) + 1)


MODES = {
    "trie": EngineConfig(),
    "twolevel": EngineConfig(trie_depth=1),
    "rootlabel": EngineConfig(discriminating_index=False),
}


def rule_for(i: int, side: int):
    """Rule *i*: constant ``sym`` attribute x constant ``venue`` child."""
    return eca(
        f"r{i}",
        EAtom(q(LABEL,
                q("venue", f"V-{(i // side) % side}"),
                q("px", Var("P")),
                sym=f"S-{i % side}")),
        NOOP,
    )


def event_term(i: int, n_rules: int, side: int) -> Data:
    target = i % n_rules
    return Data(
        LABEL,
        (Data("venue", (f"V-{(target // side) % side}",)),
         Data("px", (float(i),))),
        False,
        (("sym", f"S-{target % side}"),),
    )


def build_engine(n_rules: int, mode: str) -> ReactiveEngine:
    sim = Simulation(latency=0.0)
    node = sim.node("http://bench.example")
    engine = ReactiveEngine(node, config=MODES[mode])
    side = grid_side(n_rules)
    engine.install_all(rule_for(i, side) for i in range(n_rules))
    return engine


def events_for(mode: str, n_rules: int) -> int:
    expected_candidates = {
        "trie": 1,
        "twolevel": max(1, math.isqrt(n_rules)),
        "rootlabel": n_rules,
    }[mode]
    return max(30, min(MAX_EVENTS, PROBE_BUDGET // expected_candidates))


def run_once(n_rules: int, mode: str, n_events: int) -> dict:
    engine = build_engine(n_rules, mode)
    side = grid_side(n_rules)
    stream = [
        make_event(event_term(i, n_rules, side), float(i))
        for i in range(n_events)
    ]
    started = time.perf_counter()
    for event in stream:
        engine.handle_event(event)
    elapsed = time.perf_counter() - started
    stats = engine.stats
    assert stats.rule_firings == n_events, (
        f"{mode} at {n_rules} rules fired {stats.rule_firings} != {n_events}"
    )
    return {
        "rate": n_events / elapsed,
        "candidates_per_event": stats.candidates_considered / n_events,
    }


def install_latencies(n_rules: int) -> "tuple[float, float]":
    """(incremental install ms, full-rebuild ms) on an N-rule engine.

    The incremental figure installs probe rules one at a time through the
    O(depth) trie edit and averages; the rebuild figure times a single
    :meth:`refresh` — what every install would cost under a
    rebuild-per-change policy.
    """
    engine = build_engine(n_rules, "trie")
    side = grid_side(n_rules)
    probes = [rule_for(n_rules + j, side) for j in range(N_PROBE_INSTALLS)]
    started = time.perf_counter()
    for probe in probes:
        engine.install(probe)
    install_ms = (time.perf_counter() - started) * 1000.0 / len(probes)
    started = time.perf_counter()
    engine.refresh()
    rebuild_ms = (time.perf_counter() - started) * 1000.0
    return install_ms, rebuild_ms


def table() -> list[dict]:
    rows = []
    for n_rules in pick(RULE_GRID, (16, 64)):
        results = {
            mode: run_once(mode=mode, n_rules=n_rules,
                           n_events=pick(events_for(mode, n_rules), 30))
            for mode in MODES
        }
        install_ms, rebuild_ms = install_latencies(n_rules)
        rows.append({
            "rules": n_rules,
            "trie cand/ev": results["trie"]["candidates_per_event"],
            "twolevel cand/ev": results["twolevel"]["candidates_per_event"],
            "rootlabel cand/ev": results["rootlabel"]["candidates_per_event"],
            "evps_trie": results["trie"]["rate"],
            "evps_twolevel": results["twolevel"]["rate"],
            "evps_rootlabel": results["rootlabel"]["rate"],
            "install_ms_trie": install_ms,
            "install_ms_rebuild": rebuild_ms,
        })
    return require_columns(
        "e22", rows,
        ("evps_trie", "evps_twolevel", "evps_rootlabel",
         "install_ms_trie", "install_ms_rebuild"),
    )


def test_e22_trie_keeps_candidates_flat():
    small = run_once(100, "trie", 200)
    large = run_once(2_500, "trie", 200)
    assert small["candidates_per_event"] <= 2.0
    assert large["candidates_per_event"] <= 2.0
    # The two-level net degrades to ~sqrt(N) on the same base.
    twolevel = run_once(2_500, "twolevel", 200)
    assert twolevel["candidates_per_event"] >= 10 * large["candidates_per_event"]


def test_e22_incremental_install_beats_rebuild():
    install_ms, rebuild_ms = install_latencies(5_000)
    assert install_ms < rebuild_ms / 10


def test_e22_dispatch_throughput(benchmark):
    n_rules = 2_500
    side = grid_side(n_rules)
    stream = [
        make_event(event_term(i, n_rules, side), float(i)) for i in range(500)
    ]
    engine = build_engine(n_rules, "trie")

    def run():
        for event in stream:
            engine.handle_event(event)

    benchmark(run)


def main() -> None:
    parse_cli()
    rows = table()
    print_table(
        "E22 — rule-base scaling, one hot label, sym x venue axes",
        rows,
        "trie ev/s flat 100 -> 100k rules (<= 2x) while two-level decays "
        "~sqrt(N) and root-label decays ~N; incremental installs stay "
        "O(depth) while rebuild-per-install grows with the base",
    )
    path = write_json("BENCH_e22.json", {
        "experiment": "e22_rule_scaling",
        "label": LABEL,
        "probe_budget": PROBE_BUDGET,
        "probe_installs": N_PROBE_INSTALLS,
        "rows": rows,
    })
    print(f"\nwrote {path}" if path else "\n(smoke mode: no JSON written)")
    if not smoke_mode():
        first, last = rows[0], rows[-1]
        assert last["evps_trie"] >= first["evps_trie"] / 2.0, (
            "trie throughput must not degrade more than 2x from "
            f"{first['rules']} to {last['rules']} rules"
        )
        assert last["install_ms_trie"] < last["install_ms_rebuild"] / 10, (
            "incremental installs must stay far below a full rebuild "
            "at the top of the grid"
        )


if __name__ == "__main__":
    main()

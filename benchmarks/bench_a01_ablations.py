"""A1 (ablations): design choices DESIGN.md calls out, measured.

Two internal design decisions with measurable alternatives:

1. **Semi-naive vs restart evaluation of deductive views.**  Our
   ``forward_chain`` iterates with a delta (new derivations must use at
   least one new fact).  The ablation re-runs full evaluation until
   fixpoint instead.  Workload: transitive closure of a path graph.
2. **Canonical-form memoisation.**  Unordered-term equality and fact
   deduplication go through ``canonical_str``, which is memoised on the
   immutable term.  The ablation clears the memo before every call (the
   pre-optimisation behaviour).  Workload: deduplicating permuted copies
   of a bulky unordered term.
"""

import sys
import time

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table, seeded

from repro.deductive import DeductiveRule, Match, Program, TermBase, forward_chain
from repro.deductive.evaluation import _solve_goals, _derive
from repro.terms import Var, c, canonical_str, d, parse_query, u
from repro.terms.ast import Data


# -- ablation 1: semi-naive vs restart ---------------------------------------

PATH_RULES = Program([
    DeductiveRule(
        c("path", c("src", Var("X")), c("dst", Var("Y"))),
        (Match(parse_query("edge{{ src[var X], dst[var Y] }}")),),
    ),
    DeductiveRule(
        c("path", c("src", Var("X")), c("dst", Var("Z"))),
        (
            Match(parse_query("edge{{ src[var X], dst[var Y] }}")),
            Match(parse_query("path{{ src[var Y], dst[var Z] }}")),
        ),
    ),
])


def chain_base(n: int) -> TermBase:
    return TermBase(
        u("edge", d("src", f"v{i}"), d("dst", f"v{i + 1}")) for i in range(n)
    )


def restart_chain(program: Program, base: TermBase) -> TermBase:
    """The ablation: full re-evaluation of every rule until fixpoint."""
    derived = base.copy()
    changed = True
    while changed:
        changed = False
        for stratum in program.strata():
            for rule in stratum:
                from repro.terms.ast import Bindings

                for bindings in _solve_goals(rule.body, 0, Bindings(), derived,
                                             None, -1):
                    if derived.add(_derive(rule, bindings)):
                        changed = True
    return derived


def run_chaining(n: int) -> dict:
    base = chain_base(n)
    started = time.perf_counter()
    seminaive = forward_chain(PATH_RULES, base)
    seminaive_ms = (time.perf_counter() - started) * 1e3
    started = time.perf_counter()
    restart = restart_chain(PATH_RULES, base)
    restart_ms = (time.perf_counter() - started) * 1e3
    assert len(seminaive) == len(restart)  # same fixpoint
    return {
        "ablation": f"chaining, {n}-edge chain",
        "optimised ms": seminaive_ms,
        "ablated ms": restart_ms,
        "speedup": restart_ms / seminaive_ms,
    }


# -- ablation 2: canonical-form memoisation ------------------------------------


def bulky_term(rng, width: int) -> Data:
    children = [u("row", *(rng.randrange(100) for _ in range(8)))
                for _ in range(width)]
    rng.shuffle(children)
    return u("doc", *children)


def run_canonical(width: int, repeats: int = 200) -> dict:
    rng = seeded(7)
    terms = [bulky_term(rng, width) for _ in range(repeats)]

    def clear_memo(term: Data) -> None:
        term.__dict__.pop("_canonical_str", None)
        for child in term.children:
            if isinstance(child, Data):
                clear_memo(child)

    uses = 5  # dedup and unordered comparison revisit the same instance
    started = time.perf_counter()
    for term in terms:
        for _ in range(uses):
            canonical_str(term)
    memo_ms = (time.perf_counter() - started) * 1e3

    started = time.perf_counter()
    for term in terms:
        for _ in range(uses):
            clear_memo(term)
            canonical_str(term)
    ablated_ms = (time.perf_counter() - started) * 1e3
    return {
        "ablation": f"canonical_str, width {width}",
        "optimised ms": memo_ms,
        "ablated ms": ablated_ms,
        "speedup": ablated_ms / memo_ms,
    }


def table() -> list[dict]:
    chain_sizes = pick((30, 60), (6, 10))
    canon_sizes = pick((20, 60), (4, 8))
    repeats = pick(200, 5)
    return (
        [run_chaining(n) for n in chain_sizes]
        + [run_canonical(w, repeats=repeats) for w in canon_sizes]
    )


def test_a01_seminaive_faster(benchmark):
    row = benchmark(run_chaining, 30)
    assert row["speedup"] > 1.0


def test_a01_same_fixpoint():
    base = chain_base(15)
    assert len(forward_chain(PATH_RULES, base)) == len(restart_chain(PATH_RULES, base))


def test_a01_memoisation_pays():
    row = run_canonical(30, repeats=50)
    assert row["speedup"] > 1.5


def main() -> None:
    parse_cli()
    print_table(
        "A1 — ablations of internal design choices",
        table(),
        "semi-naive deltas and canonical-form memoisation both carry their "
        "weight on closure-heavy workloads",
    )


if __name__ == "__main__":
    main()

"""E2 (Thesis 2): local rule processing vs a central rule processor.

Paper claim: rules should be processed locally at each site, with global
behaviour through event messages (choreography); a central processing
entity does not fit the Web's distributed, loosely coupled architecture.
Measured: total messages and the hotspot load (messages handled by the
busiest node) for a k-node event ring, direct vs relayed through a broker.
"""

import sys

sys.path.insert(0, "benchmarks")
from _harness import parse_cli, pick, print_table

from repro.core import ReactiveEngine, eca
from repro.core.actions import Raise
from repro.events.queries import EAtom
from repro.terms import parse_construct, parse_data, parse_query
from repro.web import Simulation


def run_ring(k: int, rounds: int, broker: bool) -> dict:
    sim = Simulation(latency=0.01,
                     broker="http://hub.example" if broker else None)
    if broker:
        hub = sim.node("http://hub.example")
    nodes = [sim.node(f"http://n{i}.example") for i in range(k)]
    limit = rounds * k
    from repro.core.conditions import CompareCond
    from repro.terms.ast import Var

    for i, node in enumerate(nodes):
        nxt = nodes[(i + 1) % k].uri
        engine = ReactiveEngine(node)
        engine.install(eca(
            f"forward-{i}",
            EAtom(parse_query("token{{ hops[var H] }}")),
            Raise(nxt, parse_construct("token{ hops[add(var H, 1)] }")),
            if_=CompareCond(Var("H"), "<", limit),
        ))
    nodes[-1].raise_event(nodes[0].uri, parse_data("token{ hops[1] }"))
    sim.run(max_callbacks=200_000)
    hotspot_uri, hotspot_load = sim.stats.hotspot()
    return {
        "nodes": k,
        "topology": "central broker" if broker else "choreography",
        "messages": sim.stats.messages,
        "hotspot load": hotspot_load,
        "hotspot": hotspot_uri.replace("http://", ""),
    }


def table() -> list[dict]:
    rows = []
    for k in pick((4, 8, 16), (3, 4)):
        rounds = pick(5, 2)
        rows.append(run_ring(k, rounds=rounds, broker=False))
        rows.append(run_ring(k, rounds=rounds, broker=True))
    return rows


def test_e02_broker_doubles_traffic(benchmark):
    direct = benchmark(run_ring, 8, 5, False)
    brokered = run_ring(8, 5, True)
    assert brokered["messages"] == 2 * direct["messages"]


def test_e02_hotspot_concentration():
    direct = run_ring(8, 5, False)
    brokered = run_ring(8, 5, True)
    # Choreography spreads load evenly; the broker handles every message.
    assert brokered["hotspot load"] >= 4 * direct["hotspot load"]
    assert brokered["hotspot"] == "hub.example"


def main() -> None:
    parse_cli()
    print_table(
        "E2 — choreography vs central broker (5 ring laps)",
        table(),
        "central processing doubles traffic and concentrates it on one node; "
        "local processing spreads it evenly",
    )


if __name__ == "__main__":
    main()

"""Per-node inbox delivery: queueing, drains, batching, and edge cases.

Events are delivered through a FIFO inbox drained by the scheduler (see the
delivery model in :mod:`repro.web.node`): these tests pin the ordering,
timing, batching, and backpressure-accounting guarantees the engine and the
E14 experiment rely on.
"""

import pytest

from repro.core import EngineConfig, PyAction, ReactiveEngine, eca
from repro.errors import WebError
from repro.events.queries import EAtom
from repro.terms import d, parse_data, parse_query, q
from repro.web import Scheduler, Simulation


class TestQueuedDelivery:
    def test_raise_local_is_queued_until_run(self):
        sim = Simulation(latency=0.0)
        node = sim.node("http://a.example")
        seen = []
        node.on_event(lambda e: seen.append(e.term.label))
        node.raise_local(d("ping"))
        assert seen == []  # enqueued, not dispatched on the caller's stack
        assert node.inbox_depth == 1
        sim.run()
        assert seen == ["ping"]
        assert node.inbox_depth == 0

    def test_drain_keeps_arrival_timestamp(self):
        # The drain runs at the enqueue instant: handlers observe the same
        # simulated time as inline dispatch did.
        sim = Simulation(latency=0.25)
        a = sim.node("http://a.example")
        b = sim.node("http://b.example")
        arrivals = []
        b.on_event(lambda e: arrivals.append((sim.now, e.time)))
        a.raise_event("http://b.example", d("ping"))
        sim.run()
        assert arrivals == [(0.25, 0.25)]

    def test_same_instant_fifo_within_node(self):
        sim = Simulation(latency=0.0)
        node = sim.node("http://a.example")
        seen = []
        node.on_event(lambda e: seen.append(e.term.label))
        for label in ("first", "second", "third"):
            node.raise_local(d(label))
        sim.run()
        assert seen == ["first", "second", "third"]

    def test_same_instant_ordering_across_nodes(self):
        # Each node drains its own inbox in arrival order; a node's whole
        # same-instant backlog drains in one callback, so the cross-node
        # interleave follows the first arrival per node.
        sim = Simulation(latency=0.0)
        a = sim.node("http://a.example")
        b = sim.node("http://b.example")
        seen = []
        a.on_event(lambda e: seen.append(("a", e.term.label)))
        b.on_event(lambda e: seen.append(("b", e.term.label)))
        a.raise_local(d("a1"))
        b.raise_local(d("b1"))
        a.raise_local(d("a2"))
        sim.run()
        assert seen == [("a", "a1"), ("a", "a2"), ("b", "b1")]

    def test_event_raised_by_handler_processed_after_current(self):
        # Breadth-first, not recursive: the nested event drains after the
        # current event's handlers have all finished.
        sim = Simulation(latency=0.0)
        node = sim.node("http://a.example")
        seen = []

        def first_handler(event):
            if event.term.label == "outer":
                node.raise_local(d("inner"))
            seen.append(("h1", event.term.label))

        node.on_event(first_handler)
        node.on_event(lambda e: seen.append(("h2", e.term.label)))
        node.raise_local(d("outer"))
        sim.run()
        assert seen == [("h1", "outer"), ("h2", "outer"),
                        ("h1", "inner"), ("h2", "inner")]

    def test_network_inbox_backlog_aggregates_nodes(self):
        sim = Simulation(latency=0.0)
        a = sim.node("http://a.example")
        b = sim.node("http://b.example")
        a.on_event(lambda e: None)
        b.on_event(lambda e: None)
        a.raise_local(d("x"))
        a.raise_local(d("y"))
        b.raise_local(d("z"))
        assert sim.network.inbox_backlog() == 3
        sim.run()
        assert sim.network.inbox_backlog() == 0

    def test_sent_at_zero_occurrence_regression(self):
        # An event sent at t=0.0 occurred at t=0.0 — the old falsy check
        # (`if envelope.sent_at`) stamped it with the arrival time instead.
        sim = Simulation(latency=0.25)
        a = sim.node("http://a.example")
        b = sim.node("http://b.example")
        occurrences = []
        b.on_event(lambda e: occurrences.append(e.occurrence))
        a.raise_event("http://b.example", d("ping"))  # sent at t=0.0
        sim.run()
        assert occurrences == [0.0]


class TestDrainBoundaries:
    def test_drain_inside_run_until_boundary(self):
        # Delivery lands exactly at the run_until horizon: the drain is
        # scheduled at that same instant and still runs inside the call.
        sim = Simulation(latency=0.5)
        a = sim.node("http://a.example")
        b = sim.node("http://b.example")
        seen = []
        b.on_event(lambda e: seen.append(sim.now))
        a.raise_event("http://b.example", d("ping"))
        sim.run_until(0.5)
        assert seen == [0.5]

    def test_raise_after_run_until_waits_for_next_run(self):
        sim = Simulation(latency=0.0)
        node = sim.node("http://a.example")
        seen = []
        node.on_event(lambda e: seen.append(sim.now))
        sim.run_until(3.0)
        node.raise_local(d("late"))
        assert seen == []
        sim.run_until(3.0)  # time does not advance; the drain still runs
        assert seen == [3.0]


class TestBatching:
    def test_batch_splits_backlog_at_same_instant(self):
        sim = Simulation(latency=0.0)
        node = sim.node("http://a.example")
        node.configure_delivery(inbox_batch=2)
        seen = []
        node.on_event(lambda e: seen.append(e.term.label))
        for i in range(5):
            node.raise_local(d(f"e{i}"))
        sim.run()
        # FIFO order survives the re-scheduled drains, all at t=0.
        assert seen == [f"e{i}" for i in range(5)]
        assert node.inbox_drains == 3  # 2 + 2 + 1
        assert sim.now == 0.0

    def test_handler_exception_does_not_strand_backlog(self):
        sim = Simulation(latency=0.0)
        node = sim.node("http://a.example")
        seen = []

        def handler(event):
            if event.term.label == "boom":
                raise RuntimeError("handler failure")
            seen.append(event.term.label)

        node.on_event(handler)
        node.raise_local(d("boom"))
        node.raise_local(d("ok"))
        with pytest.raises(RuntimeError):
            sim.run()
        sim.run()  # the drain re-scheduled itself: the backlog still drains
        assert seen == ["ok"]
        assert node.inbox_depth == 0

    def test_bad_batch_rejected(self):
        sim = Simulation(latency=0.0)
        node = sim.node("http://a.example")
        with pytest.raises(WebError):
            node.configure_delivery(inbox_batch=0)

    def test_backpressure_stats(self):
        sim = Simulation(latency=0.0)
        reactive = sim.reactive_node("http://a.example",
                                     config=EngineConfig(inbox_batch=1))
        reactive.install('RULE r ON go{{}} DO PUT "http://a.example/out" out{}')
        for _ in range(4):
            reactive.raise_local("go{}")
        assert reactive.stats.inbox_depth == 4
        assert reactive.stats.inbox_peak == 4
        sim.run()
        assert reactive.stats.inbox_depth == 0
        assert reactive.stats.inbox_peak == 4


class TestSyncAblation:
    def test_sync_delivery_dispatches_inline(self):
        sim = Simulation(latency=0.0)
        node = sim.node("http://a.example")
        node.configure_delivery(sync_delivery=True)
        seen = []
        node.on_event(lambda e: seen.append(e.term.label))
        node.raise_local(d("ping"))
        assert seen == ["ping"]  # no scheduler involvement

    def test_engine_config_applies_to_node(self):
        sim = Simulation(latency=0.0)
        reactive = sim.reactive_node("http://a.example",
                                     config=EngineConfig(sync_delivery=True))
        hits = []
        reactive.engine.install(eca("r", EAtom(parse_query("go")),
                                    PyAction(lambda n, b: hits.append(1))))
        reactive.raise_local("go{}")
        assert hits == [1]

    def test_default_engine_config_leaves_node_delivery_alone(self):
        sim = Simulation(latency=0.0)
        node = sim.node("http://a.example")
        node.configure_delivery(sync_delivery=True, inbox_batch=4)
        ReactiveEngine(node)  # default EngineConfig: both fields unset
        assert node.sync_delivery is True
        assert node.inbox_batch == 4

    def test_sync_switch_cannot_jump_queued_backlog(self):
        # Turning sync delivery on while events are queued must not let a
        # later inline event overtake them: it lines up behind the backlog.
        sim = Simulation(latency=0.0)
        node = sim.node("http://a.example")
        seen = []
        node.on_event(lambda e: seen.append(e.term.label))
        node.raise_local(d("first"))
        node.configure_delivery(sync_delivery=True)
        node.raise_local(d("second"))
        assert seen == []  # second queued behind first, not dispatched inline
        sim.run()
        assert seen == ["first", "second"]

    def test_sync_and_queued_same_firings(self):
        results = []
        for sync in (False, True):
            sim = Simulation(latency=0.0)
            node = sim.node("http://a.example")
            engine = ReactiveEngine(node,
                                    config=EngineConfig(sync_delivery=sync))
            engine.install(eca("r", EAtom(parse_query("go{{}}")),
                               PyAction(lambda n, b: None)))
            for _ in range(7):
                node.raise_local(parse_data("go{}"))
            sim.run()
            results.append(engine.stats.rule_firings)
        assert results[0] == results[1] == 7


class TestMidDrainInstall:
    def test_handler_installs_rule_mid_drain(self):
        # Two same-instant events; the first one's action installs a rule
        # matching the second.  The index rebuild happens mid-drain and the
        # new rule must see the later event.
        sim = Simulation(latency=0.0)
        node = sim.node("http://a.example")
        engine = ReactiveEngine(node)
        lates = []
        late_rule = eca("late", EAtom(q("second")),
                        PyAction(lambda n, b: lates.append(sim.now), "rec"))
        engine.install(eca("installer", EAtom(q("first")),
                           PyAction(lambda n, b: engine.install(late_rule), "ins")))
        node.raise_local(d("first"))
        node.raise_local(d("second"))
        sim.run()
        assert lates == [0.0]

    def test_handler_uninstalls_rule_mid_drain(self):
        sim = Simulation(latency=0.0)
        node = sim.node("http://a.example")
        engine = ReactiveEngine(node)
        hits = []
        engine.install(eca("victim", EAtom(q("second")),
                           PyAction(lambda n, b: hits.append(1))))
        engine.install(eca("remover", EAtom(q("first")),
                           PyAction(lambda n, b: engine.uninstall("victim"))))
        node.raise_local(d("first"))
        node.raise_local(d("second"))
        sim.run()
        assert hits == []  # uninstalled before the second event drained


class TestEveryUntil:
    def test_final_tick_exactly_at_until(self):
        scheduler = Scheduler()
        ticks = []
        scheduler.every(1.0, lambda: ticks.append(scheduler.now), until=4.0)
        scheduler.run()
        # The tick at t=4.0 is not past the bound; t=5.0 is suppressed.
        assert ticks == [1.0, 2.0, 3.0, 4.0]

    def test_no_tick_at_all_when_until_precedes_first(self):
        scheduler = Scheduler()
        ticks = []
        scheduler.every(2.0, lambda: ticks.append(scheduler.now), until=1.0)
        scheduler.run()
        assert ticks == []

    def test_soon_runs_after_queued_same_instant_callbacks(self):
        scheduler = Scheduler()
        order = []
        scheduler.at(0.0, lambda: order.append("queued"))
        scheduler.soon(lambda: order.append("soon"))
        scheduler.run()
        assert order == ["queued", "soon"]
        assert scheduler.now == 0.0

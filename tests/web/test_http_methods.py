"""The full HTTP method set on WebNode, and message-id scoping.

PR 6 satellites: ``put``/``delete`` complete the uniform interface next
to ``get``/``post``, ``handle_request`` maps whole
:class:`~repro.web.http.Request` values onto the node's primitives, and
envelope message ids are allocated per :class:`Simulation` so one
simulation's traffic cannot shift another's ids.
"""

import pytest

from repro.errors import ResourceNotFound, WebError
from repro.web import Request, Simulation
from repro.web.http import (
    BAD_REQUEST,
    CREATED,
    FORBIDDEN,
    NO_CONTENT,
    NOT_FOUND,
    OK,
)
from repro.terms import parse_data
from repro.web.soap import Envelope, reset_message_ids


class TestPutDelete:
    def test_put_then_delete_local_resource(self):
        sim = Simulation()
        node = sim.node("http://a.example")
        node.put("http://a.example/doc", parse_data("doc{ v[1] }"))
        assert node.get("http://a.example/doc").first("v").value == 1
        node.delete("http://a.example/doc")
        with pytest.raises(ResourceNotFound):
            node.get("http://a.example/doc")

    def test_remote_delete_refused(self):
        sim = Simulation()
        node = sim.node("http://a.example")
        sim.node("http://b.example")
        with pytest.raises(WebError):
            node.delete("http://b.example/doc")

    def test_delete_missing_raises(self):
        sim = Simulation()
        node = sim.node("http://a.example")
        with pytest.raises(ResourceNotFound):
            node.delete("http://a.example/ghost")

    def test_post_travels_as_an_event(self):
        sim = Simulation()
        a = sim.node("http://a.example")
        b = sim.node("http://b.example")
        seen = []
        b.on_event(seen.append)
        a.post("http://b.example/orders", parse_data("order{ seq[1] }"))
        sim.run()
        assert len(seen) == 1
        assert seen[0].source == "http://a.example"

    def test_facade_delete(self):
        sim = Simulation()
        node = sim.reactive_node("http://a.example")
        node.put("http://a.example/doc", "doc{ }")
        node.delete("http://a.example/doc")
        with pytest.raises(ResourceNotFound):
            node.get("http://a.example/doc")


class TestHandleRequest:
    def node(self):
        sim = Simulation()
        return sim, sim.node("http://a.example")

    def test_get_found_and_missing(self):
        sim, node = self.node()
        node.put("http://a.example/doc", parse_data("doc{ v[7] }"))
        ok = node.handle_request(Request("GET", "http://a.example/doc"))
        assert ok.status == OK and ok.body.first("v").value == 7
        missing = node.handle_request(Request("GET", "http://a.example/no"))
        assert missing.status == NOT_FOUND and missing.body is None

    def test_put_creates_then_replaces(self):
        sim, node = self.node()
        first = node.handle_request(
            Request("PUT", "http://a.example/doc", parse_data("doc{ v[1] }")))
        assert first.status == CREATED
        second = node.handle_request(
            Request("PUT", "http://a.example/doc", parse_data("doc{ v[2] }")))
        assert second.status == NO_CONTENT
        assert node.get("http://a.example/doc").first("v").value == 2

    def test_put_without_body_is_bad_request(self):
        sim, node = self.node()
        response = node.handle_request(Request("PUT", "http://a.example/doc"))
        assert response.status == BAD_REQUEST

    def test_delete_then_missing(self):
        sim, node = self.node()
        node.put("http://a.example/doc", parse_data("doc{ }"))
        assert node.handle_request(
            Request("DELETE", "http://a.example/doc")).status == NO_CONTENT
        assert node.handle_request(
            Request("DELETE", "http://a.example/doc")).status == NOT_FOUND

    def test_foreign_put_delete_forbidden(self):
        sim, node = self.node()
        assert node.handle_request(
            Request("PUT", "http://b.example/doc",
                    parse_data("doc{ }"))).status == FORBIDDEN
        assert node.handle_request(
            Request("DELETE", "http://b.example/doc")).status == FORBIDDEN

    def test_post_enqueues_a_local_event(self):
        sim, node = self.node()
        seen = []
        node.on_event(seen.append)
        response = node.handle_request(
            Request("POST", "http://a.example/orders",
                    parse_data("order{ seq[1] }")))
        assert response.status == NO_CONTENT
        sim.run()
        assert len(seen) == 1

    def test_post_without_body_is_bad_request(self):
        sim, node = self.node()
        assert node.handle_request(
            Request("POST", "http://a.example/x")).status == BAD_REQUEST

    def test_get_with_body_still_rejected(self):
        with pytest.raises(WebError):
            Request("GET", "http://a.example/doc", parse_data("doc{ }"))


class _CaptureNode:
    """A registrable stand-in that records raw network messages."""

    def __init__(self, uri):
        self.uri = uri
        self.messages = []

    def receive(self, message):
        self.messages.append(message)


class TestMessageIdScoping:
    def run_one_simulation(self):
        sim = Simulation()
        sender = sim.node("http://send.example")
        capture = _CaptureNode("http://cap.example")
        sim.network.register(capture)
        sender.raise_event("http://cap.example", parse_data("ping{ }"))
        sender.raise_event("http://cap.example", parse_data("ping{ }"))
        sim.run()
        return [
            message.payload.first("header").first("message-id").value
            for message in capture.messages
        ]

    def test_each_simulation_counts_from_one(self):
        # Regardless of how much traffic an earlier simulation produced,
        # a fresh one starts at message-id 1 — ids are per-Simulation.
        assert self.run_one_simulation() == [1, 2]
        assert self.run_one_simulation() == [1, 2]

    def test_standalone_envelopes_keep_the_global_counter(self):
        reset_message_ids(10)
        assert Envelope(parse_data("e{ }")).message_id == 10
        assert Envelope(parse_data("e{ }")).message_id == 11
        reset_message_ids()
        assert Envelope(parse_data("e{ }")).message_id == 1

"""Unit tests for the simulated Web substrate."""

import pytest

from repro.errors import NodeNotFound, ResourceNotFound, WebError
from repro.terms import d, parse_data, to_text, u
from repro.web import PollingWatcher, Request, Response, Scheduler, Simulation
from repro.web.network import Message, authority
from repro.web.soap import Envelope


class TestScheduler:
    def test_runs_in_time_order(self):
        scheduler = Scheduler()
        order = []
        scheduler.at(2.0, lambda: order.append("b"))
        scheduler.at(1.0, lambda: order.append("a"))
        scheduler.at(3.0, lambda: order.append("c"))
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        scheduler = Scheduler()
        order = []
        for tag in ("first", "second", "third"):
            scheduler.at(1.0, lambda t=tag: order.append(t))
        scheduler.run()
        assert order == ["first", "second", "third"]

    def test_run_until_stops(self):
        scheduler = Scheduler()
        fired = []
        scheduler.at(1.0, lambda: fired.append(1))
        scheduler.at(5.0, lambda: fired.append(5))
        scheduler.run_until(2.0)
        assert fired == [1]
        assert scheduler.now == 2.0
        assert scheduler.pending() == 1

    def test_past_scheduling_rejected(self):
        scheduler = Scheduler()
        scheduler.at(5.0, lambda: None)
        scheduler.run()
        with pytest.raises(WebError):
            scheduler.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(WebError):
            Scheduler().after(-1.0, lambda: None)

    def test_every_repeats_until(self):
        scheduler = Scheduler()
        ticks = []
        scheduler.every(1.0, lambda: ticks.append(scheduler.now), until=4.5)
        scheduler.run()
        assert ticks == [1.0, 2.0, 3.0, 4.0]

    def test_callback_scheduling_callback(self):
        scheduler = Scheduler()
        seen = []

        def first():
            seen.append("first")
            scheduler.after(1.0, lambda: seen.append("second"))

        scheduler.at(1.0, first)
        scheduler.run()
        assert seen == ["first", "second"]

    def test_runaway_guard(self):
        scheduler = Scheduler()

        def loop():
            scheduler.after(0.1, loop)

        scheduler.after(0.1, loop)
        with pytest.raises(WebError):
            scheduler.run(max_callbacks=100)


class TestNetwork:
    def test_authority_extraction(self):
        assert authority("http://a.example/path/doc") == "http://a.example"
        with pytest.raises(WebError):
            authority("not-a-uri")

    def test_delivery_with_latency(self):
        sim = Simulation(latency=0.25)
        a = sim.node("http://a.example")
        b = sim.node("http://b.example")
        arrivals = []
        b.on_event(lambda e: arrivals.append(sim.now))
        a.raise_event("http://b.example", d("ping"))
        sim.run()
        assert arrivals == [0.25]

    def test_unknown_destination(self):
        sim = Simulation()
        a = sim.node("http://a.example")
        with pytest.raises(NodeNotFound):
            a.raise_event("http://nowhere.example", d("ping"))

    def test_duplicate_registration_rejected(self):
        sim = Simulation()
        sim.node("http://a.example")
        with pytest.raises(WebError):
            sim.node("http://a.example/other")  # same authority

    def test_traffic_accounting(self):
        sim = Simulation()
        a = sim.node("http://a.example")
        b = sim.node("http://b.example")
        b.on_event(lambda e: None)
        a.raise_event("http://b.example", d("ping", 1))
        a.raise_event("http://b.example", d("ping", 2))
        sim.run()
        assert sim.stats.messages == 2
        assert sim.stats.bytes > 0
        assert sim.stats.sent_by["http://a.example"] == 2

    def test_broker_doubles_messages(self):
        direct = Simulation()
        x1, y1 = direct.node("http://x.example"), direct.node("http://y.example")
        y1.on_event(lambda e: None)
        x1.raise_event("http://y.example", d("ping"))
        direct.run()

        brokered = Simulation(broker="http://hub.example")
        brokered.node("http://hub.example")
        x2, y2 = brokered.node("http://x.example"), brokered.node("http://y.example")
        y2.on_event(lambda e: None)
        x2.raise_event("http://y.example", d("ping"))
        brokered.run()

        assert direct.stats.messages == 1
        assert brokered.stats.messages == 2
        assert brokered.stats.hotspot()[0] == "http://hub.example"

    def test_fetch_accounts_request_and_response(self):
        sim = Simulation()
        a = sim.node("http://a.example")
        b = sim.node("http://b.example")
        b.put("http://b.example/doc", d("doc", 1))
        content = a.get("http://b.example/doc")
        assert content == d("doc", 1)
        assert sim.stats.messages == 2  # request + response


class TestHttp:
    def test_get_with_body_rejected(self):
        with pytest.raises(WebError):
            Request("GET", "http://a.example/x", d("body"))

    def test_unknown_method_rejected(self):
        with pytest.raises(WebError):
            Request("PATCH", "http://a.example/x")

    def test_response_ok(self):
        assert Response(200).ok
        assert not Response(404).ok

    def test_request_term_encoding(self):
        term = Request("POST", "http://a.example/x", d("data")).to_term()
        assert term.attr("method") == "POST"


class TestSoap:
    def test_round_trip(self):
        envelope = Envelope(d("order", 1), sender="http://a.example", sent_at=3.5)
        back = Envelope.from_term(envelope.to_term())
        assert back.body == d("order", 1)
        assert back.sender == "http://a.example"
        assert back.sent_at == 3.5
        assert back.message_id == envelope.message_id

    def test_malformed_rejected(self):
        with pytest.raises(WebError):
            Envelope.from_term(d("not-an-envelope"))
        with pytest.raises(WebError):
            Envelope.from_term(d("envelope", d("header")))

    def test_message_ids_unique(self):
        assert Envelope(d("x")).message_id != Envelope(d("x")).message_id


class TestResources:
    def test_put_get_version(self):
        sim = Simulation()
        node = sim.node("http://a.example")
        node.put("http://a.example/doc", d("doc", 1))
        assert node.resources.version("http://a.example/doc") == 1
        node.put("http://a.example/doc", d("doc", 2))
        assert node.resources.version("http://a.example/doc") == 2
        assert node.get("http://a.example/doc") == d("doc", 2)

    def test_missing_resource(self):
        sim = Simulation()
        node = sim.node("http://a.example")
        with pytest.raises(ResourceNotFound):
            node.get("http://a.example/missing")

    def test_remote_write_forbidden(self):
        sim = Simulation()
        a = sim.node("http://a.example")
        sim.node("http://b.example")
        with pytest.raises(WebError):
            a.put("http://b.example/doc", d("doc"))

    def test_watchers_notified(self):
        sim = Simulation()
        node = sim.node("http://a.example")
        seen = []
        node.resources.watch(lambda uri, old, new, v: seen.append((uri, old, new, v)))
        node.put("http://a.example/doc", d("doc", 1))
        node.put("http://a.example/doc", d("doc", 2))
        node.resources.delete("http://a.example/doc")
        assert len(seen) == 3
        assert seen[0][1] is None
        assert seen[1][1] == d("doc", 1)
        assert seen[2][2] is None

    def test_snapshot_restore(self):
        sim = Simulation()
        node = sim.node("http://a.example")
        node.put("http://a.example/doc", d("doc", 1))
        snapshot = node.resources.snapshot()
        node.put("http://a.example/doc", d("doc", 2))
        node.put("http://a.example/other", d("x"))
        node.resources.restore(snapshot)
        assert node.get("http://a.example/doc") == d("doc", 1)
        assert "http://a.example/other" not in node.resources


class TestPolling:
    def _setup(self):
        sim = Simulation(latency=0.0)
        source = sim.node("http://src.example")
        watcher_node = sim.node("http://watcher.example")
        source.put("http://src.example/doc", d("doc", 0))
        return sim, source, watcher_node

    def test_detects_changes(self):
        sim, source, watcher_node = self._setup()
        watcher = PollingWatcher(watcher_node, "http://src.example/doc", interval=1.0,
                                 until=10.0)

        def change():
            source.put("http://src.example/doc", d("doc", int(sim.now * 10)))
            watcher.record_change(sim.now)

        sim.scheduler.at(2.5, change)
        sim.run_until(10.0)
        assert watcher.changes_detected == 1
        # change at 2.5 detected at poll 3.0
        assert watcher.detection_delays == [pytest.approx(0.5)]

    def test_poll_traffic_scales_with_rate(self):
        sim, source, watcher_node = self._setup()
        PollingWatcher(watcher_node, "http://src.example/doc", interval=0.5, until=10.0)
        sim.run_until(10.0)
        fast_messages = sim.stats.messages

        sim2, source2, watcher_node2 = self._setup()
        PollingWatcher(watcher_node2, "http://src.example/doc", interval=2.0, until=10.0)
        sim2.run_until(10.0)
        slow_messages = sim2.stats.messages
        assert fast_messages > 3 * slow_messages

    def test_missed_intermediate_change(self):
        # Two changes between polls: polling sees only the net effect.
        sim, source, watcher_node = self._setup()
        watcher = PollingWatcher(watcher_node, "http://src.example/doc", interval=5.0,
                                 until=20.0)
        sim.scheduler.at(6.0, lambda: source.put("http://src.example/doc", d("doc", 1)))
        sim.scheduler.at(7.0, lambda: source.put("http://src.example/doc", d("doc", 2)))
        sim.run_until(20.0)
        assert watcher.changes_detected == 1  # one detection for two changes

    def test_aba_change_is_counted_missed_not_misattributed(self):
        """Regression: an A→B→A flip between polls is undetectable by
        fingerprint comparison, but its ``record_change`` timestamps used
        to linger and inflate the *next* unrelated detection's delay.
        They must instead expire (one full interval unseen) into
        ``changes_missed``."""
        sim, source, watcher_node = self._setup()
        uri = "http://src.example/doc"
        watcher = PollingWatcher(watcher_node, uri, interval=1.0, until=10.0)
        original = d("doc", 0)

        def change_to(term):
            source.put(uri, term)
            watcher.record_change(sim.now)

        # Between polls 1.0 and 2.0: A -> B -> A (net: nothing to see).
        sim.scheduler.at(1.2, lambda: change_to(d("doc", 1)))
        sim.scheduler.at(1.4, lambda: change_to(original))
        # A genuinely new value later; detected by the poll at 6.0.
        sim.scheduler.at(5.5, lambda: change_to(d("doc", 2)))
        sim.run_until(10.0)
        assert watcher.changes_detected == 1
        assert watcher.changes_missed == 2          # the ABA pair
        # The detection's delay reflects only its own change (6.0 - 5.5),
        # not the stale ABA timestamps (which would read 4.8 and 4.6).
        assert watcher.detection_delays == [pytest.approx(0.5)]

    def test_fresh_changes_within_one_interval_all_attributed(self):
        """Several changes since the previous poll are all within one
        interval: every one contributes a delay, none expires."""
        sim, source, watcher_node = self._setup()
        uri = "http://src.example/doc"
        watcher = PollingWatcher(watcher_node, uri, interval=5.0, until=20.0)

        def change_to(i):
            source.put(uri, d("doc", i))
            watcher.record_change(sim.now)

        sim.scheduler.at(6.0, lambda: change_to(1))
        sim.scheduler.at(9.0, lambda: change_to(2))
        sim.run_until(20.0)
        assert watcher.changes_detected == 1
        assert watcher.changes_missed == 0
        assert watcher.detection_delays == [pytest.approx(4.0),
                                            pytest.approx(1.0)]


class TestTrafficAccounting:
    def test_rtt_charged_initialised_and_surfaced(self):
        """Regression: ``rtt_charged`` was lazily created via getattr on
        the network; it must exist from construction and be readable
        through ``Simulation.stats``."""
        sim = Simulation(latency=0.1)
        assert sim.network.rtt_charged == 0.0
        assert sim.stats.rtt_charged == 0.0

    def test_fetch_charges_one_round_trip(self):
        sim = Simulation(latency=0.1)
        source = sim.node("http://src.example")
        sink = sim.node("http://sink.example")
        source.put("http://src.example/doc", d("doc", 1))
        sink.get("http://src.example/doc")
        assert sim.stats.rtt_charged == pytest.approx(0.2)
        sink.get("http://src.example/doc")
        assert sim.stats.rtt_charged == pytest.approx(0.4)
        # The old attribute spelling still reads the same ledger.
        assert sim.network.rtt_charged == pytest.approx(0.4)

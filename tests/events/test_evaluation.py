"""Unit tests for event-query evaluation, run against BOTH evaluators.

Every scenario is parametrised over the incremental operator network and the
naive full-history baseline; both must produce the same answers (Thesis 6:
same semantics, different cost).
"""

import pytest

from repro.events import (
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EWithin,
    IncrementalEvaluator,
    NaiveEvaluator,
)
from repro.events.model import make_event
from repro.terms import Bindings, Var, d, parse_data, parse_query, q, u

EVALUATORS = [IncrementalEvaluator, NaiveEvaluator]


def feed(evaluator, *specs):
    """Feed (time, term_text) specs; returns all emitted answers."""
    out = []
    for time, text in specs:
        if text is None:
            out.extend(evaluator.advance_time(time))
        else:
            out.extend(evaluator.on_event(make_event(parse_data(text), time)))
    return out


@pytest.fixture(params=EVALUATORS, ids=["incremental", "naive"])
def make_evaluator(request):
    return request.param


class TestAtom:
    def test_matching_event_answers(self, make_evaluator):
        ev = make_evaluator(EAtom(parse_query("order{{ item[var I] }}")))
        out = feed(ev, (1.0, 'order{ item["ball"] }'))
        assert len(out) == 1
        assert out[0].bindings["I"] == "ball"
        assert out[0].start == out[0].end == 1.0

    def test_non_matching_ignored(self, make_evaluator):
        ev = make_evaluator(EAtom(parse_query("order{{}}")))
        assert feed(ev, (1.0, "payment{}")) == []

    def test_multiple_bindings_multiple_answers(self, make_evaluator):
        ev = make_evaluator(EAtom(parse_query("cart{{ item[var I] }}")))
        out = feed(ev, (1.0, 'cart{ item["a"], item["b"] }'))
        assert {a.bindings["I"] for a in out} == {"a", "b"}

    def test_alias_binds_payload(self, make_evaluator):
        ev = make_evaluator(EAtom(parse_query("ping{{}}"), alias="E"))
        out = feed(ev, (2.0, "ping{}"))
        assert out[0].bindings["E"] == u("ping")


class TestConjunction:
    def test_and_any_order(self, make_evaluator):
        query = EAnd(EAtom(q("a", Var("X"))), EAtom(q("b", Var("Y"))))
        ev = make_evaluator(query)
        assert feed(ev, (1.0, "b{2}")) == []
        out = feed(ev, (2.0, "a{1}"))
        assert len(out) == 1
        assert out[0].bindings.as_dict() == {"X": 1, "Y": 2}
        assert out[0].start == 1.0 and out[0].end == 2.0

    def test_and_joins_on_shared_vars(self, make_evaluator):
        query = EAnd(
            EAtom(parse_query("order{{ id[var K] }}")),
            EAtom(parse_query("payment{{ id[var K] }}")),
        )
        ev = make_evaluator(query)
        out = feed(
            ev,
            (1.0, "order{ id[7] }"),
            (2.0, "payment{ id[9] }"),  # different id: no join
            (3.0, "payment{ id[7] }"),
        )
        assert len(out) == 1
        assert out[0].bindings["K"] == 7

    def test_and_multiple_partners(self, make_evaluator):
        query = EAnd(EAtom(q("a", Var("X"))), EAtom(q("b", Var("Y"))))
        ev = make_evaluator(query)
        out = feed(ev, (1.0, "a{1}"), (2.0, "a{2}"), (3.0, "b{9}"))
        assert {(a.bindings["X"], a.bindings["Y"]) for a in out} == {(1, 9), (2, 9)}

    def test_same_event_can_serve_both_sides(self, make_evaluator):
        query = EAnd(EAtom(q("x", Var("A"))), EAtom(q("*", 5)))
        ev = make_evaluator(query)
        out = feed(ev, (1.0, "x{5}"))
        assert len(out) == 1
        assert out[0].events == (out[0].events[0],)  # single event, both roles

    def test_or_either_branch(self, make_evaluator):
        query = EOr(EAtom(q("a")), EAtom(q("b")))
        ev = make_evaluator(query)
        assert len(feed(ev, (1.0, "a{}"))) == 1
        assert len(feed(ev, (2.0, "b{}"))) == 1
        assert feed(ev, (3.0, "c{}")) == []


class TestSequence:
    def test_order_enforced(self, make_evaluator):
        query = ESeq(EAtom(q("a")), EAtom(q("b")))
        forward = make_evaluator(query)
        assert len(feed(forward, (1.0, "a{}"), (2.0, "b{}"))) == 1
        backward = make_evaluator(query)
        assert feed(backward, (1.0, "b{}"), (2.0, "a{}")) == []

    def test_simultaneous_not_ordered(self, make_evaluator):
        query = ESeq(EAtom(q("a")), EAtom(q("b")))
        ev = make_evaluator(query)
        assert feed(ev, (1.0, "a{}"), (1.0, "b{}")) == []

    def test_three_step_sequence(self, make_evaluator):
        query = ESeq(EAtom(q("a")), EAtom(q("b")), EAtom(q("c")))
        ev = make_evaluator(query)
        out = feed(ev, (1.0, "a{}"), (2.0, "b{}"), (3.0, "c{}"))
        assert len(out) == 1
        assert out[0].start == 1.0 and out[0].end == 3.0

    def test_sequence_joins_bindings(self, make_evaluator):
        query = ESeq(
            EAtom(parse_query("req{{ id[var K] }}")),
            EAtom(parse_query("resp{{ id[var K] }}")),
        )
        ev = make_evaluator(query)
        out = feed(ev, (1.0, "req{ id[1] }"), (2.0, "resp{ id[2] }"), (3.0, "resp{ id[1] }"))
        assert len(out) == 1
        assert out[0].end == 3.0

    def test_every_pair_counted(self, make_evaluator):
        query = ESeq(EAtom(q("a", Var("X"))), EAtom(q("b", Var("Y"))))
        ev = make_evaluator(query)
        out = feed(ev, (1.0, "a{1}"), (2.0, "a{2}"), (3.0, "b{7}"))
        assert len(out) == 2  # both a's pair with the b


class TestNegation:
    def flight_query(self):
        # The paper's example: cancellation, then NO rebooking within 2 hours.
        return EWithin(
            ESeq(
                EAtom(parse_query("cancellation{{ flight[var F] }}")),
                ENot(parse_query("rebooking{{ flight[var F] }}")),
            ),
            2.0,
        )

    def test_absence_confirmed_at_deadline(self, make_evaluator):
        ev = make_evaluator(self.flight_query())
        out = feed(ev, (1.0, 'cancellation{ flight["LH1"] }'))
        assert out == []  # not yet confirmed
        out = feed(ev, (3.0, None))  # advance past deadline 1.0 + 2.0
        assert len(out) == 1
        assert out[0].bindings["F"] == "LH1"
        assert out[0].end == 3.0  # confirmed at the deadline

    def test_rebooking_blocks(self, make_evaluator):
        ev = make_evaluator(self.flight_query())
        out = feed(
            ev,
            (1.0, 'cancellation{ flight["LH1"] }'),
            (2.0, 'rebooking{ flight["LH1"] }'),
            (4.0, None),
        )
        assert out == []

    def test_unrelated_rebooking_does_not_block(self, make_evaluator):
        ev = make_evaluator(self.flight_query())
        out = feed(
            ev,
            (1.0, 'cancellation{ flight["LH1"] }'),
            (2.0, 'rebooking{ flight["XX9"] }'),  # different flight
            (4.0, None),
        )
        assert len(out) == 1

    def test_blocker_exactly_at_deadline_blocks(self, make_evaluator):
        ev = make_evaluator(self.flight_query())
        out = feed(
            ev,
            (1.0, 'cancellation{ flight["LH1"] }'),
            (3.0, 'rebooking{ flight["LH1"] }'),  # exactly at deadline
            (5.0, None),
        )
        assert out == []

    def test_mid_sequence_negation(self, make_evaluator):
        query = EWithin(
            ESeq(EAtom(q("a")), ENot(q("n")), EAtom(q("b"))),
            10.0,
        )
        clean = make_evaluator(query)
        assert len(feed(clean, (1.0, "a{}"), (3.0, "b{}"))) == 1
        blocked = make_evaluator(query)
        assert feed(blocked, (1.0, "a{}"), (2.0, "n{}"), (3.0, "b{}")) == []

    def test_mid_negation_outside_gap_ignored(self, make_evaluator):
        query = EWithin(ESeq(EAtom(q("a")), ENot(q("n")), EAtom(q("b"))), 10.0)
        ev = make_evaluator(query)
        out = feed(ev, (0.5, "n{}"), (1.0, "a{}"), (3.0, "b{}"), (4.0, "n{}"))
        assert len(out) == 1

    def test_event_arrival_fires_due_deadline(self, make_evaluator):
        # No explicit advance_time: the next event catches the deadline up.
        ev = make_evaluator(self.flight_query())
        feed(ev, (1.0, 'cancellation{ flight["LH1"] }'))
        out = feed(ev, (9.0, "noise{}"))
        assert len(out) == 1
        assert out[0].end == 3.0

    def test_absence_survives_ulp_rounding_deadline(self, make_evaluator):
        # 6.501 + 5.0 rounds UP an ulp: the deadline-confirmed answer's
        # recomputed extent (end - start) would exceed the window by 1 ulp
        # and the enclosing EWithin used to drop it silently.  The answer
        # now carries the planted window as its span.
        start, window = 6.501, 5.0
        assert (start + window) - start > window  # the rounding premise
        query = EWithin(ESeq(EAtom(q("start", q("x", Var("X")))),
                             ENot(q("stop"))), window)
        ev = make_evaluator(query)
        out = feed(ev, (start, "start{x[1]}"), (start + 2 * window, None))
        assert len(out) == 1
        assert out[0].bindings["X"] == 1
        assert out[0].end == start + window
        assert out[0].span == window

    def test_ulp_absence_survives_conjunction_merge(self, make_evaluator):
        # The absence answer's exact span must survive merge_with: an EAnd
        # member inside the sequence's extent keeps the hull equal to the
        # sequence's extent, so the window override carries through and
        # the enclosing EWithin keeps the merged answer.
        start, window = 6.501, 5.0
        query = EWithin(EAnd(
            ESeq(EAtom(q("a")), ENot(q("n"))),
            EAtom(q("b", q("x", Var("X")))),
        ), window)
        ev = make_evaluator(query)
        out = feed(ev, (start, "a{}"), (7.0, "b{x[2]}"), (start + 2 * window, None))
        assert len(out) == 1
        assert out[0].bindings["X"] == 2
        assert out[0].span == window

    def test_ulp_rounding_multi_positive_sequence(self, make_evaluator):
        # The last positive lands exactly on the rounded-up deadline: the
        # planted-deadline gate must accept it in both evaluators.
        start, window = 6.501, 5.0
        query = EWithin(ESeq(EAtom(q("a")), EAtom(q("b")), ENot(q("n"))), window)
        ev = make_evaluator(query)
        out = feed(
            ev,
            (start, "a{}"),
            (start + window, "b{}"),  # at the fp deadline, 1 ulp past s + w
            (start + 3 * window, None),
        )
        assert len(out) == 1
        assert out[0].span == window


class TestWithin:
    def test_window_filters_spans(self, make_evaluator):
        query = EWithin(EAnd(EAtom(q("a")), EAtom(q("b"))), 2.0)
        ev = make_evaluator(query)
        out = feed(ev, (1.0, "a{}"), (5.0, "b{}"))  # span 4 > 2
        assert out == []
        out = feed(ev, (6.0, "a{}"))  # pairs with b at 5: span 1
        assert len(out) == 1

    def test_exact_window_boundary_included(self, make_evaluator):
        query = EWithin(EAnd(EAtom(q("a")), EAtom(q("b"))), 2.0)
        ev = make_evaluator(query)
        out = feed(ev, (1.0, "a{}"), (3.0, "b{}"))
        assert len(out) == 1


class TestAccumulation:
    def test_count_threshold(self, make_evaluator):
        # The paper's SLA example: 3 outages within 1 hour.
        query = ECount(parse_query("outage{{}}"), 3, 60.0)
        ev = make_evaluator(query)
        out = feed(ev, (0.0, "outage{}"), (10.0, "outage{}"))
        assert out == []
        out = feed(ev, (20.0, "outage{}"))
        assert len(out) == 1
        assert len(out[0].events) == 3

    def test_count_window_slides(self, make_evaluator):
        query = ECount(parse_query("outage{{}}"), 3, 60.0)
        ev = make_evaluator(query)
        out = feed(
            ev,
            (0.0, "outage{}"),
            (30.0, "outage{}"),
            (70.0, "outage{}"),  # first one expired: only 2 in window
        )
        assert out == []
        out = feed(ev, (80.0, "outage{}"))  # 30 expired too... 70, 80 + 30? no
        # window (20, 80]: events at 30, 70, 80 -> 3 events
        assert len(out) == 1

    def test_count_grouped(self, make_evaluator):
        query = ECount(parse_query("outage{{ server[var S] }}"), 2, 60.0, group_by=("S",))
        ev = make_evaluator(query)
        out = feed(
            ev,
            (0.0, 'outage{ server["a"] }'),
            (1.0, 'outage{ server["b"] }'),
            (2.0, 'outage{ server["a"] }'),
        )
        assert len(out) == 1
        assert out[0].bindings["S"] == "a"

    def test_every_completion_emits(self, make_evaluator):
        query = ECount(parse_query("outage{{}}"), 2, 60.0)
        ev = make_evaluator(query)
        out = feed(ev, (0.0, "outage{}"), (1.0, "outage{}"), (2.0, "outage{}"))
        assert len(out) == 2  # at events 2 and 3

    def test_aggregate_avg_size(self, make_evaluator):
        query = EAggregate(parse_query("price{{ value[var P] }}"), "P", "avg", "A", size=3)
        ev = make_evaluator(query)
        out = feed(ev, (1.0, "price{ value[10] }"), (2.0, "price{ value[20] }"))
        assert out == []  # not enough values yet
        out = feed(ev, (3.0, "price{ value[30] }"))
        assert len(out) == 1
        assert out[0].bindings["A"] == pytest.approx(20.0)

    def test_aggregate_rise_predicate(self, make_evaluator):
        # The paper's stock example: average of last 5 rises by 5%.
        query = EAggregate(
            parse_query("stock{{ price[var P] }}"),
            "P", "avg", "A", size=5, predicate=("rise%", 5.0),
        )
        ev = make_evaluator(query)
        prices = [100, 100, 100, 100, 100]  # avg 100, no previous -> no emit
        out = []
        for i, p in enumerate(prices):
            out += feed(ev, (float(i), f"stock{{ price[{p}] }}"))
        assert out == []
        out = feed(ev, (5.0, "stock{ price[101] }"))  # avg 100.2: +0.2%
        assert out == []
        out = feed(ev, (6.0, "stock{ price[150] }"))  # avg(100,100,100,101,150)=110.2
        assert len(out) == 1
        assert out[0].bindings["A"] == pytest.approx(110.2)

    def test_aggregate_window_mode(self, make_evaluator):
        query = EAggregate(parse_query("m{{ v[var V] }}"), "V", "sum", "S", window=10.0)
        ev = make_evaluator(query)
        out = feed(ev, (0.0, "m{ v[1] }"), (5.0, "m{ v[2] }"), (20.0, "m{ v[4] }"))
        sums = [a.bindings["S"] for a in out]
        assert sums == [1.0, 3.0, 4.0]

    def test_aggregate_grouped(self, make_evaluator):
        query = EAggregate(
            parse_query("m{{ s[var S], v[var V] }}"),
            "V", "max", "M", size=2, group_by=("S",),
        )
        ev = make_evaluator(query)
        out = feed(
            ev,
            (0.0, 'm{ s["x"], v[1] }'),
            (1.0, 'm{ s["y"], v[9] }'),
            (2.0, 'm{ s["x"], v[5] }'),
        )
        assert len(out) == 1
        assert out[0].bindings["S"] == "x"
        assert out[0].bindings["M"] == 5.0


class TestNestedComposition:
    def test_or_inside_seq(self, make_evaluator):
        query = ESeq(EOr(EAtom(q("a")), EAtom(q("b"))), EAtom(q("c")))
        ev = make_evaluator(query)
        out = feed(ev, (1.0, "b{}"), (2.0, "c{}"))
        assert len(out) == 1

    def test_and_inside_within_inside_seq(self, make_evaluator):
        query = ESeq(EWithin(EAnd(EAtom(q("a")), EAtom(q("b"))), 2.0), EAtom(q("c")))
        ev = make_evaluator(query)
        out = feed(ev, (1.0, "a{}"), (2.0, "b{}"), (5.0, "c{}"))
        assert len(out) == 1
        assert out[0].start == 1.0 and out[0].end == 5.0

    def test_seq_of_seqs(self, make_evaluator):
        query = ESeq(ESeq(EAtom(q("a")), EAtom(q("b"))), EAtom(q("c")))
        ev = make_evaluator(query)
        assert len(feed(ev, (1.0, "a{}"), (2.0, "b{}"), (3.0, "c{}"))) == 1
        # c arriving between a and b does not satisfy the outer sequence
        ev2 = make_evaluator(query)
        assert feed(ev2, (1.0, "a{}"), (2.0, "c{}"), (3.0, "b{}")) == []


class TestTimeDiscipline:
    def test_out_of_order_event_rejected(self, make_evaluator):
        ev = make_evaluator(EAtom(q("a")))
        feed(ev, (5.0, "a{}"))
        from repro.errors import EventError

        with pytest.raises(EventError):
            feed(ev, (4.0, "a{}"))

    def test_time_regression_rejected(self, make_evaluator):
        ev = make_evaluator(EAtom(q("a")))
        ev.advance_time(5.0)
        from repro.errors import EventError

        with pytest.raises(EventError):
            ev.advance_time(4.0)

    def test_same_time_events_allowed(self, make_evaluator):
        ev = make_evaluator(EAtom(q("a")))
        out = feed(ev, (1.0, "a{}"), (1.0, "a{}"))
        assert len(out) == 2


class TestVolatility:
    """Thesis 4: windowed state stays bounded; naive history does not."""

    def test_incremental_state_bounded_by_window(self):
        query = EWithin(EAnd(EAtom(q("a", Var("X"))), EAtom(q("b", Var("Y")))), 10.0)
        ev = IncrementalEvaluator(query)
        sizes = []
        for i in range(200):
            ev.on_event(make_event(parse_data(f"a{{{i}}}"), float(i)))
            sizes.append(ev.state_size())
        # State is pruned to the window: far smaller than the history.
        assert max(sizes[50:]) <= 30

    def test_naive_state_grows_linearly(self):
        query = EWithin(EAnd(EAtom(q("a", Var("X"))), EAtom(q("b", Var("Y")))), 10.0)
        ev = NaiveEvaluator(query)
        for i in range(100):
            ev.on_event(make_event(parse_data(f"a{{{i}}}"), float(i)))
        assert ev.state_size() == 100

    def test_count_state_bounded(self):
        query = ECount(parse_query("outage{{}}"), 3, 10.0)
        ev = IncrementalEvaluator(query)
        for i in range(500):
            ev.on_event(make_event(parse_data("outage{}"), float(i)))
        assert ev.state_size() <= 11

    def test_next_deadline_reported(self):
        query = EWithin(ESeq(EAtom(q("a")), ENot(q("n"))), 5.0)
        ev = IncrementalEvaluator(query)
        assert ev.next_deadline() is None
        ev.on_event(make_event(parse_data("a{}"), 1.0))
        assert ev.next_deadline() == 6.0
        ev.advance_time(6.0)
        assert ev.next_deadline() is None

    def test_reset_clears_state(self):
        query = EWithin(EAnd(EAtom(q("a")), EAtom(q("b"))), 100.0)
        ev = IncrementalEvaluator(query)
        ev.on_event(make_event(parse_data("a{}"), 1.0))
        assert ev.state_size() > 0
        ev.reset()
        assert ev.state_size() == 0

"""Tests for event instance selection and consumption policies (Thesis 5)."""

import pytest

from repro.errors import EventQueryError
from repro.events import (
    ConsumingEvaluator,
    ConsumptionPolicy,
    EAnd,
    EAtom,
    IncrementalEvaluator,
)
from repro.events.model import make_event
from repro.terms import Var, d, parse_data, q


def pair_evaluator(policy):
    query = EAnd(EAtom(q("a", Var("X"))), EAtom(q("b", Var("Y"))))
    return ConsumingEvaluator(IncrementalEvaluator(query), policy)


def feed(evaluator, *specs):
    out = []
    for time, text in specs:
        out.extend(evaluator.on_event(make_event(parse_data(text), time)))
    return out


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(EventQueryError):
            ConsumptionPolicy("sometimes")

    def test_unrestricted_keeps_all(self):
        evaluator = pair_evaluator("unrestricted")
        out = feed(evaluator, (1.0, "a{1}"), (2.0, "a{2}"), (3.0, "b{9}"))
        assert len(out) == 2  # both a's combine with the b

    def test_chronicle_consumes_oldest_first(self):
        evaluator = pair_evaluator("chronicle")
        out = feed(evaluator, (1.0, "a{1}"), (2.0, "a{2}"), (3.0, "b{9}"))
        # Both answers arrive simultaneously; chronicle accepts the one with
        # the older a and consumes the b, blocking the second pairing.
        assert len(out) == 1
        assert out[0].bindings["X"] == 1

    def test_chronicle_blocks_reuse_across_batches(self):
        evaluator = pair_evaluator("chronicle")
        feed(evaluator, (1.0, "a{1}"), (2.0, "b{9}"))  # consumed pair
        out = feed(evaluator, (3.0, "b{8}"))
        # a{1} was consumed at t=2; the new b has no partner left.
        assert out == []
        out = feed(evaluator, (4.0, "a{2}"))
        # fresh a pairs with... b{8} (unconsumed) and b{9}? b9 consumed.
        assert len(out) == 1
        assert out[0].bindings["Y"] == 8

    def test_recent_selects_latest(self):
        evaluator = pair_evaluator("recent")
        out = feed(evaluator, (1.0, "a{1}"), (2.0, "a{2}"), (3.0, "b{9}"))
        assert len(out) == 1
        assert out[0].bindings["X"] == 2  # the more recent a wins

    def test_cumulative_resets_state(self):
        evaluator = pair_evaluator("cumulative")
        out = feed(evaluator, (1.0, "a{1}"), (2.0, "b{9}"))
        assert len(out) == 1
        assert evaluator.state_size() == 0  # everything consumed
        out = feed(evaluator, (3.0, "b{8}"))
        assert out == []  # a{1} is gone with the reset

    def test_policy_object_reuse(self):
        policy = ConsumptionPolicy("chronicle")
        evaluator = pair_evaluator(policy)
        feed(evaluator, (1.0, "a{1}"), (2.0, "b{9}"))
        assert policy._consumed  # events recorded as consumed
        evaluator.reset()
        assert not policy._consumed

    def test_advance_time_passes_through(self):
        from repro.events import ENot, ESeq, EWithin

        query = EWithin(ESeq(EAtom(q("a")), ENot(q("n"))), 2.0)
        evaluator = ConsumingEvaluator(IncrementalEvaluator(query), "chronicle")
        evaluator.on_event(make_event(d("a"), 1.0))
        assert evaluator.next_deadline() == 3.0
        out = evaluator.advance_time(3.0)
        assert len(out) == 1

"""Unit tests for the tree evaluator, join plans, and the evaluator factory.

The property suite (tests/properties/test_evaluator_equivalence.py) proves
tree ≡ incremental ≡ naive over random streams; these tests pin down the
named edge cases — same-instant absence deadlines, binding-sensitive
interior negation, window expiry racing a positive, first-chance pending
discard — plus the plan/replan surface and ``resolve_evaluator`` itself.
"""

import pytest

from repro.core import EngineConfig
from repro.errors import EventQueryError
from repro.events import (
    EAnd,
    EAtom,
    ENot,
    ESeq,
    EWithin,
    IncrementalEvaluator,
    NaiveEvaluator,
    ScheduledNaiveEvaluator,
    TreeEvaluator,
    register_evaluator,
    resolve_evaluator,
)
from repro.events.model import make_event
from repro.terms import Var, d, q

MECHANISMS = [TreeEvaluator, IncrementalEvaluator, NaiveEvaluator]


def feed(evaluator, *specs):
    """Feed (time, term) specs — term None means advance_time."""
    out = []
    for time, term in specs:
        if term is None:
            out.extend(evaluator.advance_time(time))
        else:
            out.extend(evaluator.on_event(make_event(term, time)))
    return out


def all_mechanisms(query, *specs):
    """Run *specs* through all three mechanisms; assert agreement and
    return the tree evaluator's answers."""
    results = {}
    for mechanism in MECHANISMS:
        # Fresh Event objects per mechanism get fresh ids; compare on the
        # content that is id-independent.
        answers = feed(mechanism(query), *specs)
        results[mechanism.__name__] = [
            (a.bindings, a.start, a.end, a.span) for a in answers
        ]
    assert results["TreeEvaluator"] == results["IncrementalEvaluator"]
    assert set(map(tuple, results["TreeEvaluator"])) == \
        set(map(tuple, results["NaiveEvaluator"]))
    return results["TreeEvaluator"]


ABSENCE = EWithin(ESeq(EAtom(q("a", Var("V"))), ENot(q("n"))), 4.0)


class TestNegationEdgeCases:
    def test_same_instant_deadline_fires_in_event_pass(self):
        # The deadline (1.0 + 4.0) coincides with an unrelated event: the
        # absence answer must fire in that very on_event pass.
        out = all_mechanisms(ABSENCE, (1.0, d("a", 7)), (5.0, d("b", 0)))
        assert len(out) == 1
        bindings, start, end, span = out[0]
        assert bindings["V"] == 7
        assert (start, end, span) == (1.0, 5.0, 4.0)

    def test_blocker_exactly_at_deadline_blocks(self):
        # The trailing gap is inclusive at the deadline: a blocker at
        # exactly start + window still cancels the match.
        assert all_mechanisms(ABSENCE, (1.0, d("a", 7)), (5.0, d("n", 0))) == []

    def test_interior_negation_is_binding_sensitive(self):
        query = EWithin(
            ESeq(EAtom(q("a", Var("V"))), ENot(q("n", Var("V"))),
                 EAtom(q("b", Var("V")))),
            10.0,
        )
        # n{2} binds V=2, the combination binds V=1: not a blocker.
        out = all_mechanisms(
            query, (1.0, d("a", 1)), (2.0, d("n", 2)), (3.0, d("b", 1)))
        assert len(out) == 1 and out[0][0]["V"] == 1
        # n{1} shares the binding: blocked.
        assert all_mechanisms(
            query, (1.0, d("a", 1)), (2.0, d("n", 1)), (3.0, d("b", 1))) == []

    def test_window_expiry_racing_a_positive(self):
        # The closing positive lands exactly at start + window: span == 2.0
        # is still inside EWithin; half a tick later the prefix has expired.
        query = EWithin(ESeq(EAtom(q("a", Var("X"))), EAtom(q("b", Var("Y")))), 2.0)
        on_edge = all_mechanisms(query, (1.0, d("a", 1)), (3.0, d("b", 2)))
        assert len(on_edge) == 1 and on_edge[0][3] == 2.0
        assert all_mechanisms(query, (1.0, d("a", 1)), (3.5, d("b", 2))) == []

    def test_first_chance_discards_pending_before_deadline(self):
        tree = TreeEvaluator(ABSENCE)
        feed(tree, (1.0, d("a", 7)))
        seq_op = tree._root._member  # EWithin -> _TreeOp
        assert len(seq_op._pending) == 1
        # The blocker settles the pending match 3 time units early — no
        # waiting for the deadline to find out.
        feed(tree, (2.0, d("n", 0)))
        assert seq_op._pending == []
        assert feed(tree, (10.0, None)) == []

    def test_time_order_enforced(self):
        tree = TreeEvaluator(ABSENCE)
        feed(tree, (2.0, d("a", 1)))
        with pytest.raises(Exception, match="time order"):
            tree.on_event(make_event(d("a", 2), 1.0))


class TestJoinPlans:
    SEQ = EWithin(ESeq(EAtom(q("a", Var("X"))), EAtom(q("b", Var("Y")))), 10.0)

    def test_initial_plan_is_textual_order(self):
        plan = TreeEvaluator(self.SEQ).plan()
        assert plan["op"] == "seq"
        assert plan["order"] == [0, 1]

    def test_replan_moves_frequent_leaf_last(self):
        tree = TreeEvaluator(self.SEQ)
        tree.replan({"a": 100.0, "b": 1.0})
        assert tree.plan()["order"] == [1, 0]  # rare b joins first

    def test_rates_seed_the_initial_plan(self):
        tree = TreeEvaluator(self.SEQ, rates={"a": 100.0, "b": 1.0})
        assert tree.plan()["order"] == [1, 0]

    def test_observed_traffic_outranks_stale_rates(self):
        tree = TreeEvaluator(self.SEQ)
        for step in range(3):
            feed(tree, (float(step), d("a", step)))
        tree.replan({"a": 0.0, "b": 50.0})
        # 'a' has produced member answers, 'b' none: b is still rarer.
        assert tree.plan()["order"] == [1, 0]

    def test_replan_keeps_buffered_partial_matches(self):
        tree = TreeEvaluator(self.SEQ)
        baseline = IncrementalEvaluator(self.SEQ)
        feed(tree, (1.0, d("a", 1)))
        feed(baseline, (1.0, d("a", 1)))
        tree.replan({"a": 100.0, "b": 1.0})
        got = feed(tree, (2.0, d("b", 2)))
        want = feed(baseline, (2.0, d("b", 2)))
        assert [(a.bindings, a.start, a.end) for a in got] == \
            [(a.bindings, a.start, a.end) for a in want]

    def test_and_plan_and_leaf_queries(self):
        both = TreeEvaluator(EAnd(EAtom(q("a")), EAtom(q("b"))))
        assert both.plan()["op"] == "and"
        assert TreeEvaluator(EAtom(q("a"))).plan() is None

    def test_state_shrinks_after_window(self):
        tree = TreeEvaluator(self.SEQ)
        feed(tree, (1.0, d("a", 1)))
        held = tree.state_size()
        assert held > 0
        feed(tree, (50.0, None))
        assert tree.state_size() < held


class TestScheduledNaive:
    def test_advertises_candidate_deadlines(self):
        naive = ScheduledNaiveEvaluator(ABSENCE)
        assert naive.next_deadline() is None
        feed(naive, (1.0, d("a", 7)))
        assert naive.next_deadline() == 5.0
        out = feed(naive, (5.0, None))
        assert len(out) == 1 and out[0].bindings["V"] == 7
        assert naive.next_deadline() is None

    def test_reset_clears_deadlines(self):
        naive = ScheduledNaiveEvaluator(ABSENCE)
        feed(naive, (1.0, d("a", 7)))
        naive.reset()
        assert naive.next_deadline() is None


class TestFactory:
    def test_unknown_name_lists_choices(self):
        with pytest.raises(EventQueryError, match="incremental.*naive.*tree"):
            resolve_evaluator("bogus")

    def test_engine_config_validates_the_knob(self):
        assert EngineConfig(evaluator="tree").evaluator == "tree"
        with pytest.raises(EventQueryError):
            EngineConfig(evaluator="bogus")

    def test_factory_object_passes_through(self):
        factory = resolve_evaluator("tree")
        assert resolve_evaluator(factory) is factory
        assert factory.name == "tree"
        assert isinstance(factory.build(ABSENCE), TreeEvaluator)

    def test_rates_reach_the_builder(self):
        built = resolve_evaluator("tree").build(
            TestJoinPlans.SEQ, {"a": 100.0, "b": 1.0})
        assert built.plan()["order"] == [1, 0]

    def test_bare_callable_is_wrapped(self):
        def my_mechanism(query, rates=None):
            return IncrementalEvaluator(query)

        factory = resolve_evaluator(my_mechanism)
        assert factory.name == "my_mechanism"
        assert isinstance(factory.build(ABSENCE), IncrementalEvaluator)

    def test_register_evaluator_round_trips(self):
        register_evaluator(
            "test-tree-alias", lambda query, rates=None: TreeEvaluator(query, rates))
        config = EngineConfig(evaluator="test-tree-alias")
        built = resolve_evaluator(config.evaluator).build(ABSENCE)
        assert isinstance(built, TreeEvaluator)

    def test_non_factory_rejected(self):
        with pytest.raises(EventQueryError, match="name, factory, or builder"):
            resolve_evaluator(42)

"""The mechanism governor: cost model, hysteresis, pinning, surfacing.

The switch-*equivalence* story lives in
``tests/properties/test_adaptive_equivalence.py``; this file covers the
*decision* layer: replay-horizon computation, the analytic cost model's
direction, the two anti-thrash guards (dwell + margin), pinned queries,
quiescence of the governor tick, and how mechanism choices and switch
counts surface through ``NodeStats`` — including the per-shard replica
agreement that makes adaptive evaluation sound under replication.
"""

import pytest

from repro import EngineConfig, Simulation
from repro.core import eca
from repro.core.actions import PyAction
from repro.errors import EventQueryError
from repro.events import (
    AdaptiveEvaluator,
    EAggregate,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EWithin,
    GovernorConfig,
    IncrementalEvaluator,
    MechanismGovernor,
    adaptive,
    replay_horizon,
)
from repro.events.model import make_event
from repro.terms import LabelVar, Var, d, q

AB = EWithin(ESeq(EAtom(q("a")), EAtom(q("b"))), 5.0)

HOT_A = {"a": 100.0, "b": 1.0}     # first member hot: prefix extension pays
HOT_B = {"a": 1.0, "b": 100.0}     # textual order already rarest-first
UNIFORM = {"a": 10.0, "b": 10.0}


def _ev(query=AB, **knobs):
    return AdaptiveEvaluator(query, config=GovernorConfig(**knobs))


def _feed(evaluator, stream):
    """Drive ``(time, label)`` pairs through an evaluator."""
    for t, label in stream:
        evaluator.on_event(make_event(d(label), t))


class TestReplayHorizon:
    def test_atom_needs_no_history(self):
        assert replay_horizon(EAtom(q("a"))) == 0.0

    def test_windowed_chain_is_bounded_by_its_window(self):
        assert replay_horizon(AB) == 5.0

    def test_unwindowed_chain_is_unbounded(self):
        assert replay_horizon(ESeq(EAtom(q("a")), EAtom(q("b")))) is None

    def test_negation_members_add_nothing(self):
        query = EWithin(ESeq(EAtom(q("a")), EAtom(q("b")), ENot(q("n"))), 4.0)
        assert replay_horizon(query) == 4.0

    def test_nested_windows_accumulate(self):
        inner = EWithin(ESeq(EAtom(q("b")), EAtom(q("c"))), 2.0)
        query = EWithin(ESeq(EAtom(q("a")), inner), 10.0)
        assert replay_horizon(query) == 12.0

    def test_or_takes_the_worst_member(self):
        assert replay_horizon(EOr(EAtom(q("a")), AB)) == 5.0
        assert replay_horizon(
            EOr(AB, ESeq(EAtom(q("a")), EAtom(q("b"))))) is None

    def test_count_is_bounded_by_its_window(self):
        assert replay_horizon(ECount(q("a"), 3, 5.0)) == 5.0

    def test_aggregate_baseline_is_unbounded(self):
        # The rise% baseline survives gc, so no bounded suffix rebuilds it.
        assert replay_horizon(
            EAggregate(q("s"), "p", "avg", "out", window=9.0)) is None


class TestGovernorConfigValidation:
    @pytest.mark.parametrize("knobs", [
        dict(epoch_events=0),
        dict(period=0.0),
        dict(halflife=0.0),
        dict(halflife=-1.0),
        dict(dwell_epochs=-1),
        dict(margin=-0.1),
        dict(tree_overhead=0.0),
        dict(min_mass=-1.0),
        dict(initial="naive"),
    ])
    def test_bad_knobs_are_rejected(self, knobs):
        with pytest.raises(EventQueryError):
            GovernorConfig(**knobs)

    def test_adaptive_builder_validates_eagerly(self):
        with pytest.raises(EventQueryError, match="dwell_epochs"):
            adaptive(dwell_epochs=-3)


class TestCostModelDirection:
    """The analytic scores must point the same way E19 measured."""

    def test_hot_first_member_prefers_the_tree(self):
        gov = MechanismGovernor(AB, GovernorConfig())
        scores = gov.scores(HOT_A, sum(HOT_A.values()))
        assert scores["tree"] < scores["incremental"]
        assert gov.preferred("incremental", HOT_A, sum(HOT_A.values())) == "tree"
        assert gov.preferred("tree", HOT_A, sum(HOT_A.values())) is None

    def test_rare_first_member_prefers_incremental(self):
        # Textual order is already rarest-first; the tree only adds its
        # bookkeeping overhead.
        gov = MechanismGovernor(AB, GovernorConfig())
        scores = gov.scores(HOT_B, sum(HOT_B.values()))
        assert scores["incremental"] < scores["tree"]
        assert gov.preferred("tree", HOT_B, sum(HOT_B.values())) == "incremental"
        assert gov.preferred("incremental", HOT_B, sum(HOT_B.values())) is None

    def test_uniform_traffic_prefers_incremental(self):
        gov = MechanismGovernor(AB, GovernorConfig())
        scores = gov.scores(UNIFORM, sum(UNIFORM.values()))
        assert scores["incremental"] < scores["tree"]

    def test_exact_tie_stays_put_from_either_incumbent(self):
        # No overhead, no margin: the scores are equal, and equal is not
        # strictly better, so neither incumbent is ever deposed.
        gov = MechanismGovernor(
            AB, GovernorConfig(tree_overhead=1.0, margin=0.0))
        scores = gov.scores(UNIFORM, sum(UNIFORM.values()))
        assert scores["incremental"] == scores["tree"]
        assert gov.preferred("incremental", UNIFORM, 20.0) is None
        assert gov.preferred("tree", UNIFORM, 20.0) is None

    def test_min_mass_gates_all_decisions(self):
        gov = MechanismGovernor(AB, GovernorConfig(min_mass=1000.0))
        assert gov.preferred("incremental", HOT_A, sum(HOT_A.values())) is None

    def test_quiet_chain_scores_tree_at_pure_overhead(self):
        # With no traffic every member count is 1, so the only difference
        # between the mechanisms is the tree's constant factor.
        gov = MechanismGovernor(AB, GovernorConfig(tree_overhead=1.3))
        scores = gov.scores({}, 0.0)
        assert scores["incremental"] == 1.0
        assert scores["tree"] == pytest.approx(1.3)


def _oscillating_stream(phases=8, phase_events=16, gap=0.1):
    """Skew flips every *phase_events* events: a-heavy, b-heavy, a-heavy…"""
    t = 0.0
    for phase in range(phases):
        hot = "a" if phase % 2 == 0 else "b"
        cold = "b" if hot == "a" else "a"
        for i in range(phase_events):
            t += gap
            yield (t, hot if i % (phase_events // 2) else cold)


class TestHysteresis:
    """Oscillating skew must not thrash the mechanism."""

    CONFIG = dict(epoch_events=8, halflife=2.0, margin=0.1, period=1e9)

    def _switches(self, **overrides):
        evaluator = _ev(**{**self.CONFIG, **overrides})
        _feed(evaluator, _oscillating_stream())
        return evaluator.switches

    def test_dwell_bounds_the_switch_count(self):
        # 128 events / epoch_events=8 -> 16 decisions; a switch resets
        # the dwell counter, so at most one switch per dwell+1 decisions
        # (plus the free first one).
        dwell = 3
        switches = self._switches(dwell_epochs=dwell)
        assert 1 <= switches <= 1 + 16 // (dwell + 1)

    def test_no_dwell_thrashes_once_per_phase(self):
        # The degenerate config really is degenerate — the guard is doing
        # work in the test above, not the workload being tame.
        assert self._switches(dwell_epochs=0) == 8

    def test_longer_dwell_means_strictly_fewer_switches(self):
        assert self._switches(dwell_epochs=3) < self._switches(dwell_epochs=0)
        assert self._switches(dwell_epochs=7) <= self._switches(dwell_epochs=3)

    def test_margin_alone_suppresses_marginal_switches(self):
        # A margin no real advantage can clear: the governor decides at
        # every epoch and never moves.
        assert self._switches(dwell_epochs=0, margin=1e6) == 0

    def test_dwell_spaces_switches_apart_in_events(self):
        # Record the event index of every switch: consecutive switches
        # must be at least (dwell+1) * epoch_events events apart.
        dwell, epoch = 3, 8
        evaluator = _ev(epoch_events=epoch, halflife=2.0, margin=0.1,
                        period=1e9, dwell_epochs=dwell)
        seen, switch_points = 0, []
        last = evaluator.switches
        for t, label in _oscillating_stream():
            evaluator.on_event(make_event(d(label), t))
            seen += 1
            if evaluator.switches > last:
                switch_points.append(seen)
                last = evaluator.switches
        assert switch_points, "the stream must actually provoke switches"
        gaps = [b - a for a, b in zip(switch_points, switch_points[1:])]
        assert all(gap >= (dwell + 1) * epoch for gap in gaps)


class TestPinnedQueries:
    def test_unwindowed_chain_is_pinned(self):
        evaluator = _ev(ESeq(EAtom(q("a")), EAtom(q("b"))))
        assert evaluator.pinned
        assert not evaluator.switch_to("tree")
        assert evaluator.mechanism == "incremental"

    def test_single_positive_chain_is_pinned(self):
        # One positive member leaves nothing to reorder, even windowed.
        query = EWithin(ESeq(EAtom(q("a")), ENot(q("n"))), 4.0)
        assert _ev(query).pinned

    def test_unbounded_aggregate_is_pinned(self):
        query = EAggregate(q("s"), "p", "avg", "out", window=9.0)
        assert _ev(query).pinned

    def test_pinned_evaluator_keeps_no_replay_log(self):
        evaluator = _ev(ESeq(EAtom(q("a")), EAtom(q("b"))))
        fixed = IncrementalEvaluator(ESeq(EAtom(q("a")), EAtom(q("b"))))
        for t in (1.0, 2.0, 3.0):
            evaluator.on_event(make_event(d("a"), t))
            fixed.on_event(make_event(d("a"), t))
        # Same state as the bare mechanism: no log entries, no tick.
        assert evaluator.state_size() == fixed.state_size()
        assert evaluator.next_deadline() == fixed.next_deadline()
        assert evaluator.switches == 0

    def test_pinned_initial_tree_stays_tree(self):
        evaluator = _ev(ESeq(EAtom(q("a")), EAtom(q("b"))), initial="tree")
        assert evaluator.pinned and evaluator.mechanism == "tree"
        assert not evaluator.switch_to("incremental")


class TestSwitchSurface:
    def test_unknown_mechanism_is_rejected(self):
        with pytest.raises(EventQueryError, match="unknown mechanism"):
            _ev().switch_to("naive")

    def test_switch_to_current_mechanism_is_a_no_op(self):
        evaluator = _ev()
        assert not evaluator.switch_to("incremental")
        assert evaluator.switches == 0

    def test_reset_drops_the_replay_log(self):
        evaluator = _ev(epoch_events=10**9, period=1e9)
        _feed(evaluator, [(1.0, "a"), (2.0, "a")])
        assert evaluator.state_size() > 0
        evaluator.reset()
        assert evaluator.state_size() == 0

    def test_governor_tick_goes_quiescent_without_state(self):
        evaluator = _ev(period=3.0)
        evaluator.on_event(make_event(d("a"), 1.0))
        assert evaluator.next_deadline() is not None  # tick armed
        # Past the window everything is gc'd and pruned; the tick chain
        # must stop rescheduling or a simulation would never terminate.
        evaluator.advance_time(100.0)
        assert evaluator.state_size() == 0
        assert evaluator.next_deadline() is None


# An engine-level governor that decides at every event with no damping —
# the config the surfacing tests below use to force real switches.
EAGER = dict(epoch_events=1, dwell_epochs=0, margin=0.0, halflife=1.0,
             period=1.0)


def _hot_a_node(sim, **config_kwargs):
    node = sim.reactive_node(
        "http://g.example",
        config=EngineConfig(evaluator=adaptive(**EAGER), **config_kwargs))
    fired = []
    node.install(eca("span", AB, PyAction(lambda n, b: fired.append("x"),
                                          "record")))
    t = 0.0
    for i in range(60):
        t += 0.1
        label = "b" if i % 20 == 19 else "a"
        sim.scheduler.at(t, lambda lab=label: node.raise_local(d(lab)))
    return node, fired


class TestEngineSurfacing:
    def test_mechanisms_and_switch_counts_reach_node_stats(self):
        sim = Simulation(latency=0.0)
        node, fired = _hot_a_node(sim)
        sim.run()
        assert fired  # the rule really ran
        report = node.mechanisms()
        assert report["span"]["mechanism"] == "tree"  # hot-a: tree wins
        assert report["span"]["switches"] >= 1
        assert report["span"]["pinned"] is False
        stats = node.stats
        assert stats.evaluator_switches == report["span"]["switches"]
        assert stats["evaluator_switches"] == stats.evaluator_switches

    def test_replicas_of_one_rule_agree_across_shards(self):
        # `span` covers labels a and b; with 2 shards they live apart, so
        # the rule is replicated — and every replica's governor, fed only
        # evaluator-local signals, must land on the same mechanism after
        # the same number of switches.
        sim = Simulation(latency=0.0)
        node, _ = _hot_a_node(sim, shards=2)
        assert node.router.placement()["span"] == (0, 1)
        sim.run()
        replica_views = [
            engine.mechanism_report()["span"] for engine in node.shards
        ]
        assert len(replica_views) == 2
        assert replica_views[0] == replica_views[1]
        assert replica_views[0]["switches"] >= 1
        # The router's merged report is the (agreed) per-replica row, and
        # the fleet switch total counts every replica's switches.
        assert node.mechanisms()["span"] == replica_views[0]
        assert node.stats.evaluator_switches == \
            sum(view["switches"] for view in replica_views)

    def test_wildcard_rules_stay_adaptive_compatible(self):
        # A wildcard atom has no chain: pinned, replicated everywhere,
        # zero governor overhead — and still reported.
        sim = Simulation(latency=0.0)
        node = sim.reactive_node(
            "http://g.example",
            config=EngineConfig(evaluator=adaptive(**EAGER), shards=2))
        fired = []
        node.install(
            eca("wild", EAtom(q(LabelVar("L"))),
                PyAction(lambda n, b: fired.append("w"), "record")),
            eca("narrow", EAtom(q("evt", Var("V"))),
                PyAction(lambda n, b: fired.append("n"), "record")),
        )
        sim.scheduler.at(0.0, lambda: node.raise_local(d("evt", 1)))
        sim.run()
        assert fired == ["w", "n"] or fired == ["n", "w"]
        report = node.mechanisms()
        assert report["wild"]["pinned"] is True
        assert report["wild"]["switches"] == 0
        assert node.stats.evaluator_switches == 0

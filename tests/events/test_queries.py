"""Unit tests for event query validation and variable analysis."""

import pytest

from repro.errors import EventQueryError
from repro.events import (
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EWithin,
    validate_query,
)
from repro.events.queries import query_vars
from repro.terms import Var, q


A = EAtom(q("a", Var("X")))
B = EAtom(q("b", Var("Y")))
N = ENot(q("n"))


class TestValidation:
    def test_atom_valid(self):
        validate_query(A)

    def test_empty_and_rejected(self):
        with pytest.raises(EventQueryError):
            validate_query(EAnd())

    def test_empty_or_rejected(self):
        with pytest.raises(EventQueryError):
            validate_query(EOr())

    def test_not_inside_and_rejected(self):
        with pytest.raises(EventQueryError):
            validate_query(EAnd(A, N))  # type: ignore[arg-type]

    def test_seq_needs_positive(self):
        with pytest.raises(EventQueryError):
            validate_query(ESeq(N))

    def test_leading_not_rejected(self):
        with pytest.raises(EventQueryError):
            validate_query(EWithin(ESeq(N, A), 10.0))

    def test_adjacent_nots_rejected(self):
        with pytest.raises(EventQueryError):
            validate_query(EWithin(ESeq(A, N, ENot(q("m")), B), 10.0))

    def test_not_requires_window(self):
        with pytest.raises(EventQueryError):
            validate_query(ESeq(A, N, B))

    def test_not_with_window_valid(self):
        validate_query(EWithin(ESeq(A, N, B), 10.0))

    def test_trailing_not_with_window_valid(self):
        validate_query(EWithin(ESeq(A, N), 10.0))

    def test_window_must_be_positive(self):
        with pytest.raises(EventQueryError):
            validate_query(EWithin(A, 0.0))

    def test_window_outer_covers_inner_seq(self):
        validate_query(EWithin(EAnd(ESeq(A, N, B), B), 5.0))

    def test_count_threshold(self):
        with pytest.raises(EventQueryError):
            validate_query(ECount(q("a"), 0, 10.0))

    def test_count_window(self):
        with pytest.raises(EventQueryError):
            validate_query(ECount(q("a"), 3, -1.0))

    def test_aggregate_needs_exactly_one_extent(self):
        with pytest.raises(EventQueryError):
            EAggregate(q("a", Var("P")), "P", "avg", "A")
        with pytest.raises(EventQueryError):
            EAggregate(q("a", Var("P")), "P", "avg", "A", size=5, window=10.0)

    def test_aggregate_bad_fn(self):
        with pytest.raises(EventQueryError):
            EAggregate(q("a", Var("P")), "P", "median", "A", size=5)

    def test_aggregate_bad_predicate(self):
        with pytest.raises(EventQueryError):
            EAggregate(q("a", Var("P")), "P", "avg", "A", size=5, predicate=("~", 1.0))

    def test_aggregate_valid(self):
        validate_query(
            EAggregate(q("a", Var("P")), "P", "avg", "A", size=5, predicate=("rise%", 5.0))
        )

    def test_non_query_rejected(self):
        with pytest.raises(EventQueryError):
            validate_query("not a query")  # type: ignore[arg-type]


class TestQueryVars:
    def test_atom_vars(self):
        assert query_vars(A) == {"X"}

    def test_alias_included(self):
        assert query_vars(EAtom(q("a"), alias="E")) == {"E"}

    def test_composition_union(self):
        assert query_vars(EAnd(A, B)) == {"X", "Y"}
        assert query_vars(EOr(A, B)) == {"X", "Y"}
        assert query_vars(ESeq(A, B)) == {"X", "Y"}

    def test_negation_vars_excluded(self):
        assert query_vars(EWithin(ESeq(A, ENot(q("n", Var("Z"))), B), 5.0)) == {"X", "Y"}

    def test_count_binds_group_key(self):
        assert query_vars(ECount(q("o", Var("S")), 3, 10.0, group_by=("S",))) == {"S"}

    def test_aggregate_binds_into(self):
        agg = EAggregate(q("p", Var("P")), "P", "avg", "AVG", size=5, group_by=("S",))
        assert query_vars(agg) == {"S", "AVG"}

"""Unit tests for the event model."""

import pytest

from repro.errors import EventError
from repro.events import Event, EventAnswer
from repro.events.model import make_event
from repro.terms import Bindings, d, u


class TestEvent:
    def test_basic_fields(self):
        event = Event(1, d("ping"), 1.0, 2.0, "http://a")
        assert event.time == 2.0
        assert event.label == "ping"
        assert event.source == "http://a"

    def test_payload_must_be_term(self):
        with pytest.raises(EventError):
            Event(1, "not a term", 0.0, 0.0)  # type: ignore[arg-type]

    def test_reception_before_occurrence_rejected(self):
        with pytest.raises(EventError):
            Event(1, d("ping"), 5.0, 4.0)

    def test_make_event_unique_ids(self):
        a = make_event(d("x"), 1.0)
        b = make_event(d("x"), 1.0)
        assert a.id != b.id

    def test_make_event_defaults(self):
        event = make_event(d("x"), 3.0)
        assert event.occurrence == 3.0
        assert event.reception == 3.0

    def test_events_are_immutable(self):
        event = make_event(d("x"), 1.0)
        with pytest.raises(AttributeError):
            event.reception = 2.0  # type: ignore[misc]


class TestEventAnswer:
    def test_span(self):
        answer = EventAnswer(Bindings(), (1, 2), 1.0, 4.0)
        assert answer.span == 3.0

    def test_merge_compatible(self):
        left = EventAnswer(Bindings.of(X=1), (1,), 1.0, 2.0)
        right = EventAnswer(Bindings.of(Y=2), (2,), 3.0, 4.0)
        merged = left.merge_with(right)
        assert merged.bindings.as_dict() == {"X": 1, "Y": 2}
        assert merged.events == (1, 2)
        assert merged.start == 1.0 and merged.end == 4.0

    def test_merge_conflicting_bindings(self):
        left = EventAnswer(Bindings.of(X=1), (1,), 1.0, 1.0)
        right = EventAnswer(Bindings.of(X=2), (2,), 2.0, 2.0)
        assert left.merge_with(right) is None

    def test_merge_deduplicates_events(self):
        left = EventAnswer(Bindings(), (1, 2), 1.0, 2.0)
        right = EventAnswer(Bindings(), (2, 3), 2.0, 3.0)
        assert left.merge_with(right).events == (1, 2, 3)

    def test_hashable(self):
        a = EventAnswer(Bindings.of(X=1), (1,), 1.0, 1.0)
        b = EventAnswer(Bindings.of(X=1), (1,), 1.0, 1.0)
        assert len({a, b}) == 1

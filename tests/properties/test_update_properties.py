"""Property-based tests for update primitives and the events layer."""

import string

from hypothesis import given, settings, strategies as st

from repro.events import EAtom, IncrementalEvaluator, NaiveEvaluator
from repro.events.model import make_event
from repro.terms import Bindings, Data, QTerm, d, matches, q, u
from repro.updates import delete_terms, insert_child, replace_terms

LABELS = st.sampled_from(["a", "b", "c", "leaf"])


def documents(max_depth=3):
    return st.recursive(
        LABELS.map(lambda l: Data(l, ())),
        lambda children: st.builds(
            lambda lab, kids, ordered: Data("root" if False else lab, tuple(kids), ordered),
            LABELS,
            st.lists(st.one_of(st.integers(-5, 5), children), max_size=3),
            st.booleans(),
        ),
        max_leaves=8,
    ).map(lambda t: Data("doc", (t,), False))


TARGETS = LABELS.map(lambda l: QTerm(l, (), False, False))


class TestUpdateProperties:
    @given(documents(), TARGETS)
    @settings(max_examples=150)
    def test_delete_removes_all_matches(self, doc, target):
        new_root, count = delete_terms(doc, target)
        # After deletion no subterm below the root matches the target.
        survivors = [
            sub for sub in new_root.subterms()
            if sub is not new_root and matches(target, sub)
        ]
        assert survivors == []
        removed = [
            sub for sub in doc.subterms()
            if sub is not doc and matches(target, sub)
        ]
        # Count never exceeds the original matches (nested matches may be
        # removed together with their ancestors).
        assert 0 <= count <= len(removed)
        assert (count == 0) == (len(removed) == 0)

    @given(documents(), TARGETS)
    @settings(max_examples=150)
    def test_insert_grows_every_match(self, doc, target):
        marker = d("inserted-marker")
        new_root, count = insert_child(doc, target, marker)
        markers = sum(
            1 for sub in new_root.subterms() if sub.label == "inserted-marker"
        )
        assert markers == count

    @given(documents(), TARGETS)
    @settings(max_examples=150)
    def test_replace_preserves_match_count(self, doc, target):
        replacement = d("replaced-marker")
        new_root, count = replace_terms(doc, target, replacement)
        markers = sum(
            1 for sub in new_root.subterms() if sub.label == "replaced-marker"
        )
        # Outermost matches are replaced; nested matches disappear inside
        # them, so the marker count equals the reported count.
        assert markers == count

    @given(documents(), TARGETS)
    @settings(max_examples=100)
    def test_no_match_is_identity(self, doc, target):
        new_root, count = insert_child(doc, target, d("x"))
        if count == 0:
            assert new_root == doc


class TestEvaluatorInterfaceProperties:
    @given(st.lists(st.tuples(st.floats(0, 2), LABELS), max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_state_size_nonnegative_and_resettable(self, stream):
        evaluator = IncrementalEvaluator(EAtom(q("a")))
        clock = 0.0
        for delta, label in stream:
            clock += delta
            evaluator.on_event(make_event(d(label), clock))
            assert evaluator.state_size() >= 0
        evaluator.reset()
        assert evaluator.state_size() == 0

    @given(st.lists(st.tuples(st.floats(0, 2), LABELS), max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_atom_answers_match_event_count(self, stream):
        incremental = IncrementalEvaluator(EAtom(q("a")))
        clock = 0.0
        answers = 0
        matching = 0
        for delta, label in stream:
            clock += delta
            answers += len(incremental.on_event(make_event(d(label), clock)))
            matching += label == "a"
        assert answers == matching
